// pareto_explorer.cpp -- sweep the energy/performance weight theta and dump
// the Pareto fronts of all policies for one (benchmark, stage) pair as CSV.
//
// Usage: ./examples/pareto_explorer [benchmark] [stage]
//   benchmark: fmm radix lu-contig lu-ncontig fft water-sp barnes raytrace
//              cholesky ocean              (default: cholesky)
//   stage:     decode simple complex       (default: decode)
//
// Output: pareto_explorer.csv in the working directory plus a console
// summary. This regenerates the raw data behind Figs. 6.11-6.16 for any
// benchmark, including the ones the paper omitted for space.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/experiment.h"
#include "util/csv.h"

namespace {

using namespace synts;

workload::benchmark_id parse_benchmark(const char* name)
{
    for (const auto id : workload::all_benchmarks()) {
        std::string lowered(workload::benchmark_name(id));
        for (auto& c : lowered) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (lowered == name) {
            return id;
        }
    }
    std::fprintf(stderr, "unknown benchmark '%s', using cholesky\n", name);
    return workload::benchmark_id::cholesky;
}

circuit::pipe_stage parse_stage(const char* name)
{
    if (std::strcmp(name, "simple") == 0) {
        return circuit::pipe_stage::simple_alu;
    }
    if (std::strcmp(name, "complex") == 0) {
        return circuit::pipe_stage::complex_alu;
    }
    if (std::strcmp(name, "decode") == 0) {
        return circuit::pipe_stage::decode;
    }
    std::fprintf(stderr, "unknown stage '%s', using decode\n", name);
    return circuit::pipe_stage::decode;
}

} // namespace

int main(int argc, char** argv)
{
    const workload::benchmark_id benchmark =
        argc > 1 ? parse_benchmark(argv[1]) : workload::benchmark_id::cholesky;
    const circuit::pipe_stage stage =
        argc > 2 ? parse_stage(argv[2]) : circuit::pipe_stage::decode;

    std::printf("Pareto exploration: %s / %s\n",
                workload::benchmark_name(benchmark).data(),
                circuit::pipe_stage_name(stage));

    core::experiment_config config;
    const core::benchmark_experiment experiment(benchmark, stage, config);
    const auto multipliers = core::default_theta_multipliers();

    const core::policy_kind kinds[] = {core::policy_kind::synts_offline,
                                       core::policy_kind::synts_online,
                                       core::policy_kind::per_core_ts,
                                       core::policy_kind::no_ts};

    std::ofstream file("pareto_explorer.csv");
    util::csv_writer csv(file);
    csv.header({"policy", "theta_multiplier", "energy_vs_nominal", "time_vs_nominal",
                "edp_vs_nominal"});

    for (const auto kind : kinds) {
        const auto points = core::pareto_sweep(experiment, kind, multipliers);
        double best_edp = 1e300;
        double best_multiplier = 1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            csv.begin_row();
            csv.field(std::string(core::policy_name(kind)));
            csv.field(multipliers[i]);
            csv.field(points[i].energy);
            csv.field(points[i].time);
            csv.field(points[i].energy * points[i].time);
            if (points[i].energy * points[i].time < best_edp) {
                best_edp = points[i].energy * points[i].time;
                best_multiplier = multipliers[i];
            }
        }
        std::printf("  %-17s best EDP %.3f (at theta x%.3f)\n",
                    std::string(core::policy_name(kind)).c_str(), best_edp,
                    best_multiplier);
    }
    std::printf("Wrote pareto_explorer.csv (%zu thetas x 4 policies).\n",
                multipliers.size());
    return 0;
}
