// gpgpu_case_study.cpp -- the HD 7970 study of Sections 3.2 / 5.5.
//
// Runs the nine GPGPU kernels on the 16-VALU SIMD model, reproduces the
// Hamming-distance homogeneity analysis of Fig. 5.10, and then goes one
// step further than the paper's figure: it drives the gate-level SimpleALU
// netlist with each VALU's actual operand stream and shows that the
// resulting error-probability curves are homogeneous across VALUs --
// closing the loop from output activity to timing errors.

#include <cstdio>
#include <memory>

#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "gpgpu/hamming.h"
#include "gpgpu/kernels.h"
#include "util/statistics.h"

int main()
{
    using namespace synts;

    std::printf("GPGPU case study: Radeon HD 7970 SIMD unit, %zu vector ALUs\n\n",
                gpgpu::hd7970_valu_count);

    // Part 1: Hamming-distance homogeneity (Fig. 5.10).
    std::printf("%-14s %-12s %-14s %-12s\n", "kernel", "mean HD", "max pair TVD",
                "homogeneous");
    for (const auto kernel : gpgpu::all_gpgpu_kernels()) {
        const auto traces =
            gpgpu::execute_kernel(kernel, gpgpu::hd7970_valu_count, 16000, 42);
        const auto report = gpgpu::analyze_homogeneity(traces);
        const auto hist = gpgpu::hamming_histogram(traces[0]);
        std::printf("%-14s %-12.2f %-14.4f %-12s\n",
                    gpgpu::gpgpu_kernel_name(kernel).data(), hist.mean(), report.max_tvd,
                    report.is_homogeneous() ? "yes" : "NO");
    }

    // Part 2: close the loop -- per-VALU timing-error curves via the
    // gate-level ALU netlist.
    std::printf("\nDriving the gate-level ALU with per-VALU operand streams "
                "(BlackScholes):\n");
    const auto traces = gpgpu::execute_kernel(gpgpu::gpgpu_kernel::blackscholes,
                                              gpgpu::hd7970_valu_count, 8000, 7);

    const auto stage = circuit::build_simple_alu();
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const double vdd = 1.0;

    // Measure per-VALU exceedance of several speculation depths and report
    // the deepest one with a meaningful error rate.
    const std::array<double, 4> ratios = {0.70, 0.55, 0.45, 0.35};
    std::vector<std::vector<double>> err(ratios.size(),
                                         std::vector<double>(gpgpu::hd7970_valu_count));
    for (std::size_t v = 0; v < gpgpu::hd7970_valu_count; ++v) {
        circuit::dynamic_timing_simulator sim(stage.nl, lib, vm,
                                              std::span<const double>(&vdd, 1));
        const double tnom = sim.nominal_period_ps(0);
        auto bits = std::make_unique<bool[]>(stage.nl.input_count());
        double delay = 0.0;
        std::vector<std::size_t> errors(ratios.size(), 0);
        std::size_t vectors = 0;
        for (const auto& insn : traces[v].instructions) {
            // Map the VALU op onto the ALU stage inputs (operands + adder).
            for (std::size_t b = 0; b < 32; ++b) {
                bits[b] = ((insn.operand_a >> b) & 1) != 0;
                bits[32 + b] = ((insn.operand_b >> b) & 1) != 0;
            }
            bits[64] = insn.op == gpgpu::valu_op::sub;
            bits[65] = false;
            bits[66] = false;
            sim.step(std::span<const bool>(bits.get(), stage.nl.input_count()),
                     std::span<double>(&delay, 1));
            ++vectors;
            for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
                if (delay > ratios[ri] * tnom) {
                    ++errors[ri];
                }
            }
        }
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            err[ri][v] =
                static_cast<double>(errors[ri]) / static_cast<double>(vectors);
        }
    }

    std::size_t pick = ratios.size() - 1;
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
        double mean = 0.0;
        for (const double e : err[ri]) {
            mean += e;
        }
        if (mean / static_cast<double>(err[ri].size()) >= 1e-3) {
            pick = ri;
            break;
        }
    }
    util::running_stats stats;
    for (const double e : err[pick]) {
        stats.add(e);
    }
    std::printf("  per-VALU error probability at r = %.2f:\n    ", ratios[pick]);
    for (std::size_t v = 0; v < err[pick].size(); ++v) {
        std::printf("%.4f ", err[pick][v]);
        if (v % 8 == 7) {
            std::printf("\n    ");
        }
    }
    std::printf("\n  mean %.4f, spread (max-min) %.4f, relative spread %.1f%%\n",
                stats.mean(), stats.max() - stats.min(),
                stats.mean() > 1e-6
                    ? 100.0 * (stats.max() - stats.min()) / stats.mean()
                    : 0.0);
    std::printf("\nConclusion (matches the paper): the VALUs are homogeneous, so\n"
                "per-core timing speculation suffices on this architecture; the\n"
                "SynTS analysis therefore focuses on CMPs.\n");
    return 0;
}
