// online_adaptive.cpp -- SynTS-online in action, interval by interval.
//
// Shows the practical control loop of Section 4.3: at the start of every
// barrier interval each thread samples its error behavior across the S TSR
// levels, the estimated curves feed SynTS-Poly, and the chosen per-thread
// (V, r) points run the remainder of the interval. The example prints the
// decisions and the accumulated cost of estimation (sampling overhead plus
// decision regret versus the offline oracle).

#include <cstdio>

#include "core/experiment.h"
#include "core/online_estimator.h"

int main()
{
    using namespace synts;

    core::experiment_config config;
    config.sampling.sample_fraction = 0.10; // paper's operating point

    std::printf("SynTS-online on Barnes / Decode (4 threads, %zu%% sampling)\n\n",
                static_cast<std::size_t>(100 * config.sampling.sample_fraction));
    const core::benchmark_experiment experiment(workload::benchmark_id::barnes,
                                                circuit::pipe_stage::decode, config);
    const double theta = experiment.equal_weight_theta();

    const auto online = experiment.run_policy(core::policy_kind::synts_online, theta);
    const auto offline = experiment.run_policy(core::policy_kind::synts_offline, theta);

    for (std::size_t k = 0; k < experiment.interval_count(); ++k) {
        const auto& outcome = online.intervals[k];
        std::printf("barrier interval %zu:\n", k);
        std::printf("  sampling: %.0f ps wall, %.0f energy units\n",
                    outcome.sampling_time_ps, outcome.sampling_energy);
        std::printf("  chosen operating points (after estimation):\n");
        for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
            const auto& m = outcome.solution.metrics[t];
            std::printf("    thread %zu: V = %.2f V  r = %.3f  p_err(true) = %.5f\n", t,
                        m.vdd, m.tsr, m.error_probability);
        }
        const auto& oracle = offline.intervals[k];
        std::printf("  interval EDP: online %.3g vs offline oracle %.3g (+%.1f%%)\n\n",
                    outcome.edp(), oracle.edp(),
                    100.0 * (outcome.edp() / oracle.edp() - 1.0));
    }

    std::printf("totals over %zu intervals:\n", experiment.interval_count());
    std::printf("  online : energy %.4g, time %.4g ps, EDP %.4g\n", online.sum.energy,
                online.sum.time_ps, online.sum.edp());
    std::printf("  offline: energy %.4g, time %.4g ps, EDP %.4g\n", offline.sum.energy,
                offline.sum.time_ps, offline.sum.edp());
    std::printf("  online overhead: %.1f%% EDP (paper reports ~10.3%% on average)\n",
                100.0 * (online.sum.edp() / offline.sum.edp() - 1.0));
    return 0;
}
