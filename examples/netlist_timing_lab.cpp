// netlist_timing_lab.cpp -- working directly with the circuit substrate.
//
// Shows the lower-level public API that the SynTS pipeline is built on:
// building a custom datapath netlist, running static timing analysis,
// exploring data-dependent sensitized delays, and scaling with voltage.
// Useful as a template for adding new pipe stages.

#include <cstdio>
#include <memory>

#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "circuit/sta.h"
#include "circuit/voltage_model.h"
#include "util/histogram.h"
#include "util/rng.h"

int main()
{
    using namespace synts;
    using namespace synts::circuit;

    // 1. Build a custom 16-bit adder + comparator datapath.
    netlist nl("lab_datapath");
    const auto a = nl.add_input_bus("a", 16);
    const auto b = nl.add_input_bus("b", 16);
    const auto carry_in = nl.add_input("cin");
    const adder_result sum = add_ripple_adder(nl, a, b, carry_in);
    nl.mark_output_bus("sum", sum.sum);
    nl.mark_output("cout", sum.carry_out);
    const net_id all_ones = add_and_tree(nl, sum.sum);
    nl.mark_output("saturated", all_ones);
    nl.validate();
    std::printf("datapath: %zu gates, %zu nets, %zu outputs\n", nl.gate_count(),
                nl.net_count(), nl.output_count());

    // 2. Static timing at the nominal supply.
    const cell_library lib = cell_library::standard_22nm();
    const static_timing_analyzer sta(nl);
    const timing_report report = sta.analyze_nominal(lib);
    std::printf("STA critical path: %.1f ps through %zu gates "
                "(ends at output net %u)\n",
                report.critical_delay_ps, report.critical_path.size(),
                report.critical_output);

    // 3. Dynamic timing: how often is the critical path actually exercised?
    const voltage_model vm(0.04);
    const auto corners = paper_voltage_levels();
    dynamic_timing_simulator sim(nl, lib, vm, corners);

    util::xoshiro256 rng(2024);
    util::histogram delay_hist(0.0, report.critical_delay_ps * 1.05, 64);
    auto bits = std::make_unique<bool[]>(nl.input_count());
    std::vector<double> delays(corners.size());
    constexpr int vectors = 20000;
    for (int i = 0; i < vectors; ++i) {
        const std::uint64_t av = rng() & 0xFFFF;
        const std::uint64_t bv = rng() & 0xFFFF;
        for (std::size_t bit = 0; bit < 16; ++bit) {
            bits[bit] = ((av >> bit) & 1) != 0;
            bits[16 + bit] = ((bv >> bit) & 1) != 0;
        }
        bits[32] = rng.bernoulli(0.5);
        sim.step(std::span<const bool>(bits.get(), nl.input_count()), delays);
        delay_hist.add(delays[0]);
    }
    std::printf("\nsensitized delay over %d random vectors (fraction of critical):\n",
                vectors);
    for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
        std::printf("  q%-5g  %.2f\n", 100.0 * q,
                    delay_hist.quantile(q) / report.critical_delay_ps);
    }
    std::printf("  -> the critical path is rarely sensitized: the empirical basis\n"
                "     of timing speculation (paper Section 1.1).\n");

    // 4. A vector pair engineered to traverse the whole carry chain.
    sim.reset();
    for (std::size_t bit = 0; bit < nl.input_count(); ++bit) {
        bits[bit] = false;
    }
    sim.step(std::span<const bool>(bits.get(), nl.input_count()), delays);
    for (std::size_t bit = 0; bit < 16; ++bit) {
        bits[bit] = true; // a = 0xFFFF
    }
    bits[16] = true; // b = 1
    sim.step(std::span<const bool>(bits.get(), nl.input_count()), delays);
    std::printf("\nengineered 0xFFFF + 1 transition: %.2f of critical path\n",
                delays[0] / report.critical_delay_ps);

    // 5. Voltage scaling: the same vector at every Table 5.1 corner.
    std::printf("\nvoltage scaling of the sensitized delay (same transition):\n");
    std::printf("  %-8s %-12s %-12s %-10s\n", "Vdd", "delay (ps)", "t_nom (ps)",
                "ratio");
    for (std::size_t c = 0; c < corners.size(); ++c) {
        std::printf("  %-8.2f %-12.1f %-12.1f %-10.3f\n", corners[c], delays[c],
                    sim.nominal_period_ps(c), delays[c] / sim.nominal_period_ps(c));
    }
    std::printf("  -> normalized depth is nearly voltage-invariant, which is why\n"
                "     SynTS-online can sample at one voltage and extrapolate\n"
                "     (paper Section 4.3).\n");
    return 0;
}
