// quickstart.cpp -- the five-minute tour of the SynTS library.
//
//   1. Pick a SPLASH-2 workload and a pipe stage.
//   2. Run the cross-layer characterization (workload -> architectural
//      simulation -> gate-level dynamic timing -> per-thread error curves).
//   3. Solve SynTS-OPT with Algorithm 1 and compare against the baselines.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/experiment.h"

int main()
{
    using namespace synts;

    // 1. A 4-core CMP running Radix, analyzing the SimpleALU stage.
    core::experiment_config config;
    config.thread_count = 4;
    config.seed = 42;

    std::printf("Characterizing Radix / SimpleALU (gem5-style simulation + gate-level\n"
                "dynamic timing at 7 voltage corners)...\n\n");
    const core::benchmark_experiment experiment(workload::benchmark_id::radix,
                                                circuit::pipe_stage::simple_alu, config);

    // 2. Inspect the per-thread error curves the characterization produced.
    const core::config_space& space = experiment.space();
    std::printf("Stage nominal period at 1.0 V: %.0f ps; V levels: %zu; TSR levels: %zu\n",
                space.tnom_ps(0), space.voltage_count(), space.tsr_count());
    std::printf("\nPer-thread error probability err_i(r) in barrier interval 0:\n");
    std::printf("  %-8s", "r");
    for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
        std::printf("T%-9zu", t);
    }
    std::printf("\n");
    for (std::size_t k = 0; k < space.tsr_count(); ++k) {
        std::printf("  %-8.3f", space.tsr(k));
        for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
            std::printf("%-10.5f",
                        experiment.error_model(t, 0).error_probability(0, space.tsr(k)));
        }
        std::printf("\n");
    }

    // 3. Optimize each barrier interval and compare policies.
    const double theta = experiment.equal_weight_theta();
    std::printf("\nEqual-weight theta = %.5g; running all policies over %zu barrier "
                "intervals...\n\n",
                theta, experiment.interval_count());

    const auto runs = experiment.run_all_policies(theta);
    const auto& nominal = runs.front();
    std::printf("  %-17s %-10s %-10s %-10s\n", "policy", "energy", "time", "EDP");
    for (const auto& run : runs) {
        std::printf("  %-17s %-10.3f %-10.3f %-10.3f\n",
                    std::string(core::policy_name(run.kind)).c_str(),
                    run.sum.energy / nominal.sum.energy,
                    run.sum.time_ps / nominal.sum.time_ps,
                    run.sum.edp() / nominal.sum.edp());
    }

    // The chosen per-thread operating points of SynTS (offline), interval 0.
    const auto synts_run = experiment.run_policy(core::policy_kind::synts_offline, theta);
    std::printf("\nSynTS (offline) operating points, interval 0:\n");
    for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
        const auto& m = synts_run.intervals[0].solution.metrics[t];
        std::printf("  thread %zu: V = %.2f V, r = %.3f, t_clk = %.0f ps, "
                    "p_err = %.4f\n",
                    t, m.vdd, m.tsr, m.clock_period_ps, m.error_probability);
    }
    std::printf("\nDone. See examples/pareto_explorer and examples/online_adaptive for\n"
                "the theta sweep and the sampling-based online controller.\n");
    return 0;
}
