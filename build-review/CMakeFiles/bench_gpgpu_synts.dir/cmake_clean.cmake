file(REMOVE_RECURSE
  "CMakeFiles/bench_gpgpu_synts.dir/bench/bench_gpgpu_synts.cpp.o"
  "CMakeFiles/bench_gpgpu_synts.dir/bench/bench_gpgpu_synts.cpp.o.d"
  "bench_gpgpu_synts"
  "bench_gpgpu_synts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpgpu_synts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
