# Empty dependencies file for bench_gpgpu_synts.
# This may be replaced when dependencies are built.
