file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_17.dir/bench/bench_fig6_17.cpp.o"
  "CMakeFiles/bench_fig6_17.dir/bench/bench_fig6_17.cpp.o.d"
  "bench_fig6_17"
  "bench_fig6_17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
