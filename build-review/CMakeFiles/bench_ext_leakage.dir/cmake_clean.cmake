file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_leakage.dir/bench/bench_ext_leakage.cpp.o"
  "CMakeFiles/bench_ext_leakage.dir/bench/bench_ext_leakage.cpp.o.d"
  "bench_ext_leakage"
  "bench_ext_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
