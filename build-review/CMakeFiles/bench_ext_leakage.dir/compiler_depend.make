# Empty compiler generated dependencies file for bench_ext_leakage.
# This may be replaced when dependencies are built.
