file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_10.dir/bench/bench_fig5_10.cpp.o"
  "CMakeFiles/bench_fig5_10.dir/bench/bench_fig5_10.cpp.o.d"
  "bench_fig5_10"
  "bench_fig5_10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
