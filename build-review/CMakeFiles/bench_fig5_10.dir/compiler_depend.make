# Empty compiler generated dependencies file for bench_fig5_10.
# This may be replaced when dependencies are built.
