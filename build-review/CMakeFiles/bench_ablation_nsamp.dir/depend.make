# Empty dependencies file for bench_ablation_nsamp.
# This may be replaced when dependencies are built.
