file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nsamp.dir/bench/bench_ablation_nsamp.cpp.o"
  "CMakeFiles/bench_ablation_nsamp.dir/bench/bench_ablation_nsamp.cpp.o.d"
  "bench_ablation_nsamp"
  "bench_ablation_nsamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nsamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
