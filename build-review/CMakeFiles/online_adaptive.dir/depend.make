# Empty dependencies file for online_adaptive.
# This may be replaced when dependencies are built.
