file(REMOVE_RECURSE
  "CMakeFiles/online_adaptive.dir/examples/online_adaptive.cpp.o"
  "CMakeFiles/online_adaptive.dir/examples/online_adaptive.cpp.o.d"
  "online_adaptive"
  "online_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
