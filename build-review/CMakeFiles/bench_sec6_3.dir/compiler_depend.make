# Empty compiler generated dependencies file for bench_sec6_3.
# This may be replaced when dependencies are built.
