file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_3.dir/bench/bench_sec6_3.cpp.o"
  "CMakeFiles/bench_sec6_3.dir/bench/bench_sec6_3.cpp.o.d"
  "bench_sec6_3"
  "bench_sec6_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
