file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_5.dir/bench/bench_fig3_5.cpp.o"
  "CMakeFiles/bench_fig3_5.dir/bench/bench_fig3_5.cpp.o.d"
  "bench_fig3_5"
  "bench_fig3_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
