# Empty compiler generated dependencies file for bench_fig3_5.
# This may be replaced when dependencies are built.
