file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_locks.dir/bench/bench_ext_locks.cpp.o"
  "CMakeFiles/bench_ext_locks.dir/bench/bench_ext_locks.cpp.o.d"
  "bench_ext_locks"
  "bench_ext_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
