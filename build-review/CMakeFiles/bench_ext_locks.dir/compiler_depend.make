# Empty compiler generated dependencies file for bench_ext_locks.
# This may be replaced when dependencies are built.
