file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_scaling.dir/bench/bench_runtime_scaling.cpp.o"
  "CMakeFiles/bench_runtime_scaling.dir/bench/bench_runtime_scaling.cpp.o.d"
  "bench_runtime_scaling"
  "bench_runtime_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
