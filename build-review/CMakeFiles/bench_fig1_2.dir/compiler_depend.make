# Empty compiler generated dependencies file for bench_fig1_2.
# This may be replaced when dependencies are built.
