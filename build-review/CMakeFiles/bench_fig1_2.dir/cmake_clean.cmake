file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2.dir/bench/bench_fig1_2.cpp.o"
  "CMakeFiles/bench_fig1_2.dir/bench/bench_fig1_2.cpp.o.d"
  "bench_fig1_2"
  "bench_fig1_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
