# Empty compiler generated dependencies file for pareto_explorer.
# This may be replaced when dependencies are built.
