file(REMOVE_RECURSE
  "CMakeFiles/pareto_explorer.dir/examples/pareto_explorer.cpp.o"
  "CMakeFiles/pareto_explorer.dir/examples/pareto_explorer.cpp.o.d"
  "pareto_explorer"
  "pareto_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
