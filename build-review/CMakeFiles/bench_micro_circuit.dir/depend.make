# Empty dependencies file for bench_micro_circuit.
# This may be replaced when dependencies are built.
