file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_circuit.dir/bench/bench_micro_circuit.cpp.o"
  "CMakeFiles/bench_micro_circuit.dir/bench/bench_micro_circuit.cpp.o.d"
  "bench_micro_circuit"
  "bench_micro_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
