file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vscaling.dir/bench/bench_ablation_vscaling.cpp.o"
  "CMakeFiles/bench_ablation_vscaling.dir/bench/bench_ablation_vscaling.cpp.o.d"
  "bench_ablation_vscaling"
  "bench_ablation_vscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
