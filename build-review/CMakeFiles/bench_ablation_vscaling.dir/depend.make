# Empty dependencies file for bench_ablation_vscaling.
# This may be replaced when dependencies are built.
