file(REMOVE_RECURSE
  "CMakeFiles/synts_runner.dir/tools/synts_runner.cpp.o"
  "CMakeFiles/synts_runner.dir/tools/synts_runner.cpp.o.d"
  "synts_runner"
  "synts_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synts_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
