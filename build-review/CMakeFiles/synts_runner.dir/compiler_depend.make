# Empty compiler generated dependencies file for synts_runner.
# This may be replaced when dependencies are built.
