file(REMOVE_RECURSE
  "CMakeFiles/netlist_timing_lab.dir/examples/netlist_timing_lab.cpp.o"
  "CMakeFiles/netlist_timing_lab.dir/examples/netlist_timing_lab.cpp.o.d"
  "netlist_timing_lab"
  "netlist_timing_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_timing_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
