# Empty dependencies file for netlist_timing_lab.
# This may be replaced when dependencies are built.
