file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_11_to_6_16.dir/bench/bench_fig6_11_to_6_16.cpp.o"
  "CMakeFiles/bench_fig6_11_to_6_16.dir/bench/bench_fig6_11_to_6_16.cpp.o.d"
  "bench_fig6_11_to_6_16"
  "bench_fig6_11_to_6_16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_11_to_6_16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
