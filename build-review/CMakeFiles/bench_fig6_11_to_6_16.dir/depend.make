# Empty dependencies file for bench_fig6_11_to_6_16.
# This may be replaced when dependencies are built.
