# Empty compiler generated dependencies file for bench_fig3_6.
# This may be replaced when dependencies are built.
