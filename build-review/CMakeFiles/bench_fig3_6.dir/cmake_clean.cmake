file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_6.dir/bench/bench_fig3_6.cpp.o"
  "CMakeFiles/bench_fig3_6.dir/bench/bench_fig3_6.cpp.o.d"
  "bench_fig3_6"
  "bench_fig3_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
