# Empty dependencies file for bench_table5_1.
# This may be replaced when dependencies are built.
