file(REMOVE_RECURSE
  "CMakeFiles/bench_characterization.dir/bench/bench_characterization.cpp.o"
  "CMakeFiles/bench_characterization.dir/bench/bench_characterization.cpp.o.d"
  "bench_characterization"
  "bench_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
