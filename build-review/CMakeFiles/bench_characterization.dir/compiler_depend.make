# Empty compiler generated dependencies file for bench_characterization.
# This may be replaced when dependencies are built.
