# Empty dependencies file for bench_storage.
# This may be replaced when dependencies are built.
