file(REMOVE_RECURSE
  "CMakeFiles/bench_storage.dir/bench/bench_storage.cpp.o"
  "CMakeFiles/bench_storage.dir/bench/bench_storage.cpp.o.d"
  "bench_storage"
  "bench_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
