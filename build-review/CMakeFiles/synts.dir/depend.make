# Empty dependencies file for synts.
# This may be replaced when dependencies are built.
