file(REMOVE_RECURSE
  "libsynts.a"
)
