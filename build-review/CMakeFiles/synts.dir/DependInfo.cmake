
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/branch_predictor.cpp" "CMakeFiles/synts.dir/src/arch/branch_predictor.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/branch_predictor.cpp.o.d"
  "/root/repo/src/arch/cache.cpp" "CMakeFiles/synts.dir/src/arch/cache.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/cache.cpp.o.d"
  "/root/repo/src/arch/multicore.cpp" "CMakeFiles/synts.dir/src/arch/multicore.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/multicore.cpp.o.d"
  "/root/repo/src/arch/pipeline.cpp" "CMakeFiles/synts.dir/src/arch/pipeline.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/pipeline.cpp.o.d"
  "/root/repo/src/arch/razor.cpp" "CMakeFiles/synts.dir/src/arch/razor.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/razor.cpp.o.d"
  "/root/repo/src/arch/stage_taps.cpp" "CMakeFiles/synts.dir/src/arch/stage_taps.cpp.o" "gcc" "CMakeFiles/synts.dir/src/arch/stage_taps.cpp.o.d"
  "/root/repo/src/circuit/cell_library.cpp" "CMakeFiles/synts.dir/src/circuit/cell_library.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/cell_library.cpp.o.d"
  "/root/repo/src/circuit/dynamic_timing.cpp" "CMakeFiles/synts.dir/src/circuit/dynamic_timing.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/dynamic_timing.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "CMakeFiles/synts.dir/src/circuit/netlist.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/netlist_builder.cpp" "CMakeFiles/synts.dir/src/circuit/netlist_builder.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/netlist_builder.cpp.o.d"
  "/root/repo/src/circuit/ring_oscillator.cpp" "CMakeFiles/synts.dir/src/circuit/ring_oscillator.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/ring_oscillator.cpp.o.d"
  "/root/repo/src/circuit/sta.cpp" "CMakeFiles/synts.dir/src/circuit/sta.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/sta.cpp.o.d"
  "/root/repo/src/circuit/voltage_model.cpp" "CMakeFiles/synts.dir/src/circuit/voltage_model.cpp.o" "gcc" "CMakeFiles/synts.dir/src/circuit/voltage_model.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "CMakeFiles/synts.dir/src/core/characterization.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/characterization.cpp.o.d"
  "/root/repo/src/core/config_space.cpp" "CMakeFiles/synts.dir/src/core/config_space.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/config_space.cpp.o.d"
  "/root/repo/src/core/critical_sections.cpp" "CMakeFiles/synts.dir/src/core/critical_sections.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/critical_sections.cpp.o.d"
  "/root/repo/src/core/error_model.cpp" "CMakeFiles/synts.dir/src/core/error_model.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/error_model.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "CMakeFiles/synts.dir/src/core/experiment.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/experiment.cpp.o.d"
  "/root/repo/src/core/milp.cpp" "CMakeFiles/synts.dir/src/core/milp.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/milp.cpp.o.d"
  "/root/repo/src/core/online_estimator.cpp" "CMakeFiles/synts.dir/src/core/online_estimator.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/online_estimator.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "CMakeFiles/synts.dir/src/core/policies.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/policies.cpp.o.d"
  "/root/repo/src/core/program_artifacts.cpp" "CMakeFiles/synts.dir/src/core/program_artifacts.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/program_artifacts.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "CMakeFiles/synts.dir/src/core/solver.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/solver.cpp.o.d"
  "/root/repo/src/core/system_model.cpp" "CMakeFiles/synts.dir/src/core/system_model.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/system_model.cpp.o.d"
  "/root/repo/src/core/workload_predictor.cpp" "CMakeFiles/synts.dir/src/core/workload_predictor.cpp.o" "gcc" "CMakeFiles/synts.dir/src/core/workload_predictor.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "CMakeFiles/synts.dir/src/energy/energy_model.cpp.o" "gcc" "CMakeFiles/synts.dir/src/energy/energy_model.cpp.o.d"
  "/root/repo/src/energy/synthesis_report.cpp" "CMakeFiles/synts.dir/src/energy/synthesis_report.cpp.o" "gcc" "CMakeFiles/synts.dir/src/energy/synthesis_report.cpp.o.d"
  "/root/repo/src/gpgpu/hamming.cpp" "CMakeFiles/synts.dir/src/gpgpu/hamming.cpp.o" "gcc" "CMakeFiles/synts.dir/src/gpgpu/hamming.cpp.o.d"
  "/root/repo/src/gpgpu/kernels.cpp" "CMakeFiles/synts.dir/src/gpgpu/kernels.cpp.o" "gcc" "CMakeFiles/synts.dir/src/gpgpu/kernels.cpp.o.d"
  "/root/repo/src/gpgpu/simd.cpp" "CMakeFiles/synts.dir/src/gpgpu/simd.cpp.o" "gcc" "CMakeFiles/synts.dir/src/gpgpu/simd.cpp.o.d"
  "/root/repo/src/runtime/experiment_cache.cpp" "CMakeFiles/synts.dir/src/runtime/experiment_cache.cpp.o" "gcc" "CMakeFiles/synts.dir/src/runtime/experiment_cache.cpp.o.d"
  "/root/repo/src/runtime/sweep.cpp" "CMakeFiles/synts.dir/src/runtime/sweep.cpp.o" "gcc" "CMakeFiles/synts.dir/src/runtime/sweep.cpp.o.d"
  "/root/repo/src/runtime/sweep_io.cpp" "CMakeFiles/synts.dir/src/runtime/sweep_io.cpp.o" "gcc" "CMakeFiles/synts.dir/src/runtime/sweep_io.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "CMakeFiles/synts.dir/src/runtime/thread_pool.cpp.o" "gcc" "CMakeFiles/synts.dir/src/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/storage/artifact_store.cpp" "CMakeFiles/synts.dir/src/storage/artifact_store.cpp.o" "gcc" "CMakeFiles/synts.dir/src/storage/artifact_store.cpp.o.d"
  "/root/repo/src/storage/serialize.cpp" "CMakeFiles/synts.dir/src/storage/serialize.cpp.o" "gcc" "CMakeFiles/synts.dir/src/storage/serialize.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/synts.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "CMakeFiles/synts.dir/src/util/histogram.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/synts.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/synts.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "CMakeFiles/synts.dir/src/util/statistics.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/statistics.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/synts.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/synts.dir/src/util/table.cpp.o.d"
  "/root/repo/src/workload/splash2.cpp" "CMakeFiles/synts.dir/src/workload/splash2.cpp.o" "gcc" "CMakeFiles/synts.dir/src/workload/splash2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
