file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_predictor.dir/bench/bench_ext_predictor.cpp.o"
  "CMakeFiles/bench_ext_predictor.dir/bench/bench_ext_predictor.cpp.o.d"
  "bench_ext_predictor"
  "bench_ext_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
