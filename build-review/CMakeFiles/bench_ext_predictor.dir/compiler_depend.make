# Empty compiler generated dependencies file for bench_ext_predictor.
# This may be replaced when dependencies are built.
