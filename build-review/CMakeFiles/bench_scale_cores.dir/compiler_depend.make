# Empty compiler generated dependencies file for bench_scale_cores.
# This may be replaced when dependencies are built.
