file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_cores.dir/bench/bench_scale_cores.cpp.o"
  "CMakeFiles/bench_scale_cores.dir/bench/bench_scale_cores.cpp.o.d"
  "bench_scale_cores"
  "bench_scale_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
