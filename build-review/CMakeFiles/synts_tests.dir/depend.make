# Empty dependencies file for synts_tests.
# This may be replaced when dependencies are built.
