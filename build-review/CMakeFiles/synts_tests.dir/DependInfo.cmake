
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch_branch.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_branch.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_branch.cpp.o.d"
  "/root/repo/tests/test_arch_cache.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_cache.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_cache.cpp.o.d"
  "/root/repo/tests/test_arch_multicore.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_multicore.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_multicore.cpp.o.d"
  "/root/repo/tests/test_arch_pipeline.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_pipeline.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_pipeline.cpp.o.d"
  "/root/repo/tests/test_arch_razor.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_razor.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_razor.cpp.o.d"
  "/root/repo/tests/test_arch_stage_taps.cpp" "CMakeFiles/synts_tests.dir/tests/test_arch_stage_taps.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_arch_stage_taps.cpp.o.d"
  "/root/repo/tests/test_circuit_builders.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_builders.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_builders.cpp.o.d"
  "/root/repo/tests/test_circuit_cells.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_cells.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_cells.cpp.o.d"
  "/root/repo/tests/test_circuit_dynamic_timing.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_dynamic_timing.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_dynamic_timing.cpp.o.d"
  "/root/repo/tests/test_circuit_netlist.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_netlist.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_netlist.cpp.o.d"
  "/root/repo/tests/test_circuit_random_netlists.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_random_netlists.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_random_netlists.cpp.o.d"
  "/root/repo/tests/test_circuit_sta.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_sta.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_sta.cpp.o.d"
  "/root/repo/tests/test_circuit_voltage.cpp" "CMakeFiles/synts_tests.dir/tests/test_circuit_voltage.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_circuit_voltage.cpp.o.d"
  "/root/repo/tests/test_core_characterization_pipeline.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_characterization_pipeline.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_characterization_pipeline.cpp.o.d"
  "/root/repo/tests/test_core_config_space.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_config_space.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_config_space.cpp.o.d"
  "/root/repo/tests/test_core_error_model.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_error_model.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_error_model.cpp.o.d"
  "/root/repo/tests/test_core_experiment_api.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_experiment_api.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_experiment_api.cpp.o.d"
  "/root/repo/tests/test_core_extensions.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_extensions.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_extensions.cpp.o.d"
  "/root/repo/tests/test_core_milp.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_milp.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_milp.cpp.o.d"
  "/root/repo/tests/test_core_online.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_online.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_online.cpp.o.d"
  "/root/repo/tests/test_core_policies.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_policies.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_policies.cpp.o.d"
  "/root/repo/tests/test_core_solvers.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_solvers.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_solvers.cpp.o.d"
  "/root/repo/tests/test_core_system_model.cpp" "CMakeFiles/synts_tests.dir/tests/test_core_system_model.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_core_system_model.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "CMakeFiles/synts_tests.dir/tests/test_energy.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_energy.cpp.o.d"
  "/root/repo/tests/test_gpgpu.cpp" "CMakeFiles/synts_tests.dir/tests/test_gpgpu.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_gpgpu.cpp.o.d"
  "/root/repo/tests/test_integration_experiment.cpp" "CMakeFiles/synts_tests.dir/tests/test_integration_experiment.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_integration_experiment.cpp.o.d"
  "/root/repo/tests/test_integration_razor_validation.cpp" "CMakeFiles/synts_tests.dir/tests/test_integration_razor_validation.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_integration_razor_validation.cpp.o.d"
  "/root/repo/tests/test_runtime_cache.cpp" "CMakeFiles/synts_tests.dir/tests/test_runtime_cache.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_runtime_cache.cpp.o.d"
  "/root/repo/tests/test_runtime_pool.cpp" "CMakeFiles/synts_tests.dir/tests/test_runtime_pool.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_runtime_pool.cpp.o.d"
  "/root/repo/tests/test_runtime_program_cache.cpp" "CMakeFiles/synts_tests.dir/tests/test_runtime_program_cache.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_runtime_program_cache.cpp.o.d"
  "/root/repo/tests/test_runtime_sweep.cpp" "CMakeFiles/synts_tests.dir/tests/test_runtime_sweep.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_runtime_sweep.cpp.o.d"
  "/root/repo/tests/test_storage_serialize.cpp" "CMakeFiles/synts_tests.dir/tests/test_storage_serialize.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_storage_serialize.cpp.o.d"
  "/root/repo/tests/test_storage_store.cpp" "CMakeFiles/synts_tests.dir/tests/test_storage_store.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_storage_store.cpp.o.d"
  "/root/repo/tests/test_util_histogram.cpp" "CMakeFiles/synts_tests.dir/tests/test_util_histogram.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_util_histogram.cpp.o.d"
  "/root/repo/tests/test_util_rng.cpp" "CMakeFiles/synts_tests.dir/tests/test_util_rng.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_util_rng.cpp.o.d"
  "/root/repo/tests/test_util_statistics.cpp" "CMakeFiles/synts_tests.dir/tests/test_util_statistics.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_util_statistics.cpp.o.d"
  "/root/repo/tests/test_util_table_csv.cpp" "CMakeFiles/synts_tests.dir/tests/test_util_table_csv.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_util_table_csv.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "CMakeFiles/synts_tests.dir/tests/test_workload.cpp.o" "gcc" "CMakeFiles/synts_tests.dir/tests/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/synts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
