file(REMOVE_RECURSE
  "CMakeFiles/gpgpu_case_study.dir/examples/gpgpu_case_study.cpp.o"
  "CMakeFiles/gpgpu_case_study.dir/examples/gpgpu_case_study.cpp.o.d"
  "gpgpu_case_study"
  "gpgpu_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpgpu_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
