# Empty compiler generated dependencies file for gpgpu_case_study.
# This may be replaced when dependencies are built.
