file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_18.dir/bench/bench_fig6_18.cpp.o"
  "CMakeFiles/bench_fig6_18.dir/bench/bench_fig6_18.cpp.o.d"
  "bench_fig6_18"
  "bench_fig6_18.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
