# Empty compiler generated dependencies file for bench_fig6_18.
# This may be replaced when dependencies are built.
