# Empty dependencies file for bench_micro_estimator.
# This may be replaced when dependencies are built.
