file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_estimator.dir/bench/bench_micro_estimator.cpp.o"
  "CMakeFiles/bench_micro_estimator.dir/bench/bench_micro_estimator.cpp.o.d"
  "bench_micro_estimator"
  "bench_micro_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
