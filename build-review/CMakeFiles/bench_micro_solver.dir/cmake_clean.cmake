file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_solver.dir/bench/bench_micro_solver.cpp.o"
  "CMakeFiles/bench_micro_solver.dir/bench/bench_micro_solver.cpp.o.d"
  "bench_micro_solver"
  "bench_micro_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
