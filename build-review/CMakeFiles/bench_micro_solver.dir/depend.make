# Empty dependencies file for bench_micro_solver.
# This may be replaced when dependencies are built.
