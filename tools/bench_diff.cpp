// bench_diff -- the perf-regression ledger's comparator.
//
// Compares a BENCH_*.json artifact against a baseline under per-metric
// tolerances and exits non-zero when anything regressed -- the missing
// half of the bench story: run_benches.sh has always *produced* artifacts,
// but nothing ever *compared* them across commits, so the bench trajectory
// was write-only. CI runs this twice per artifact: against a byte-identical
// copy (must pass) and against a doctored copy with a 20% slowdown (must
// fail), then against the committed bench/baselines/ under --ratios-only.
//
// Comparison model: both documents are flattened to dotted numeric paths
// ("benches.bench_micro_solver.seconds", "disabled_over_bare"; array
// elements keyed by their "name" member when present, by index otherwise;
// booleans as 0/1). Direction is inferred from the leaf name -- throughput
// (`*_per_second`, `*_per_s`, `*_rate`), speedups and verdicts (`pass`)
// regress DOWNWARD, everything else (timings, counts of failures)
// regresses UPWARD.
// `meta.*` and `generated_unix` are provenance, never compared. A metric
// present in the baseline but missing from the current document is a
// failure (silent schema drift looks exactly like a fixed regression).
//
// --ratios-only restricts the comparison to machine-portable metrics
// (dimensionless ratios, verdicts, exit codes): absolute ns/iter timings
// differ across CI machine generations, but disabled_over_bare is a
// property of the CODE, which is what a committed baseline can honestly
// pin.
//
// Usage:
//   bench_diff [--tolerance=PCT] [--tol=PATH=PCT]... [--ratios-only]
//              [--list] BASELINE.json CURRENT.json
// Exit: 0 within tolerance, 1 regression or missing metric, 2 usage/parse.

#include <cstdio>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace {

using synts::util::json_value;

constexpr std::string_view usage =
    R"(bench_diff -- compare a BENCH_*.json against a baseline under tolerances

  bench_diff [options] BASELINE.json CURRENT.json

  --tolerance=PCT  default allowed drift in percent (default 10)
  --tol=PATH=PCT   per-metric override, PATH as printed by --list
                   (repeatable, e.g. --tol=disabled_over_bare=2)
  --ratios-only    compare only machine-portable metrics: dimensionless
                   ratios (paths containing "over", "ratio", "speedup"),
                   verdicts ("pass") and exit codes -- for committed
                   baselines that must hold across machines
  --list           print every compared path with baseline/current values

  Exit: 0 all within tolerance; 1 regression or baseline metric missing
  from current; 2 usage or parse error.
)";

/// Leaf metric name of a dotted path.
std::string_view leaf(std::string_view path)
{
    const std::size_t dot = path.rfind('.');
    return dot == std::string_view::npos ? path : path.substr(dot + 1);
}

bool higher_is_better(std::string_view path)
{
    const std::string_view l = leaf(path);
    return l == "pass" || l.ends_with("_per_second") || l.ends_with("_per_s") ||
           l.ends_with("_rate") || l.ends_with("per_iter_inverse") ||
           l.find("speedup") != std::string_view::npos;
}

bool ratio_metric(std::string_view path)
{
    const std::string_view l = leaf(path);
    return l == "pass" || l == "exit_code" || l.find("over") != std::string_view::npos ||
           l.find("ratio") != std::string_view::npos ||
           l.find("speedup") != std::string_view::npos;
}

/// Flattens numeric/boolean leaves into dotted paths. Array elements of
/// objects carrying a string "name" member are keyed by that name (stable
/// across reordering); other elements by index.
void flatten(const json_value& value, const std::string& path,
             std::map<std::string, double>& out)
{
    switch (value.type()) {
    case json_value::kind::number: out[path] = value.as_number(); return;
    case json_value::kind::boolean: out[path] = value.as_bool() ? 1.0 : 0.0; return;
    case json_value::kind::object:
        for (const auto& [key, member] : value.as_object()) {
            if (path.empty() && (key == "meta" || key == "generated_unix")) {
                continue; // provenance, not performance
            }
            flatten(member, path.empty() ? key : path + "." + key, out);
        }
        return;
    case json_value::kind::array: {
        const auto& elements = value.as_array();
        for (std::size_t i = 0; i < elements.size(); ++i) {
            std::string key;
            if (const json_value* name = elements[i].find("name");
                name != nullptr && name->is_string()) {
                key = name->as_string();
            } else {
                key = std::to_string(i);
            }
            flatten(elements[i], path.empty() ? key : path + "." + key, out);
        }
        return;
    }
    case json_value::kind::string:
    case json_value::kind::null: return; // not comparable
    }
}

std::optional<json_value> load_json(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return json_value::parse(buffer.str());
    } catch (const synts::util::json_error& error) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), error.what());
        return std::nullopt;
    }
}

} // namespace

int main(int argc, char** argv)
{
    double tolerance_pct = 10.0;
    std::map<std::string, double> overrides;
    bool ratios_only = false;
    bool list = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value_of = [&](std::string_view prefix) -> std::optional<std::string_view> {
            if (arg.starts_with(prefix)) {
                return arg.substr(prefix.size());
            }
            return std::nullopt;
        };
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage.data(), stdout);
            return 0;
        }
        if (arg == "--ratios-only") {
            ratios_only = true;
        } else if (arg == "--list") {
            list = true;
        } else if (const auto v = value_of("--tolerance=")) {
            char* end = nullptr;
            tolerance_pct = std::strtod(std::string(*v).c_str(), &end);
            if (v->empty() || tolerance_pct < 0.0) {
                std::fprintf(stderr, "bench_diff: bad --tolerance\n");
                return 2;
            }
        } else if (const auto v = value_of("--tol=")) {
            const std::size_t eq = v->rfind('=');
            if (eq == std::string_view::npos || eq == 0 || eq + 1 >= v->size()) {
                std::fprintf(stderr, "bench_diff: --tol expects PATH=PCT\n");
                return 2;
            }
            const double pct = std::strtod(std::string(v->substr(eq + 1)).c_str(), nullptr);
            if (pct < 0.0) {
                std::fprintf(stderr, "bench_diff: bad --tol percentage\n");
                return 2;
            }
            overrides[std::string(v->substr(0, eq))] = pct;
        } else if (arg.starts_with("--")) {
            std::fprintf(stderr, "bench_diff: unknown flag %s\n\n%s",
                         std::string(arg).c_str(), usage.data());
            return 2;
        } else {
            files.emplace_back(arg);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr, "bench_diff: expected BASELINE.json CURRENT.json\n\n%s",
                     usage.data());
        return 2;
    }

    const std::optional<json_value> baseline_doc = load_json(files[0]);
    const std::optional<json_value> current_doc = load_json(files[1]);
    if (!baseline_doc || !current_doc) {
        return 2;
    }

    std::map<std::string, double> baseline;
    std::map<std::string, double> current;
    flatten(*baseline_doc, "", baseline);
    flatten(*current_doc, "", current);

    int regressions = 0;
    int compared = 0;
    for (const auto& [path, base_value] : baseline) {
        if (ratios_only && !ratio_metric(path)) {
            continue;
        }
        const auto it = current.find(path);
        if (it == current.end()) {
            std::fprintf(stderr, "MISSING %s (baseline %.6g, absent in current)\n",
                         path.c_str(), base_value);
            ++regressions;
            continue;
        }
        const double cur_value = it->second;
        ++compared;

        const auto override_it = overrides.find(path);
        const double tol =
            (override_it != overrides.end() ? override_it->second : tolerance_pct) /
            100.0;
        const bool higher_better = higher_is_better(path);

        bool regressed = false;
        if (base_value == 0.0) {
            // No ratio exists; additive: any upward move of a lower-better
            // metric off a zero baseline (exit_code 0 -> 1) is a regression.
            regressed = !higher_better && cur_value > 1e-12;
        } else if (higher_better) {
            regressed = cur_value < base_value * (1.0 - tol);
        } else {
            regressed = cur_value > base_value * (1.0 + tol);
        }

        if (list || regressed) {
            const double ratio = base_value != 0.0 ? cur_value / base_value : 0.0;
            std::fprintf(regressed ? stderr : stdout,
                         "%s %s: baseline %.6g, current %.6g (%.3fx, tol %.1f%%%s)\n",
                         regressed ? "REGRESSED" : "ok", path.c_str(), base_value,
                         cur_value, ratio, tol * 100.0,
                         higher_better ? ", higher-better" : "");
        }
        if (regressed) {
            ++regressions;
        }
    }

    std::printf("bench_diff: %d metric%s compared, %d regression%s\n", compared,
                compared == 1 ? "" : "s", regressions, regressions == 1 ? "" : "s");
    return regressions > 0 ? 1 : 0;
}
