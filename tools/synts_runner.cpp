// synts_runner -- batched sweep CLI over the experiment runtime.
//
// Expands a declarative sweep spec (workload set x stage set x theta
// ladder x policy set) onto the work-stealing thread pool, memoizing
// characterizations in the process-wide experiment cache, and emits the
// aggregate as a console table plus optional CSV / JSON files. Workloads
// are resolved through the workload registry, so the sweep axis covers the
// ten built-in SPLASH-2 profiles AND every registered scenario-family
// instance (--list-benchmarks enumerates them).
//
// Examples:
//   synts_runner --benchmarks=reported --stages=all --policies=all
//   synts_runner --benchmarks=lock_ladder,graph_walk --stages=simple_alu
//                --ladder=default --workers=4 --pareto-csv=fronts.csv
//                --summary-csv=summary.csv --json=sweep.json
//   (one line; wrapped here for width)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "runtime/fleet_watch.h"
#include "runtime/speculator.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "storage/artifact_store.h"
#include "workload/registry.h"

namespace {

using namespace synts;

constexpr std::string_view usage = R"(synts_runner -- batched SynTS experiment sweeps

  --benchmarks=LIST   comma list of registered workload names, "all" (every
                      registered workload), "splash2" (the built-in ten), or
                      "reported" (the paper's seven; default). --benchmark
                      is an alias; --list-benchmarks enumerates the names.
  --define=SPEC       register a parametric scenario instance at runtime so
                      it is sweepable without recompiling; repeatable.
                      SPEC is family:name=NAME[,param=value]..., e.g.
                      --define=lock_ladder:name=ll9,base_contention=0.9
                      (families: lock_ladder, pipeline, graph_walk; pipeline
                      stage_weights is '+'-separated: 1.0+0.5+0.25). Defines
                      apply before --benchmarks is resolved, regardless of
                      flag order.
  --stages=LIST       comma list of decode,simple_alu,complex_alu or "all"
                      (default: all)
  --policies=LIST     comma list of nominal,no_ts,per_core_ts,synts_offline,
                      synts_online or "all" (default: all)
  --ladder=SPEC       theta multipliers: "default" (2^-6..2^6), "none", or a
                      comma list of numbers (default: none)
  --speculate[=N]     spend idle pool workers computing likely-next cells
                      (the next scenario-ladder rung, the sibling pipe
                      stages of each demanded workload) under cancellable
                      low-priority tasks, preempted the moment real demand
                      needs a worker. N >= 1 bounds concurrent speculative
                      constructions (bare flag: 1). Speculation fills the
                      same keyed cache demand would, so every output --
                      tables, CSVs, --json -- is byte-identical with or
                      without this flag; only the wall clock and the
                      spec.* metrics change.
  --workers=N         thread-pool width, N >= 1 (default: hardware
                      concurrency)
  --jobs=N            alias for --workers (last one given wins)
  --cores=M           modeled CMP cores per experiment, M >= 1 (default: 4)
  --seed=N            workload seed (default: 42)
  --pareto-csv=PATH   write per-multiplier Pareto fronts as CSV
  --summary-csv=PATH  write equal-weight operating points as CSV
  --json=PATH         write the full result (spec echo + cells; byte-stable
                      across cold/warm/resumed runs of one spec)
  --store[=DIR]       persist program artifacts and finished sweep cells in
                      DIR (default .synts-store), and reuse artifacts from
                      it: a warm re-run performs zero trace generations and
                      zero profiler runs. Safe to share between concurrent
                      runners (atomic write-back).
  --resume            with --store: skip cells already materialized in the
                      store, so a killed sweep restarts where it died
  --shard=I/N         with --store: run only shard I of an N-way
                      pair-granular partition of the sweep, checkpointing
                      its cells under their GLOBAL indices in the shared
                      store -- N runner processes with --shard=0/N .. N-1/N
                      and one store jointly cover the spec. Records the
                      layout in the store and refuses a partition that
                      conflicts with one already recorded for this spec
                      (exit 2). Table/CSV/JSON outputs cover this shard's
                      cells only; assemble the full document with --merge.
  --merge             with --store: do not compute anything -- verify that
                      every shard of this spec recorded completion in the
                      store, assemble the full result from the checkpoints,
                      and emit it (byte-identical JSON to a single-process
                      run of the same spec). Missing, foreign or mismatched
                      manifests exit 2. Mutually exclusive with --shard and
                      --resume.
  --cache-stats[=FMT] print hit/miss counts of every cache tier (program
                      artifacts, stage experiments, disk store, cell
                      checkpoints) plus the compute count, sourced from the
                      process metrics registry; FMT: table (default), csv,
                      json
  --metrics[=FMT]     after the run, print the whole metrics registry --
                      pool.*, cache.tier<N>.*, store.*, sweep.* counters,
                      gauges and latency histograms (p50/p95/p99); FMT:
                      table (default), csv, json, prom (Prometheus/
                      OpenMetrics text exposition, synts_* names)
  --sample=MS[:FILE]  sample the metrics registry every MS milliseconds
                      during the run (background thread, fixed-capacity
                      per-series rings, drop-oldest) and write the JSONL
                      timeline -- one object per tick with totals and
                      derived per-second rates -- to FILE (default
                      metrics_timeline.jsonl). Implies telemetry on.
  --trace=FILE        record spans (sweep cells, cache builds/computes)
                      during the run and write Chrome trace-event JSON to
                      FILE (open in Perfetto or chrome://tracing)
  --status[=DIR]      standalone: print the fleet view of every sweep
                      recorded in DIR's store (per-shard cells-done/owned
                      progress, completion marks) and exit; DIR defaults to
                      the --store directory, else .synts-store
  --watch[=DIR]       standalone: live fleet view over DIR's store (DIR
                      defaults like --status), reprinted every --sample
                      period (default 1000 ms) with per-shard cells/s, ETA,
                      and a STALLED flag once a shard's progress frame is
                      older than --stall-ms. Exits 0 when every sweep is
                      complete (or none is recorded), 3 on the first
                      detected stall.
  --stall-ms=N        --watch staleness threshold in milliseconds, N >= 1
                      (default 10000 -- 40x the publisher's 250 ms cadence)
  --list-benchmarks   print every registered workload name (one per line:
                      the SPLASH-2 profiles, then the scenario-family
                      instances) and exit
  --quiet             suppress the console table
  --help              this text

  Value flags accept both --flag=VALUE and --flag VALUE, except --store,
  --cache-stats, --metrics, --status, --watch and --speculate, whose bare
  spellings select their defaults (use = to pass a value).
)";

std::optional<std::string_view> flag_value(std::string_view arg, std::string_view name)
{
    if (arg.size() > name.size() + 3 && arg.starts_with("--") &&
        arg.substr(2, name.size()) == name && arg[2 + name.size()] == '=') {
        return arg.substr(name.size() + 3);
    }
    return std::nullopt;
}

std::vector<double> parse_ladder(std::string_view spec)
{
    if (spec == "default") {
        return core::default_theta_multipliers();
    }
    if (spec == "none" || spec.empty()) {
        return {};
    }
    std::vector<double> ladder;
    for (const std::string_view raw : runtime::split_csv(spec)) {
        const std::string token(raw);
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(token, &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
        if (token.empty() || consumed != token.size() || value <= 0.0) {
            throw std::invalid_argument("bad theta multiplier: \"" + token + "\"");
        }
        ladder.push_back(value);
    }
    return ladder;
}

/// Strict unsigned parse: the whole token must be digits -- no silent
/// truncation of "4x" to 4, and no leading sign/whitespace (std::stoull
/// would happily wrap "-1" to 2^64-1, turning --workers=-1 into an attempt
/// to spawn 2^64 threads instead of a usage error).
std::uint64_t parse_u64(std::string_view flag, std::string_view token)
{
    std::uint64_t value = 0;
    std::size_t consumed = 0;
    const bool starts_with_digit = !token.empty() && token[0] >= '0' && token[0] <= '9';
    if (starts_with_digit) {
        try {
            value = std::stoull(std::string(token), &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
    }
    if (!starts_with_digit || consumed != token.size()) {
        throw std::invalid_argument(std::string(flag) + " expects an unsigned integer, got \"" +
                                    std::string(token) + "\"");
    }
    return value;
}

/// Like parse_u64 but rejects 0 (worker pools and CMP core counts cannot
/// be empty; 0 silently meaning "default" hid typos like --jobs 0).
std::uint64_t parse_positive(std::string_view flag, std::string_view token)
{
    const std::uint64_t value = parse_u64(flag, token);
    if (value == 0) {
        throw std::invalid_argument(std::string(flag) + " must be >= 1");
    }
    return value;
}

/// "I/N" with I < N, N >= 1 (strict digits on both sides).
runtime::sweep_shard parse_shard(std::string_view token)
{
    const std::size_t slash = token.find('/');
    if (slash == std::string_view::npos) {
        throw std::invalid_argument("--shard expects I/N (e.g. 0/4), got \"" +
                                    std::string(token) + "\"");
    }
    const std::uint64_t index = parse_u64("--shard index", token.substr(0, slash));
    const std::uint64_t count = parse_u64("--shard count", token.substr(slash + 1));
    if (count == 0 || index >= count) {
        throw std::invalid_argument("--shard: index must be < count and count >= 1, "
                                    "got \"" + std::string(token) + "\"");
    }
    return runtime::sweep_shard{static_cast<std::size_t>(index),
                                static_cast<std::size_t>(count)};
}

/// "table" / "csv" / "json" / "prom" for --metrics (--cache-stats shares
/// the first three).
obs::metrics_format parse_metrics_format(std::string_view token)
{
    if (token == "table") {
        return obs::metrics_format::table;
    }
    if (token == "csv") {
        return obs::metrics_format::csv;
    }
    if (token == "json") {
        return obs::metrics_format::json;
    }
    if (token == "prom") {
        return obs::metrics_format::prom;
    }
    throw std::invalid_argument("bad --metrics format: \"" + std::string(token) + "\"");
}

} // namespace

int main(int argc, char** argv)
{
    runtime::sweep_spec spec;
    {
        spec.stages = runtime::parse_stage_list("all");
        const auto all = core::all_policies();
        spec.policies.assign(all.begin(), all.end());
    }
    std::size_t workers = 0; // 0 = hardware concurrency (only via default)
    std::string pareto_csv_path;
    std::string summary_csv_path;
    std::string json_path;
    std::string store_dir; // empty = no persistent store
    // Benchmark resolution is deferred until after every --define has
    // registered (flag order must not matter), so only the raw list text
    // is captured in the flag loop.
    std::string benchmarks_csv = "reported";
    std::vector<std::string> defines;
    bool list_benchmarks = false;
    bool resume = false;
    bool merge = false;
    std::optional<runtime::sweep_shard> shard;
    bool quiet = false;
    std::optional<runtime::cache_stats_format> cache_stats;
    std::optional<obs::metrics_format> metrics;
    std::string trace_path;
    bool status = false;
    std::string status_dir;
    bool watch = false;
    std::string watch_dir;
    std::uint64_t stall_ms = 10'000;
    std::optional<std::uint64_t> sample_period_ms;
    std::string sample_path = "metrics_timeline.jsonl";
    std::optional<std::uint64_t> speculate;
    workload::workload_registry& registry = workload::workload_registry::global();

    try {
        // Value flags accept --flag=VALUE and --flag VALUE; `take` consumes
        // the next argv word in the latter form and usage-errors when the
        // value is missing instead of silently reading past argc.
        int i = 1;
        const auto take = [&](std::string_view flag) -> std::string_view {
            if (i + 1 >= argc) {
                throw std::invalid_argument(std::string(flag) + " expects a value");
            }
            return argv[++i];
        };
        // "MS" or "MS:FILE" for --sample.
        const auto parse_sample = [&](std::string_view v) {
            const std::size_t colon = v.find(':');
            sample_period_ms = parse_positive(
                "--sample", colon == std::string_view::npos ? v : v.substr(0, colon));
            if (colon != std::string_view::npos) {
                if (colon + 1 >= v.size()) {
                    throw std::invalid_argument("--sample: empty FILE after ':'");
                }
                sample_path = v.substr(colon + 1);
            }
        };
        for (; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::fputs(usage.data(), stdout);
                return 0;
            }
            if (arg == "--list-benchmarks") {
                list_benchmarks = true;
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--store") {
                store_dir = ".synts-store";
            } else if (const auto v = flag_value(arg, "store")) {
                store_dir = *v;
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--merge") {
                merge = true;
            } else if (arg == "--shard") {
                shard = parse_shard(take(arg));
            } else if (const auto v = flag_value(arg, "shard")) {
                shard = parse_shard(*v);
            } else if (arg == "--define") {
                defines.emplace_back(take(arg));
            } else if (const auto v = flag_value(arg, "define")) {
                defines.emplace_back(*v);
            } else if (arg == "--cache-stats") {
                cache_stats = runtime::cache_stats_format::table;
            } else if (const auto v = flag_value(arg, "cache-stats")) {
                cache_stats = runtime::parse_cache_stats_format(*v);
                if (!cache_stats) {
                    throw std::invalid_argument("bad --cache-stats format: \"" +
                                                std::string(*v) + "\"");
                }
            } else if (arg == "--metrics") {
                metrics = obs::metrics_format::table;
            } else if (const auto v = flag_value(arg, "metrics")) {
                metrics = parse_metrics_format(*v);
            } else if (arg == "--trace") {
                trace_path = take(arg);
            } else if (const auto v = flag_value(arg, "trace")) {
                trace_path = *v;
            } else if (arg == "--status") {
                status = true;
            } else if (const auto v = flag_value(arg, "status")) {
                status = true;
                status_dir = *v;
            } else if (arg == "--watch") {
                watch = true;
            } else if (const auto v = flag_value(arg, "watch")) {
                watch = true;
                watch_dir = *v;
            } else if (arg == "--stall-ms") {
                stall_ms = parse_positive(arg, take(arg));
            } else if (const auto v = flag_value(arg, "stall-ms")) {
                stall_ms = parse_positive("--stall-ms", *v);
            } else if (arg == "--sample") {
                parse_sample(take(arg));
            } else if (const auto v = flag_value(arg, "sample")) {
                parse_sample(*v);
            } else if (arg == "--benchmarks" || arg == "--benchmark") {
                benchmarks_csv = take(arg);
            } else if (const auto v = flag_value(arg, "benchmarks")) {
                benchmarks_csv = *v;
            } else if (const auto v = flag_value(arg, "benchmark")) {
                benchmarks_csv = *v;
            } else if (arg == "--stages") {
                spec.stages = runtime::parse_stage_list(take(arg));
            } else if (const auto v = flag_value(arg, "stages")) {
                spec.stages = runtime::parse_stage_list(*v);
            } else if (arg == "--policies") {
                spec.policies = runtime::parse_policy_list(take(arg));
            } else if (const auto v = flag_value(arg, "policies")) {
                spec.policies = runtime::parse_policy_list(*v);
            } else if (arg == "--ladder") {
                spec.theta_multipliers = parse_ladder(take(arg));
            } else if (const auto v = flag_value(arg, "ladder")) {
                spec.theta_multipliers = parse_ladder(*v);
            } else if (arg == "--speculate") {
                speculate = 1;
            } else if (const auto v = flag_value(arg, "speculate")) {
                speculate = parse_positive("--speculate", *v);
            } else if (arg == "--workers" || arg == "--jobs") {
                workers = parse_positive(arg, take(arg));
            } else if (const auto v = flag_value(arg, "workers")) {
                workers = parse_positive("--workers", *v);
            } else if (const auto v = flag_value(arg, "jobs")) {
                workers = parse_positive("--jobs", *v);
            } else if (arg == "--cores") {
                spec.config.thread_count = parse_positive(arg, take(arg));
            } else if (const auto v = flag_value(arg, "cores")) {
                spec.config.thread_count = parse_positive("--cores", *v);
            } else if (arg == "--seed") {
                spec.config.seed = parse_u64(arg, take(arg));
            } else if (const auto v = flag_value(arg, "seed")) {
                spec.config.seed = parse_u64("--seed", *v);
            } else if (arg == "--pareto-csv") {
                pareto_csv_path = take(arg);
            } else if (const auto v = flag_value(arg, "pareto-csv")) {
                pareto_csv_path = *v;
            } else if (arg == "--summary-csv") {
                summary_csv_path = take(arg);
            } else if (const auto v = flag_value(arg, "summary-csv")) {
                summary_csv_path = *v;
            } else if (arg == "--json") {
                json_path = take(arg);
            } else if (const auto v = flag_value(arg, "json")) {
                json_path = *v;
            } else {
                throw std::invalid_argument("unknown flag: " + std::string(arg));
            }
        }
        if (resume && store_dir.empty()) {
            throw std::invalid_argument("--resume requires --store");
        }
        if (shard.has_value() && store_dir.empty()) {
            throw std::invalid_argument(
                "--shard requires --store (the shared store is where a shard's "
                "cells land)");
        }
        if (merge && store_dir.empty()) {
            throw std::invalid_argument("--merge requires --store");
        }
        if (merge && shard.has_value()) {
            throw std::invalid_argument("--merge and --shard are mutually exclusive "
                                        "(merge assembles, it does not compute)");
        }
        if (merge && resume) {
            throw std::invalid_argument("--merge and --resume are mutually exclusive");
        }
        if (merge && speculate.has_value()) {
            throw std::invalid_argument("--merge and --speculate are mutually "
                                        "exclusive (merge computes nothing, so "
                                        "there is nothing to speculate ahead of)");
        }

        // Register every --define, THEN resolve the benchmark list against
        // the enlarged registry.
        for (const std::string& define : defines) {
            (void)registry.register_defined(define);
        }
        if (list_benchmarks) {
            for (const workload::workload_key& key : registry.keys()) {
                std::printf("%s\n", key.name.c_str());
            }
            return 0;
        }
        spec.benchmarks = runtime::parse_workload_list(registry, benchmarks_csv);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "synts_runner: %s\n\n%s", error.what(), usage.data());
        return 2;
    }

    try {
        if (status) {
            // Standalone fleet view: read-only over the store's manifest
            // bucket, no sweep is run.
            const std::string dir = !status_dir.empty() ? status_dir
                                    : !store_dir.empty() ? store_dir
                                                         : ".synts-store";
            const storage::artifact_store status_store(dir);
            std::fputs(runtime::render_store_status(status_store).c_str(), stdout);
            return 0;
        }

        if (watch) {
            // Standalone watchdog loop: --status plus the time axis. Reads
            // only the store, so it can watch a fleet of shard processes
            // from any machine sharing the directory.
            const std::string dir = !watch_dir.empty()  ? watch_dir
                                    : !store_dir.empty() ? store_dir
                                                         : ".synts-store";
            const storage::artifact_store watch_store(dir);
            runtime::watch_config watch_cfg;
            watch_cfg.stall_ns = stall_ms * 1'000'000ull;
            runtime::fleet_watch watcher(watch_store, watch_cfg);
            const std::chrono::milliseconds period(sample_period_ms.value_or(1000));
            for (;;) {
                const runtime::watch_report report = watcher.tick(obs::now_ns());
                std::fputs(runtime::render_watch_report(report).c_str(), stdout);
                std::fflush(stdout);
                if (report.sweeps.empty()) {
                    return 0; // nothing to watch; don't spin forever in CI
                }
                if (report.any_stalled) {
                    return 3;
                }
                if (report.all_complete) {
                    return 0;
                }
                std::this_thread::sleep_for(period);
            }
        }

        // Telemetry switches on BEFORE the pool/cache/store exist so their
        // instruments observe the whole run. Counters are always live; this
        // flag arms the clock-reading paths (latency histograms, spans).
        if (metrics.has_value() || !trace_path.empty() || sample_period_ms.has_value()) {
            obs::set_enabled(true);
        }
        if (!trace_path.empty()) {
            obs::trace_recorder::global().set_enabled(true);
        }
        std::unique_ptr<obs::sampler> sampler;
        if (sample_period_ms.has_value()) {
            obs::sampler_config sampler_cfg;
            sampler_cfg.period = std::chrono::milliseconds(*sample_period_ms);
            sampler = std::make_unique<obs::sampler>(obs::metrics_registry::global(),
                                                     sampler_cfg);
            sampler->start();
        }

        runtime::experiment_cache& cache = runtime::experiment_cache::process_cache();
        runtime::sweep_options options;
        std::shared_ptr<storage::artifact_store> store;
        if (!store_dir.empty()) {
            store = std::make_shared<storage::artifact_store>(store_dir);
            cache.attach_store(store);
            options.store = store.get();
            options.resume = resume;
            options.shard = shard;
        }

        runtime::sweep_result result;
        if (merge) {
            result = runtime::merge_sweep_shards(spec, *store);
            if (!quiet) {
                std::fputs(runtime::render_sweep_table(result).c_str(), stdout);
                std::printf("merged %zu cells from the store's checkpoints\n",
                            result.cells.size());
            }
        } else {
            runtime::thread_pool pool(workers);
            // Declared after the pool so it is destroyed (cancel + drain)
            // while the pool is still alive.
            std::unique_ptr<runtime::speculator> spec_engine;
            if (speculate.has_value()) {
                spec_engine = std::make_unique<runtime::speculator>(
                    pool, cache, static_cast<std::size_t>(*speculate));
                options.speculate = spec_engine.get();
            }
            runtime::sweep_scheduler scheduler(pool, cache);
            result = scheduler.run(spec, options);
            if (spec_engine != nullptr) {
                spec_engine->drain(); // settle accounting before reporting
            }

            if (!quiet) {
                std::fputs(runtime::render_sweep_table(result).c_str(), stdout);
                if (shard.has_value()) {
                    std::printf("shard %zu/%zu: ", shard->index, shard->count);
                }
                std::printf("%zu cells in %.2f s on %zu workers "
                            "(stage cache: %llu hits, %llu misses; program cache: "
                            "%llu hits, %llu misses; %llu steals)\n",
                            result.cells.size(), result.wall_seconds,
                            pool.worker_count(),
                            static_cast<unsigned long long>(result.cache_hits),
                            static_cast<unsigned long long>(result.cache_misses),
                            static_cast<unsigned long long>(result.program_cache_hits),
                            static_cast<unsigned long long>(result.program_cache_misses),
                            static_cast<unsigned long long>(pool.steal_count()));
                if (spec_engine != nullptr) {
                    std::printf("speculation: %llu launched, %llu hits, "
                                "%llu cancelled, %.1f ms wasted\n",
                                static_cast<unsigned long long>(spec_engine->launched()),
                                static_cast<unsigned long long>(spec_engine->hits()),
                                static_cast<unsigned long long>(spec_engine->cancelled()),
                                static_cast<double>(spec_engine->wasted_ns()) / 1e6);
                }
                if (store != nullptr) {
                    std::printf("store %s: %llu artifact disk hits, %llu computes, "
                                "%llu cells restored, %llu cells persisted\n",
                                store->root().c_str(),
                                static_cast<unsigned long long>(result.disk_hits),
                                static_cast<unsigned long long>(result.program_computes),
                                static_cast<unsigned long long>(result.cells_loaded),
                                static_cast<unsigned long long>(result.cells_stored));
                }
            }
        }
        if (sampler != nullptr) {
            sampler->stop(); // guaranteed final tick: end-of-run totals
        }
        if (cache_stats) {
            // Registry-sourced: the process-wide counters are the single
            // source of truth (byte-identical layout to the sink-sourced
            // renderer, which remains for multi-sweep attribution).
            std::fputs(runtime::render_cache_stats_from_metrics(*cache_stats).c_str(),
                       stdout);
        }
        if (metrics.has_value()) {
            std::fputs(obs::render_metrics(obs::metrics_registry::global().snapshot(),
                                           *metrics)
                           .c_str(),
                       stdout);
        }

        const auto write_file = [](const std::string& path, const auto& writer) {
            std::ofstream out(path);
            if (!out) {
                throw std::runtime_error("cannot open " + path);
            }
            writer(out);
        };
        if (!trace_path.empty()) {
            obs::trace_recorder::global().set_enabled(false);
            write_file(trace_path, [](std::ostream& out) {
                obs::trace_recorder::global().write_chrome_trace(out);
            });
        }
        if (sampler != nullptr) {
            write_file(sample_path, [&](std::ostream& out) {
                sampler->write_timeline_jsonl(out);
            });
        }
        // Slow-cell outliers (cells beyond k x p99 of characterize.cell_ns)
        // go to stderr: a health signal, not part of any machine-parsed
        // stdout document. Only populated when telemetry was on.
        if (const obs::health_monitor& slow = obs::health_monitor::cell_monitor();
            slow.event_count() > 0) {
            std::ostringstream log;
            slow.write_log(log);
            std::fputs(log.str().c_str(), stderr);
        }
        if (!pareto_csv_path.empty()) {
            write_file(pareto_csv_path,
                       [&](std::ostream& out) { runtime::write_pareto_csv(result, out); });
        }
        if (!summary_csv_path.empty()) {
            write_file(summary_csv_path, [&](std::ostream& out) {
                runtime::write_summary_csv(result, out);
            });
        }
        if (!json_path.empty()) {
            // Always stamped: meta rides on its own line, so determinism
            // consumers strip it with `grep -v '"meta"'`.
            const runtime::sweep_json_meta meta = runtime::collect_sweep_json_meta();
            write_file(json_path, [&](std::ostream& out) {
                runtime::write_sweep_json(result, out, &meta);
            });
        }
        return 0;
    } catch (const runtime::shard_error& error) {
        // The store's shard bookkeeping and the request disagree (layout
        // conflict, missing/foreign manifest): a usage-class refusal, not
        // a runtime failure -- nothing was computed or overwritten.
        std::fprintf(stderr, "synts_runner: %s\n", error.what());
        return 2;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "synts_runner: %s\n", error.what());
        return 1;
    }
}
