// synts_runner -- batched sweep CLI over the experiment runtime.
//
// Expands a declarative sweep spec (benchmark set x stage set x theta
// ladder x policy set) onto the work-stealing thread pool, memoizing
// characterizations in the process-wide experiment cache, and emits the
// aggregate as a console table plus optional CSV / JSON files.
//
// Examples:
//   synts_runner --benchmarks=reported --stages=all --policies=all
//   synts_runner --benchmarks=fmm,cholesky --stages=simple_alu
//                --ladder=default --workers=4 --pareto-csv=fronts.csv
//                --summary-csv=summary.csv --json=sweep.json
//   (one line; wrapped here for width)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "storage/artifact_store.h"

namespace {

using namespace synts;

constexpr std::string_view usage = R"(synts_runner -- batched SynTS experiment sweeps

  --benchmarks=LIST   comma list, "all", or "reported" (default: reported)
  --stages=LIST       comma list of decode,simple_alu,complex_alu or "all"
                      (default: all)
  --policies=LIST     comma list of nominal,no_ts,per_core_ts,synts_offline,
                      synts_online or "all" (default: all)
  --ladder=SPEC       theta multipliers: "default" (2^-6..2^6), "none", or a
                      comma list of numbers (default: none)
  --workers=N         thread-pool width (default: hardware concurrency)
  --jobs=N            alias for --workers (last one given wins)
  --cores=M           modeled CMP cores per experiment (default: 4)
  --seed=N            workload seed (default: 42)
  --pareto-csv=PATH   write per-multiplier Pareto fronts as CSV
  --summary-csv=PATH  write equal-weight operating points as CSV
  --json=PATH         write the full result (spec echo + cells; byte-stable
                      across cold/warm/resumed runs of one spec)
  --store[=DIR]       persist program artifacts and finished sweep cells in
                      DIR (default .synts-store), and reuse artifacts from
                      it: a warm re-run performs zero trace generations and
                      zero profiler runs. Safe to share between concurrent
                      runners (atomic write-back).
  --resume            with --store: skip cells already materialized in the
                      store, so a killed sweep restarts where it died
  --cache-stats[=FMT] print hit/miss counts of every cache tier (program
                      artifacts, stage experiments, disk store, cell
                      checkpoints) plus the compute count; FMT: table
                      (default), csv, json
  --quiet             suppress the console table
  --help              this text
)";

std::optional<std::string_view> flag_value(std::string_view arg, std::string_view name)
{
    if (arg.size() > name.size() + 3 && arg.starts_with("--") &&
        arg.substr(2, name.size()) == name && arg[2 + name.size()] == '=') {
        return arg.substr(name.size() + 3);
    }
    return std::nullopt;
}

std::vector<double> parse_ladder(std::string_view spec)
{
    if (spec == "default") {
        return core::default_theta_multipliers();
    }
    if (spec == "none" || spec.empty()) {
        return {};
    }
    std::vector<double> ladder;
    for (const std::string_view raw : runtime::split_csv(spec)) {
        const std::string token(raw);
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(token, &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
        if (token.empty() || consumed != token.size() || value <= 0.0) {
            throw std::invalid_argument("bad theta multiplier: \"" + token + "\"");
        }
        ladder.push_back(value);
    }
    return ladder;
}

} // namespace

int main(int argc, char** argv)
{
    runtime::sweep_spec spec;
    {
        const auto reported = workload::reported_benchmarks();
        spec.benchmarks.assign(reported.begin(), reported.end());
        spec.stages = runtime::parse_stage_list("all");
        const auto all = core::all_policies();
        spec.policies.assign(all.begin(), all.end());
    }
    std::size_t workers = 0; // 0 = hardware concurrency
    std::string pareto_csv_path;
    std::string summary_csv_path;
    std::string json_path;
    std::string store_dir; // empty = no persistent store
    bool resume = false;
    bool quiet = false;
    std::optional<runtime::cache_stats_format> cache_stats;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::fputs(usage.data(), stdout);
                return 0;
            }
            if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--store") {
                store_dir = ".synts-store";
            } else if (const auto v = flag_value(arg, "store")) {
                store_dir = *v;
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--cache-stats") {
                cache_stats = runtime::cache_stats_format::table;
            } else if (const auto v = flag_value(arg, "cache-stats")) {
                cache_stats = runtime::parse_cache_stats_format(*v);
                if (!cache_stats) {
                    throw std::invalid_argument("bad --cache-stats format: \"" +
                                                std::string(*v) + "\"");
                }
            } else if (const auto v = flag_value(arg, "benchmarks")) {
                spec.benchmarks = runtime::parse_benchmark_list(*v);
            } else if (const auto v = flag_value(arg, "stages")) {
                spec.stages = runtime::parse_stage_list(*v);
            } else if (const auto v = flag_value(arg, "policies")) {
                spec.policies = runtime::parse_policy_list(*v);
            } else if (const auto v = flag_value(arg, "ladder")) {
                spec.theta_multipliers = parse_ladder(*v);
            } else if (const auto v = flag_value(arg, "workers")) {
                workers = std::stoul(std::string(*v));
            } else if (const auto v = flag_value(arg, "jobs")) {
                workers = std::stoul(std::string(*v));
            } else if (const auto v = flag_value(arg, "cores")) {
                spec.config.thread_count = std::stoul(std::string(*v));
            } else if (const auto v = flag_value(arg, "seed")) {
                spec.config.seed = std::stoull(std::string(*v));
            } else if (const auto v = flag_value(arg, "pareto-csv")) {
                pareto_csv_path = *v;
            } else if (const auto v = flag_value(arg, "summary-csv")) {
                summary_csv_path = *v;
            } else if (const auto v = flag_value(arg, "json")) {
                json_path = *v;
            } else {
                throw std::invalid_argument("unknown flag: " + std::string(arg));
            }
        }
        if (resume && store_dir.empty()) {
            throw std::invalid_argument("--resume requires --store");
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "synts_runner: %s\n\n%s", error.what(), usage.data());
        return 2;
    }

    try {
        runtime::experiment_cache& cache = runtime::experiment_cache::process_cache();
        runtime::sweep_options options;
        std::shared_ptr<storage::artifact_store> store;
        if (!store_dir.empty()) {
            store = std::make_shared<storage::artifact_store>(store_dir);
            cache.attach_store(store);
            options.store = store.get();
            options.resume = resume;
        }

        runtime::thread_pool pool(workers);
        runtime::sweep_scheduler scheduler(pool, cache);
        const runtime::sweep_result result = scheduler.run(spec, options);

        if (!quiet) {
            std::fputs(runtime::render_sweep_table(result).c_str(), stdout);
            std::printf("%zu cells in %.2f s on %zu workers "
                        "(stage cache: %llu hits, %llu misses; program cache: "
                        "%llu hits, %llu misses; %llu steals)\n",
                        result.cells.size(), result.wall_seconds, pool.worker_count(),
                        static_cast<unsigned long long>(result.cache_hits),
                        static_cast<unsigned long long>(result.cache_misses),
                        static_cast<unsigned long long>(result.program_cache_hits),
                        static_cast<unsigned long long>(result.program_cache_misses),
                        static_cast<unsigned long long>(pool.steal_count()));
            if (store != nullptr) {
                std::printf("store %s: %llu artifact disk hits, %llu computes, "
                            "%llu cells restored, %llu cells persisted\n",
                            store->root().c_str(),
                            static_cast<unsigned long long>(result.disk_hits),
                            static_cast<unsigned long long>(result.program_computes),
                            static_cast<unsigned long long>(result.cells_loaded),
                            static_cast<unsigned long long>(result.cells_stored));
            }
        }
        if (cache_stats) {
            std::fputs(runtime::render_cache_stats(result, *cache_stats).c_str(), stdout);
        }

        const auto write_file = [](const std::string& path, const auto& writer) {
            std::ofstream out(path);
            if (!out) {
                throw std::runtime_error("cannot open " + path);
            }
            writer(out);
        };
        if (!pareto_csv_path.empty()) {
            write_file(pareto_csv_path,
                       [&](std::ostream& out) { runtime::write_pareto_csv(result, out); });
        }
        if (!summary_csv_path.empty()) {
            write_file(summary_csv_path, [&](std::ostream& out) {
                runtime::write_summary_csv(result, out);
            });
        }
        if (!json_path.empty()) {
            write_file(json_path,
                       [&](std::ostream& out) { runtime::write_sweep_json(result, out); });
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "synts_runner: %s\n", error.what());
        return 1;
    }
}
