// stage_taps.h -- per-stage input-vector extraction.
//
// The cross-layer methodology (paper Fig. 5.8) feeds "cycle-by-cycle input
// vectors for each stage" from the architectural simulation into the
// gate-level netlists. A stage tap converts a micro-op into the primary
// input bit vector of one stage netlist -- or reports that the op does not
// exercise that stage (a multiply never toggles the SimpleALU operand
// latches, etc.).

#pragma once

#include <span>

#include "arch/isa.h"
#include "circuit/netlist_builder.h"

namespace synts::arch {

/// Extracts stage input vectors from micro-ops.
class stage_tap {
public:
    /// Binds the tap to a stage and its input layout.
    stage_tap(circuit::pipe_stage stage, const circuit::stage_input_layout& layout) noexcept;

    /// Total primary-input width of the stage netlist.
    [[nodiscard]] std::size_t width() const noexcept { return width_; }

    /// True when `op` exercises the stage.
    [[nodiscard]] bool drives_stage(const micro_op& op) const noexcept;

    /// Fills `bits` (size width()) with the stage input vector for `op`.
    /// Returns false (leaving `bits` untouched) when the op does not drive
    /// the stage.
    bool extract(const micro_op& op, std::span<bool> bits) const noexcept;

private:
    circuit::pipe_stage stage_;
    circuit::stage_input_layout layout_;
    std::size_t width_ = 0;
};

} // namespace synts::arch
