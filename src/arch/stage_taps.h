// stage_taps.h -- per-stage input-vector extraction.
//
// The cross-layer methodology (paper Fig. 5.8) feeds "cycle-by-cycle input
// vectors for each stage" from the architectural simulation into the
// gate-level netlists. A stage tap converts a micro-op into the primary
// input bit vector of one stage netlist -- or reports that the op does not
// exercise that stage (a multiply never toggles the SimpleALU operand
// latches, etc.).

#pragma once

#include <cstdint>
#include <span>

#include "arch/isa.h"
#include "circuit/netlist_builder.h"

namespace synts::arch {

/// Extracts stage input vectors from micro-ops.
class stage_tap {
public:
    /// Binds the tap to a stage and its input layout.
    stage_tap(circuit::pipe_stage stage, const circuit::stage_input_layout& layout) noexcept;

    /// Total primary-input width of the stage netlist.
    [[nodiscard]] std::size_t width() const noexcept { return width_; }

    /// True when `op` exercises the stage.
    [[nodiscard]] bool drives_stage(const micro_op& op) const noexcept;

    /// Fills `bits` (size width()) with the stage input vector for `op`.
    /// Returns false (leaving `bits` untouched) when the op does not drive
    /// the stage.
    bool extract(const micro_op& op, std::span<bool> bits) const noexcept;

    /// Outcome of one extract_batch call.
    struct batch_result {
        std::size_t lanes = 0;        ///< driving vectors packed (0 .. 64)
        std::size_t ops_consumed = 0; ///< ops scanned off the front of the span
    };

    /// Packs the driving vectors of up to 64 leading ops of `ops` into
    /// lane words for dynamic_timing_simulator::step_batch: bit j of
    /// lane_words[i] is input bit i of the j-th driving vector, in op
    /// order. Non-driving ops are scanned past without branching into the
    /// bit-spread path. lane_words (size width()) is fully rewritten;
    /// lane_op_index[j] (capacity >= 64) receives the index *within `ops`*
    /// of lane j's op. Scanning stops when 64 lanes are packed or `ops` is
    /// exhausted, whichever is first.
    batch_result extract_batch(std::span<const micro_op> ops,
                               std::span<std::uint64_t> lane_words,
                               std::span<std::uint32_t> lane_op_index) const noexcept;

private:
    circuit::pipe_stage stage_;
    circuit::stage_input_layout layout_;
    std::size_t width_ = 0;
};

} // namespace synts::arch
