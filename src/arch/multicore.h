// multicore.h -- M-core barrier-synchronized execution profiling.
//
// The profiler runs each thread's trace through its own in-order core and
// produces, per barrier interval, the two architectural quantities the
// SynTS model needs: the instruction count N_i and the error-free CPI_base_i
// (Eqs. 4.1-4.3). The barrier-timeline helper turns per-thread interval
// times into the barrier execution time (Eq. 4.2: the max over threads) and
// the idle slack the motivational example of Fig. 3.6 exploits.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "arch/pipeline.h"
#include "arch/trace.h"
#include "util/parallel.h"

namespace synts::arch {

/// Architectural profile of one thread in one barrier interval.
struct interval_profile {
    std::uint64_t instruction_count = 0; ///< N_i
    std::uint64_t base_cycles = 0;       ///< error-free cycles
    double cpi_base = 0.0;               ///< CPI_base_i
    double dcache_miss_rate = 0.0;
    double branch_misprediction_rate = 0.0;
};

/// Per-thread sequence of interval profiles.
using thread_profile = std::vector<interval_profile>;

/// Profiles an entire program trace on M cores (one thread per core).
class multicore_profiler {
public:
    /// One core per thread is instantiated lazily from `config`.
    explicit multicore_profiler(const core_config& config);

    /// Runs every thread's full trace; returns profiles indexed
    /// [thread][interval]. Throws std::logic_error if the program trace is
    /// inconsistent. Each thread runs on its own core instance whose cache
    /// and predictor state persists across that thread's intervals, so
    /// threads are mutually independent: `parallel` fans them out without
    /// changing a single count (bit-identical to the serial path).
    [[nodiscard]] std::vector<thread_profile> profile(const program_trace& program,
                                                      const util::parallel_for_fn& parallel = {});

private:
    core_config config_;
};

/// Wall-clock accounting of one barrier interval given each thread's
/// execution time.
struct barrier_timeline {
    std::vector<double> thread_times; ///< per-thread busy time
    double barrier_time = 0.0;        ///< max over threads (Eq. 4.2)
    double total_idle = 0.0;          ///< sum of (barrier_time - thread_time)
    std::size_t critical_thread = 0;  ///< argmax thread
};

/// Computes the barrier timeline for one interval.
[[nodiscard]] barrier_timeline compute_barrier_timeline(std::span<const double> thread_times);

} // namespace synts::arch
