#include "arch/cache.h"

#include <stdexcept>

namespace synts::arch {

namespace {

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) noexcept
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

cache_sim::cache_sim(const cache_config& config)
    : config_(config)
{
    if (config_.line_bytes == 0 || !is_power_of_two(config_.line_bytes)) {
        throw std::invalid_argument("cache_sim: line size must be a power of two");
    }
    if (config_.ways == 0) {
        throw std::invalid_argument("cache_sim: ways must be >= 1");
    }
    const std::uint64_t lines_total = config_.size_bytes / config_.line_bytes;
    if (lines_total == 0 || lines_total % config_.ways != 0) {
        throw std::invalid_argument("cache_sim: size/line/ways geometry invalid");
    }
    set_count_ = lines_total / config_.ways;
    if (!is_power_of_two(set_count_)) {
        throw std::invalid_argument("cache_sim: set count must be a power of two");
    }
    lines_.assign(lines_total, line{});
}

std::uint32_t cache_sim::access(std::uint64_t address) noexcept
{
    ++stats_.accesses;
    ++access_clock_;

    const std::uint64_t line_addr = address / config_.line_bytes;
    const std::uint64_t set = line_addr & (set_count_ - 1);
    const std::uint64_t tag = line_addr / set_count_;
    line* const set_base = &lines_[set * config_.ways];

    line* victim = set_base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        line& entry = set_base[w];
        if (entry.valid && entry.tag == tag) {
            entry.last_use = access_clock_;
            return config_.hit_latency_cycles;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.last_use < victim->last_use) {
            victim = &entry;
        }
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->last_use = access_clock_;
    return config_.hit_latency_cycles + config_.miss_penalty_cycles;
}

bool cache_sim::would_hit(std::uint64_t address) const noexcept
{
    const std::uint64_t line_addr = address / config_.line_bytes;
    const std::uint64_t set = line_addr & (set_count_ - 1);
    const std::uint64_t tag = line_addr / set_count_;
    const line* const set_base = &lines_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (set_base[w].valid && set_base[w].tag == tag) {
            return true;
        }
    }
    return false;
}

void cache_sim::reset() noexcept
{
    for (auto& entry : lines_) {
        entry = line{};
    }
    access_clock_ = 0;
    stats_ = cache_stats{};
}

} // namespace synts::arch
