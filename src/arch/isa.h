// isa.h -- the micro-op model shared by the workload generators, the
// architectural pipeline, and the circuit-level stage taps.
//
// Each micro-op carries everything the three analyzed pipe stages consume:
// the 32-bit encoding (Decode), the source operand values (SimpleALU /
// ComplexALU), and a memory address / branch outcome for the performance
// model. This mirrors what the paper extracts from gem5: "cycle-by-cycle
// input vectors for each stage".

#pragma once

#include <cstdint>
#include <string_view>

namespace synts::arch {

/// Functional classes of micro-ops.
enum class op_class : std::uint8_t {
    int_add = 0, ///< SimpleALU add
    int_sub,     ///< SimpleALU subtract
    int_logic,   ///< SimpleALU and/or/xor
    int_mul,     ///< ComplexALU multiply
    load,        ///< data-cache read
    store,       ///< data-cache write
    branch,      ///< conditional branch
    fp,          ///< floating point (modeled as multi-cycle, no stage tap)
    nop,         ///< no-op / other
};

/// Number of op classes.
inline constexpr std::size_t op_class_count = 9;

/// Display name of an op class.
[[nodiscard]] constexpr std::string_view op_class_name(op_class cls) noexcept
{
    switch (cls) {
    case op_class::int_add:
        return "int_add";
    case op_class::int_sub:
        return "int_sub";
    case op_class::int_logic:
        return "int_logic";
    case op_class::int_mul:
        return "int_mul";
    case op_class::load:
        return "load";
    case op_class::store:
        return "store";
    case op_class::branch:
        return "branch";
    case op_class::fp:
        return "fp";
    case op_class::nop:
        return "nop";
    }
    return "?";
}

/// True for classes executed by the SimpleALU stage.
[[nodiscard]] constexpr bool uses_simple_alu(op_class cls) noexcept
{
    return cls == op_class::int_add || cls == op_class::int_sub ||
           cls == op_class::int_logic;
}

/// True for classes executed by the ComplexALU stage.
[[nodiscard]] constexpr bool uses_complex_alu(op_class cls) noexcept
{
    return cls == op_class::int_mul;
}

/// One dynamic micro-op.
struct micro_op {
    op_class cls = op_class::nop;
    std::uint32_t encoding = 0;  ///< 32-bit instruction word (Decode stage input)
    std::uint64_t operand_a = 0; ///< first source value
    std::uint64_t operand_b = 0; ///< second source value
    std::uint64_t address = 0;   ///< effective address (load/store)
    bool branch_taken = false;   ///< resolved direction (branch)
};

} // namespace synts::arch
