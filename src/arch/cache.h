// cache.h -- set-associative LRU cache simulator.
//
// Supplies the architectural performance model with realistic,
// address-stream-dependent miss behavior; per-thread differences in miss
// rates are one of the sources of CPI_base heterogeneity across threads.

#pragma once

#include <cstdint>
#include <vector>

namespace synts::arch {

/// Geometry and penalty parameters of one cache level.
struct cache_config {
    std::uint64_t size_bytes = 32 * 1024;
    std::uint64_t line_bytes = 64;
    std::uint32_t ways = 4;
    std::uint32_t hit_latency_cycles = 1;
    std::uint32_t miss_penalty_cycles = 24;
};

/// Hit/miss counters of a cache instance.
struct cache_stats {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /// misses / accesses (0 when idle).
    [[nodiscard]] double miss_rate() const noexcept
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/// Single-level, set-associative, true-LRU cache.
class cache_sim {
public:
    /// Builds the cache; throws std::invalid_argument when the geometry is
    /// not a power-of-two / divisible combination.
    explicit cache_sim(const cache_config& config);

    /// Performs one access; returns the latency in cycles (hit latency, or
    /// hit latency + miss penalty).
    std::uint32_t access(std::uint64_t address) noexcept;

    /// True if the address would hit right now (no state change).
    [[nodiscard]] bool would_hit(std::uint64_t address) const noexcept;

    /// Statistics so far.
    [[nodiscard]] const cache_stats& stats() const noexcept { return stats_; }

    /// Clears contents and statistics.
    void reset() noexcept;

    /// Geometry in use.
    [[nodiscard]] const cache_config& config() const noexcept { return config_; }

private:
    struct line {
        std::uint64_t tag = 0;
        std::uint64_t last_use = 0;
        bool valid = false;
    };

    cache_config config_;
    std::vector<line> lines_; ///< sets * ways, row-major by set
    std::uint64_t set_count_ = 0;
    std::uint64_t access_clock_ = 0;
    cache_stats stats_;
};

} // namespace synts::arch
