#include "arch/pipeline.h"

namespace synts::arch {

inorder_core::inorder_core(const core_config& config)
    : config_(config), dcache_(config.dcache), predictor_(config.predictor_index_bits)
{
}

exec_stats inorder_core::execute(std::span<const micro_op> ops)
{
    exec_stats stats;
    stats.instructions = ops.size();

    for (const micro_op& op : ops) {
        std::uint64_t cycles = 1; // issue slot of an in-order pipe
        switch (op.cls) {
        case op_class::load:
        case op_class::store: {
            const std::uint32_t latency = dcache_.access(op.address);
            if (latency > dcache_.config().hit_latency_cycles) {
                const std::uint64_t extra = latency - dcache_.config().hit_latency_cycles;
                stats.dcache_miss_cycles += extra;
                cycles += extra;
            }
            break;
        }
        case op_class::branch: {
            if (predictor_.predict_and_update(pc_, op.branch_taken)) {
                stats.branch_penalty_cycles += config_.branch_mispredict_penalty;
                cycles += config_.branch_mispredict_penalty;
            }
            break;
        }
        case op_class::int_mul:
            stats.long_op_cycles += config_.mul_latency_cycles;
            cycles += config_.mul_latency_cycles;
            break;
        case op_class::fp:
            stats.long_op_cycles += config_.fp_latency_cycles;
            cycles += config_.fp_latency_cycles;
            break;
        case op_class::int_add:
        case op_class::int_sub:
        case op_class::int_logic:
        case op_class::nop:
            break;
        }
        stats.cycles += cycles;
        pc_ += 4;
    }
    return stats;
}

void inorder_core::reset()
{
    dcache_.reset();
    predictor_.reset();
    pc_ = 0x1000;
}

} // namespace synts::arch
