#include "arch/stage_taps.h"

namespace synts::arch {

namespace {

void write_bits(std::span<bool> bits, std::size_t offset, std::uint64_t value,
                std::size_t count) noexcept
{
    for (std::size_t i = 0; i < count; ++i) {
        bits[offset + i] = ((value >> i) & 1) != 0;
    }
}

} // namespace

stage_tap::stage_tap(circuit::pipe_stage stage,
                     const circuit::stage_input_layout& layout) noexcept
    : stage_(stage), layout_(layout)
{
    width_ = layout.instruction_bits + layout.operand_a_bits + layout.operand_b_bits +
             layout.opcode_bits;
}

bool stage_tap::drives_stage(const micro_op& op) const noexcept
{
    switch (stage_) {
    case circuit::pipe_stage::decode:
        return true; // every instruction passes through Decode
    case circuit::pipe_stage::simple_alu:
        return uses_simple_alu(op.cls);
    case circuit::pipe_stage::complex_alu:
        return uses_complex_alu(op.cls);
    }
    return false;
}

bool stage_tap::extract(const micro_op& op, std::span<bool> bits) const noexcept
{
    if (!drives_stage(op) || bits.size() != width_) {
        return false;
    }
    switch (stage_) {
    case circuit::pipe_stage::decode: {
        write_bits(bits, 0, op.encoding, layout_.instruction_bits);
        return true;
    }
    case circuit::pipe_stage::simple_alu: {
        write_bits(bits, 0, op.operand_a, layout_.operand_a_bits);
        write_bits(bits, layout_.operand_a_bits, op.operand_b, layout_.operand_b_bits);
        // op select: bit0 = subtract, bits 1..2 = {00 arith, 01 and, 10 or,
        // 11 xor}; logic variant chosen from the encoding's low bits.
        std::uint64_t select = 0;
        if (op.cls == op_class::int_sub) {
            select = 0b001;
        } else if (op.cls == op_class::int_logic) {
            const std::uint64_t variant = 1 + (op.encoding & 0x3) % 3; // 1..3
            select = variant << 1;
        }
        write_bits(bits, layout_.operand_a_bits + layout_.operand_b_bits, select,
                   layout_.opcode_bits);
        return true;
    }
    case circuit::pipe_stage::complex_alu: {
        write_bits(bits, 0, op.operand_a, layout_.operand_a_bits);
        write_bits(bits, layout_.operand_a_bits, op.operand_b, layout_.operand_b_bits);
        return true;
    }
    }
    return false;
}

} // namespace synts::arch
