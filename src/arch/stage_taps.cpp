#include "arch/stage_taps.h"

#include <algorithm>

namespace synts::arch {

namespace {

void write_bits(std::span<bool> bits, std::size_t offset, std::uint64_t value,
                std::size_t count) noexcept
{
    for (std::size_t i = 0; i < count; ++i) {
        bits[offset + i] = ((value >> i) & 1) != 0;
    }
}

/// Scatters the low `count` bits of `value` across lane words: for each set
/// bit i, lane `lane_bit` of words[offset + i] is raised. Words start
/// zeroed, so clear bits need no store.
void spread_bits(std::span<std::uint64_t> words, std::size_t offset, std::uint64_t value,
                 std::size_t count, std::uint64_t lane_bit) noexcept
{
    for (std::size_t i = 0; i < count; ++i) {
        if ((value >> i) & 1) {
            words[offset + i] |= lane_bit;
        }
    }
}

} // namespace

stage_tap::stage_tap(circuit::pipe_stage stage,
                     const circuit::stage_input_layout& layout) noexcept
    : stage_(stage), layout_(layout)
{
    width_ = layout.instruction_bits + layout.operand_a_bits + layout.operand_b_bits +
             layout.opcode_bits;
}

bool stage_tap::drives_stage(const micro_op& op) const noexcept
{
    switch (stage_) {
    case circuit::pipe_stage::decode:
        return true; // every instruction passes through Decode
    case circuit::pipe_stage::simple_alu:
        return uses_simple_alu(op.cls);
    case circuit::pipe_stage::complex_alu:
        return uses_complex_alu(op.cls);
    }
    return false;
}

bool stage_tap::extract(const micro_op& op, std::span<bool> bits) const noexcept
{
    if (!drives_stage(op) || bits.size() != width_) {
        return false;
    }
    switch (stage_) {
    case circuit::pipe_stage::decode: {
        write_bits(bits, 0, op.encoding, layout_.instruction_bits);
        return true;
    }
    case circuit::pipe_stage::simple_alu: {
        write_bits(bits, 0, op.operand_a, layout_.operand_a_bits);
        write_bits(bits, layout_.operand_a_bits, op.operand_b, layout_.operand_b_bits);
        // op select: bit0 = subtract, bits 1..2 = {00 arith, 01 and, 10 or,
        // 11 xor}; logic variant chosen from the encoding's low bits.
        std::uint64_t select = 0;
        if (op.cls == op_class::int_sub) {
            select = 0b001;
        } else if (op.cls == op_class::int_logic) {
            const std::uint64_t variant = 1 + (op.encoding & 0x3) % 3; // 1..3
            select = variant << 1;
        }
        write_bits(bits, layout_.operand_a_bits + layout_.operand_b_bits, select,
                   layout_.opcode_bits);
        return true;
    }
    case circuit::pipe_stage::complex_alu: {
        write_bits(bits, 0, op.operand_a, layout_.operand_a_bits);
        write_bits(bits, layout_.operand_a_bits, op.operand_b, layout_.operand_b_bits);
        return true;
    }
    }
    return false;
}

stage_tap::batch_result stage_tap::extract_batch(
    std::span<const micro_op> ops, std::span<std::uint64_t> lane_words,
    std::span<std::uint32_t> lane_op_index) const noexcept
{
    batch_result result;
    if (lane_words.size() != width_ || lane_op_index.size() < 64) {
        return result;
    }
    std::fill(lane_words.begin(), lane_words.end(), 0);
    std::size_t scanned = 0;
    for (; scanned < ops.size() && result.lanes < 64; ++scanned) {
        const micro_op& op = ops[scanned];
        if (!drives_stage(op)) {
            continue;
        }
        const std::uint64_t lane_bit = 1ull << result.lanes;
        switch (stage_) {
        case circuit::pipe_stage::decode:
            spread_bits(lane_words, 0, op.encoding, layout_.instruction_bits, lane_bit);
            break;
        case circuit::pipe_stage::simple_alu: {
            spread_bits(lane_words, 0, op.operand_a, layout_.operand_a_bits, lane_bit);
            spread_bits(lane_words, layout_.operand_a_bits, op.operand_b,
                        layout_.operand_b_bits, lane_bit);
            // Same select encoding as extract(): bit0 = subtract, bits 1..2
            // = logic variant from the encoding's low bits.
            std::uint64_t select = 0;
            if (op.cls == op_class::int_sub) {
                select = 0b001;
            } else if (op.cls == op_class::int_logic) {
                const std::uint64_t variant = 1 + (op.encoding & 0x3) % 3; // 1..3
                select = variant << 1;
            }
            spread_bits(lane_words, layout_.operand_a_bits + layout_.operand_b_bits,
                        select, layout_.opcode_bits, lane_bit);
            break;
        }
        case circuit::pipe_stage::complex_alu:
            spread_bits(lane_words, 0, op.operand_a, layout_.operand_a_bits, lane_bit);
            spread_bits(lane_words, layout_.operand_a_bits, op.operand_b,
                        layout_.operand_b_bits, lane_bit);
            break;
        }
        lane_op_index[result.lanes] = static_cast<std::uint32_t>(scanned);
        ++result.lanes;
    }
    result.ops_consumed = scanned;
    return result;
}

} // namespace synts::arch
