#include "arch/razor.h"

namespace synts::arch {

razor_run_stats replay_delay_trace(std::span<const double> delays_ps, double t_clk_ps,
                                   std::uint64_t base_cycles,
                                   std::uint32_t penalty_cycles)
{
    razor_run_stats stats;
    stats.instructions = delays_ps.size();
    stats.base_cycles = base_cycles;
    stats.clock_period = t_clk_ps;
    for (const double delay : delays_ps) {
        if (delay > t_clk_ps) {
            ++stats.error_count;
        }
    }
    stats.recovery_cycles =
        stats.error_count * static_cast<std::uint64_t>(penalty_cycles);
    return stats;
}

razor_run_stats run_bernoulli_errors(std::uint64_t instruction_count,
                                     double error_probability, double t_clk,
                                     std::uint64_t base_cycles, util::xoshiro256& rng,
                                     std::uint32_t penalty_cycles)
{
    razor_run_stats stats;
    stats.instructions = instruction_count;
    stats.base_cycles = base_cycles;
    stats.clock_period = t_clk;
    for (std::uint64_t i = 0; i < instruction_count; ++i) {
        if (rng.bernoulli(error_probability)) {
            ++stats.error_count;
        }
    }
    stats.recovery_cycles =
        stats.error_count * static_cast<std::uint64_t>(penalty_cycles);
    return stats;
}

} // namespace synts::arch
