// trace.h -- dynamic thread traces with barrier structure.
//
// A thread trace is the ordered micro-op stream one thread executes,
// annotated with the positions of its barrier arrivals. Interval k of the
// thread is ops[barrier_points[k-1] .. barrier_points[k]) (with an implicit
// 0 start). All threads of a program have the same number of intervals --
// that is what barrier synchronization means.

#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "arch/isa.h"

namespace synts::arch {

/// One thread's dynamic micro-op stream plus its barrier arrival points.
struct thread_trace {
    std::vector<micro_op> ops;
    /// Indices into `ops`, strictly increasing; the last entry must equal
    /// ops.size() (every trace ends at a barrier).
    std::vector<std::size_t> barrier_points;

    /// Number of barrier intervals.
    [[nodiscard]] std::size_t interval_count() const noexcept
    {
        return barrier_points.size();
    }

    /// Micro-ops of interval `k`. Throws std::out_of_range for a bad index.
    [[nodiscard]] std::span<const micro_op> interval(std::size_t k) const
    {
        if (k >= barrier_points.size()) {
            throw std::out_of_range("thread_trace: interval index out of range");
        }
        const std::size_t begin = k == 0 ? 0 : barrier_points[k - 1];
        const std::size_t end = barrier_points[k];
        return std::span<const micro_op>(ops).subspan(begin, end - begin);
    }

    /// Structural checks; throws std::logic_error on violation.
    void validate() const
    {
        std::size_t previous = 0;
        bool first = true;
        for (const std::size_t point : barrier_points) {
            const bool increases = first ? point > 0 : point > previous;
            if (!increases) {
                throw std::logic_error("thread_trace: barrier points must strictly increase");
            }
            previous = point;
            first = false;
        }
        if (!barrier_points.empty() && barrier_points.back() != ops.size()) {
            throw std::logic_error("thread_trace: trace must end at a barrier");
        }
    }
};

/// A complete multi-threaded program trace: one thread per core. All
/// threads must expose the same interval count.
struct program_trace {
    std::vector<thread_trace> threads;

    /// Number of threads (M in the paper's notation).
    [[nodiscard]] std::size_t thread_count() const noexcept { return threads.size(); }

    /// Shared interval count (0 for an empty program).
    [[nodiscard]] std::size_t interval_count() const noexcept
    {
        return threads.empty() ? 0 : threads.front().interval_count();
    }

    /// Validates each thread and the interval-count agreement.
    void validate() const
    {
        for (const auto& t : threads) {
            t.validate();
        }
        for (const auto& t : threads) {
            if (t.interval_count() != interval_count()) {
                throw std::logic_error("program_trace: threads disagree on interval count");
            }
        }
    }
};

} // namespace synts::arch
