#include "arch/multicore.h"

namespace synts::arch {

multicore_profiler::multicore_profiler(const core_config& config)
    : config_(config)
{
}

std::vector<thread_profile> multicore_profiler::profile(const program_trace& program,
                                                        const util::parallel_for_fn& parallel)
{
    program.validate();

    std::vector<thread_profile> profiles(program.thread_count());

    util::for_each_index(parallel, program.thread_count(), [&](std::size_t t) {
        const thread_trace& trace = program.threads[t];
        inorder_core core(config_);
        thread_profile profile;
        profile.reserve(trace.interval_count());

        std::uint64_t prior_dcache_accesses = 0;
        std::uint64_t prior_dcache_misses = 0;
        std::uint64_t prior_branches = 0;
        std::uint64_t prior_mispredicts = 0;

        for (std::size_t k = 0; k < trace.interval_count(); ++k) {
            const exec_stats stats = core.execute(trace.interval(k));

            interval_profile p;
            p.instruction_count = stats.instructions;
            p.base_cycles = stats.cycles;
            p.cpi_base = stats.cpi();

            const auto& dc = core.dcache_stats();
            const std::uint64_t accesses = dc.accesses - prior_dcache_accesses;
            const std::uint64_t misses = dc.misses - prior_dcache_misses;
            p.dcache_miss_rate =
                accesses == 0 ? 0.0
                              : static_cast<double>(misses) / static_cast<double>(accesses);
            prior_dcache_accesses = dc.accesses;
            prior_dcache_misses = dc.misses;

            const auto& bp = core.predictor_stats();
            const std::uint64_t branches = bp.branches - prior_branches;
            const std::uint64_t mispredicts = bp.mispredictions - prior_mispredicts;
            p.branch_misprediction_rate =
                branches == 0
                    ? 0.0
                    : static_cast<double>(mispredicts) / static_cast<double>(branches);
            prior_branches = bp.branches;
            prior_mispredicts = bp.mispredictions;

            profile.push_back(p);
        }
        profiles[t] = std::move(profile);
    });
    return profiles;
}

barrier_timeline compute_barrier_timeline(std::span<const double> thread_times)
{
    barrier_timeline timeline;
    timeline.thread_times.assign(thread_times.begin(), thread_times.end());
    for (std::size_t i = 0; i < thread_times.size(); ++i) {
        if (thread_times[i] > timeline.barrier_time) {
            timeline.barrier_time = thread_times[i];
            timeline.critical_thread = i;
        }
    }
    for (const double t : thread_times) {
        timeline.total_idle += timeline.barrier_time - t;
    }
    return timeline;
}

} // namespace synts::arch
