// branch_predictor.h -- gshare-style branch predictor.
//
// Mispredictions contribute pipeline flush cycles to CPI_base; like cache
// misses, per-thread differences in branch behavior differentiate thread
// execution latency (the "No-TS"/DVFS-balancing baseline exploits exactly
// this kind of variation -- see the related-work discussion in the paper).

#pragma once

#include <cstdint>
#include <vector>

namespace synts::arch {

/// Outcome counters of a predictor instance.
struct branch_stats {
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;

    /// mispredictions / branches (0 when no branches executed).
    [[nodiscard]] double misprediction_rate() const noexcept
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(mispredictions) / static_cast<double>(branches);
    }
};

/// Global-history XOR-indexed table of 2-bit saturating counters.
class gshare_predictor {
public:
    /// `index_bits` sets the table to 2^index_bits counters (max 24).
    explicit gshare_predictor(std::uint32_t index_bits = 12);

    /// Predicts, updates with the actual direction, and returns true when
    /// the prediction was wrong.
    bool predict_and_update(std::uint64_t pc, bool taken) noexcept;

    /// Statistics so far.
    [[nodiscard]] const branch_stats& stats() const noexcept { return stats_; }

    /// Clears table, history, and statistics.
    void reset() noexcept;

private:
    std::vector<std::uint8_t> counters_;
    std::uint64_t history_ = 0;
    std::uint64_t index_mask_ = 0;
    branch_stats stats_;
};

} // namespace synts::arch
