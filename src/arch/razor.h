// razor.h -- Razor-style timing-error detection and recovery accounting.
//
// Under timing speculation the clock period t_clk may be shorter than an
// instruction's sensitized path delay; the Razor shadow latch detects the
// mismatch and the pipeline replays, costing C_penalty cycles (5 for the
// Razor design the paper adopts from de Kruijf et al.). Two replay modes are
// provided:
//
//   * trace replay  -- consumes the per-instruction sensitized-delay trace
//                      produced by circuit/dynamic_timing; an instruction
//                      errors iff delay > t_clk. This grounds the error
//                      probability in actual circuit activity.
//   * Bernoulli     -- draws errors at a fixed probability; used to verify
//                      the closed-form SPI model (Eq. 4.1) by Monte Carlo.

#pragma once

#include <cstdint>
#include <span>

#include "util/rng.h"

namespace synts::arch {

/// Default Razor replay penalty, cycles (paper, Section 4.1).
inline constexpr std::uint32_t razor_default_penalty_cycles = 5;

/// Outcome of one speculative run.
struct razor_run_stats {
    std::uint64_t instructions = 0;
    std::uint64_t base_cycles = 0;     ///< error-free cycles (CPI_base * N)
    std::uint64_t error_count = 0;     ///< detected timing errors
    std::uint64_t recovery_cycles = 0; ///< error_count * penalty
    double clock_period = 0.0;         ///< t_clk used, arbitrary time unit

    /// Total cycles including recovery.
    [[nodiscard]] std::uint64_t total_cycles() const noexcept
    {
        return base_cycles + recovery_cycles;
    }

    /// Observed error probability per instruction.
    [[nodiscard]] double error_probability() const noexcept
    {
        return instructions == 0 ? 0.0
                                 : static_cast<double>(error_count) /
                                       static_cast<double>(instructions);
    }

    /// Measured seconds-per-instruction (same unit as clock_period), the
    /// quantity Eq. 4.1 models as t_clk * (p_err * C_penalty + CPI_base).
    [[nodiscard]] double seconds_per_instruction() const noexcept
    {
        return instructions == 0 ? 0.0
                                 : clock_period * static_cast<double>(total_cycles()) /
                                       static_cast<double>(instructions);
    }

    /// Wall-clock time of the run (same unit as clock_period).
    [[nodiscard]] double execution_time() const noexcept
    {
        return clock_period * static_cast<double>(total_cycles());
    }
};

/// Replays a sensitized-delay trace at clock period `t_clk_ps`: every
/// instruction whose delay exceeds the period errors and pays
/// `penalty_cycles`. `base_cycles` is the error-free cycle count of the
/// same instruction window (from the pipeline model).
[[nodiscard]] razor_run_stats replay_delay_trace(std::span<const double> delays_ps,
                                                 double t_clk_ps,
                                                 std::uint64_t base_cycles,
                                                 std::uint32_t penalty_cycles =
                                                     razor_default_penalty_cycles);

/// Monte Carlo run: `instruction_count` instructions, each erroring with
/// probability `error_probability`.
[[nodiscard]] razor_run_stats run_bernoulli_errors(std::uint64_t instruction_count,
                                                   double error_probability,
                                                   double t_clk, std::uint64_t base_cycles,
                                                   util::xoshiro256& rng,
                                                   std::uint32_t penalty_cycles =
                                                       razor_default_penalty_cycles);

} // namespace synts::arch
