// pipeline.h -- cycle-level in-order core model.
//
// This is the performance half of the gem5 substitute: it turns a micro-op
// stream into a cycle count (and thus CPI_base, the error-free clocks per
// instruction of Eq. 4.1) using a 5-stage in-order pipeline abstraction with
// a data cache, a branch predictor, and multi-cycle functional units.

#pragma once

#include <cstdint>
#include <span>

#include "arch/branch_predictor.h"
#include "arch/cache.h"
#include "arch/isa.h"

namespace synts::arch {

/// Static latency/penalty parameters of the core.
struct core_config {
    cache_config dcache{};
    std::uint32_t branch_mispredict_penalty = 8;
    std::uint32_t mul_latency_cycles = 3; ///< extra cycles beyond 1 for int_mul
    std::uint32_t fp_latency_cycles = 2;  ///< extra cycles beyond 1 for fp
    std::uint32_t predictor_index_bits = 12;
};

/// Cycle accounting of one pipeline run.
struct exec_stats {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t dcache_miss_cycles = 0;
    std::uint64_t branch_penalty_cycles = 0;
    std::uint64_t long_op_cycles = 0;

    /// Error-free clocks per instruction.
    [[nodiscard]] double cpi() const noexcept
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(cycles) / static_cast<double>(instructions);
    }
};

/// In-order core: executes micro-op spans and accumulates cycle counts.
/// Stateful across calls (cache and predictor warm up), matching a thread
/// running successive barrier intervals on the same physical core.
class inorder_core {
public:
    /// Builds the core's cache and predictor from `config`.
    explicit inorder_core(const core_config& config);

    /// Executes `ops` and returns the stats for this span only.
    exec_stats execute(std::span<const micro_op> ops);

    /// Lifetime data-cache statistics.
    [[nodiscard]] const cache_stats& dcache_stats() const noexcept
    {
        return dcache_.stats();
    }

    /// Lifetime branch statistics.
    [[nodiscard]] const branch_stats& predictor_stats() const noexcept
    {
        return predictor_.stats();
    }

    /// Cold-resets cache, predictor, and program counter.
    void reset();

private:
    core_config config_;
    cache_sim dcache_;
    gshare_predictor predictor_;
    std::uint64_t pc_ = 0x1000;
};

} // namespace synts::arch
