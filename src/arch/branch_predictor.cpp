#include "arch/branch_predictor.h"

#include <stdexcept>

namespace synts::arch {

gshare_predictor::gshare_predictor(std::uint32_t index_bits)
{
    if (index_bits == 0 || index_bits > 24) {
        throw std::invalid_argument("gshare_predictor: index_bits must be 1..24");
    }
    counters_.assign(std::size_t{1} << index_bits, 1); // weakly not-taken
    index_mask_ = (std::uint64_t{1} << index_bits) - 1;
}

bool gshare_predictor::predict_and_update(std::uint64_t pc, bool taken) noexcept
{
    const std::uint64_t index = ((pc >> 2) ^ history_) & index_mask_;
    std::uint8_t& counter = counters_[index];
    const bool predicted_taken = counter >= 2;
    const bool mispredicted = predicted_taken != taken;

    if (taken && counter < 3) {
        ++counter;
    } else if (!taken && counter > 0) {
        --counter;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & index_mask_;

    ++stats_.branches;
    if (mispredicted) {
        ++stats_.mispredictions;
    }
    return mispredicted;
}

void gshare_predictor::reset() noexcept
{
    for (auto& c : counters_) {
        c = 1;
    }
    history_ = 0;
    stats_ = branch_stats{};
}

} // namespace synts::arch
