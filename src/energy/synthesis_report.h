// synthesis_report.h -- area/power accounting of the SynTS hardware additions.
//
// Section 6.3 synthesizes the IVM pipe stages with a 45 nm FreePDK library
// and reports the SynTS-online additions at ~3.41% of core power and ~2.7%
// of core area. We reproduce the accounting bottom-up: the SynTS controller
// is itemized as registers + combinational gates, costed with the same cell
// library as the stage netlists, and compared against a core reference
// derived from the synthesized stages (scaled by a documented factor
// representing the full core; see DESIGN.md substitutions).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/netlist.h"

namespace synts::energy {

/// One itemized hardware block of the SynTS-online controller.
struct hardware_block {
    std::string name;
    std::size_t dff_count = 0;       ///< sequential bits
    std::size_t comb_gate_count = 0; ///< combinational gates (avg-size)
};

/// The SynTS-online per-core additions (sampling counters, per-TSR error
/// registers, the TSR sweep FSM, and the V/F interface -- the solver itself
/// runs in software on a host core, per the paper's online flow).
[[nodiscard]] std::vector<hardware_block> synts_online_blocks(std::size_t tsr_level_count);

/// Reference area/power of one core against which overheads are reported.
struct core_reference {
    double area_um2 = 0.0;
    double power_uw = 0.0;
};

/// Cost of a set of hardware blocks.
struct block_cost {
    double area_um2 = 0.0;
    double power_uw = 0.0;
};

/// Synthesis-style estimator over the shared cell library.
class synthesis_estimator {
public:
    /// `switching_activity` is the average output toggle probability per
    /// cycle for datapath logic; `controller_activity` applies to the SynTS
    /// counter/FSM blocks, which toggle nearly every cycle during sampling
    /// (hence higher than the core average); `clock_ghz` converts switch
    /// energy to power.
    explicit synthesis_estimator(const circuit::cell_library& lib,
                                 double switching_activity = 0.10,
                                 double controller_activity = 0.16,
                                 double clock_ghz = 1.0);

    /// Area/power of one netlist (combinational only).
    [[nodiscard]] block_cost cost_of_netlist(const circuit::netlist& nl) const;

    /// Area/power of an itemized block list. DFFs use the library's dff
    /// cell; combinational gates use an average over common cell classes.
    [[nodiscard]] block_cost cost_of_blocks(std::span<const hardware_block> blocks) const;

    /// Core reference: the three analyzed pipe stages plus their pipeline
    /// registers, scaled by `core_scale_factor` to stand for the full IVM
    /// core (the stages are a small fraction of core logic).
    [[nodiscard]] core_reference
    make_core_reference(std::span<const circuit::netlist* const> stage_netlists,
                        double core_scale_factor = 14.0) const;

private:
    const circuit::cell_library& lib_;
    double switching_activity_;
    double controller_activity_;
    double clock_ghz_;

    [[nodiscard]] double gate_power_uw(const circuit::cell_params& p,
                                       double activity) const noexcept;
};

/// Final overhead numbers (paper: power 3.41%, area 2.7%).
struct overhead_report {
    block_cost synts_additions;
    core_reference core;
    double area_percent = 0.0;
    double power_percent = 0.0;
};

/// End-to-end overhead estimate for the SynTS-online controller.
[[nodiscard]] overhead_report
estimate_synts_overhead(const circuit::cell_library& lib,
                        std::span<const circuit::netlist* const> stage_netlists,
                        std::size_t tsr_level_count);

} // namespace synts::energy
