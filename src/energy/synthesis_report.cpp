#include "energy/synthesis_report.h"

namespace synts::energy {

std::vector<hardware_block> synts_online_blocks(std::size_t tsr_level_count)
{
    std::vector<hardware_block> blocks;
    // Sampling-phase instruction counter (20-bit) and its increment logic.
    blocks.push_back({"sample_instruction_counter", 20, 44});
    // Per-TSR-level 16-bit error counters capturing Razor error strobes.
    blocks.push_back({"per_tsr_error_counters", 16 * tsr_level_count,
                      34 * tsr_level_count});
    // TSR sweep FSM: walks the S frequency levels during sampling.
    blocks.push_back({"tsr_sweep_fsm", 8, 70});
    // Captured error-rate table readable by the SynTS-Poly software solver.
    blocks.push_back({"error_rate_table_if", 16 * tsr_level_count, 40});
    // Per-core V/F command register + handshake to the PLL/regulator.
    blocks.push_back({"vf_command_interface", 24, 120});
    return blocks;
}

synthesis_estimator::synthesis_estimator(const circuit::cell_library& lib,
                                         double switching_activity,
                                         double controller_activity, double clock_ghz)
    : lib_(lib), switching_activity_(switching_activity),
      controller_activity_(controller_activity), clock_ghz_(clock_ghz)
{
}

double synthesis_estimator::gate_power_uw(const circuit::cell_params& p,
                                          double activity) const noexcept
{
    const double leakage_uw = p.leakage_nw / 1000.0;
    const double switching_uw = p.switch_energy_fj * activity * clock_ghz_;
    return leakage_uw + switching_uw;
}

block_cost synthesis_estimator::cost_of_netlist(const circuit::netlist& nl) const
{
    block_cost cost;
    for (const auto& g : nl.gates()) {
        const auto& p = lib_.params(g.kind);
        cost.area_um2 += p.area_um2;
        cost.power_uw += gate_power_uw(p, switching_activity_);
    }
    return cost;
}

block_cost synthesis_estimator::cost_of_blocks(std::span<const hardware_block> blocks) const
{
    // Average combinational cell: the mix of a typical control block
    // (NAND/NOR-dominated with some XOR/MUX).
    const auto& nand2 = lib_.params(circuit::cell_kind::nand2);
    const auto& nor2 = lib_.params(circuit::cell_kind::nor2);
    const auto& xor2 = lib_.params(circuit::cell_kind::xor2);
    const auto& mux2 = lib_.params(circuit::cell_kind::mux2);
    const double avg_area =
        0.4 * nand2.area_um2 + 0.3 * nor2.area_um2 + 0.2 * xor2.area_um2 +
        0.1 * mux2.area_um2;
    const double avg_power = 0.4 * gate_power_uw(nand2, controller_activity_) +
                             0.3 * gate_power_uw(nor2, controller_activity_) +
                             0.2 * gate_power_uw(xor2, controller_activity_) +
                             0.1 * gate_power_uw(mux2, controller_activity_);

    const auto& dff = lib_.params(circuit::cell_kind::dff);
    const double dff_power = gate_power_uw(dff, controller_activity_);

    block_cost cost;
    for (const auto& b : blocks) {
        cost.area_um2 += static_cast<double>(b.dff_count) * dff.area_um2 +
                         static_cast<double>(b.comb_gate_count) * avg_area;
        cost.power_uw += static_cast<double>(b.dff_count) * dff_power +
                         static_cast<double>(b.comb_gate_count) * avg_power;
    }
    return cost;
}

core_reference synthesis_estimator::make_core_reference(
    std::span<const circuit::netlist* const> stage_netlists, double core_scale_factor) const
{
    block_cost stages;
    std::size_t register_bits = 0;
    for (const circuit::netlist* nl : stage_netlists) {
        const block_cost c = cost_of_netlist(*nl);
        stages.area_um2 += c.area_um2;
        stages.power_uw += c.power_uw;
        // Pipeline registers at the stage boundary: one DFF per input and
        // output bit.
        register_bits += nl->input_count() + nl->output_count();
    }
    const auto& dff = lib_.params(circuit::cell_kind::dff);
    stages.area_um2 += static_cast<double>(register_bits) * dff.area_um2;
    stages.power_uw +=
        static_cast<double>(register_bits) * gate_power_uw(dff, switching_activity_);

    core_reference core;
    core.area_um2 = stages.area_um2 * core_scale_factor;
    core.power_uw = stages.power_uw * core_scale_factor;
    return core;
}

overhead_report
estimate_synts_overhead(const circuit::cell_library& lib,
                        std::span<const circuit::netlist* const> stage_netlists,
                        std::size_t tsr_level_count)
{
    const synthesis_estimator estimator(lib);
    overhead_report report;
    const auto blocks = synts_online_blocks(tsr_level_count);
    report.synts_additions = estimator.cost_of_blocks(blocks);
    report.core = estimator.make_core_reference(stage_netlists);
    if (report.core.area_um2 > 0.0) {
        report.area_percent = 100.0 * report.synts_additions.area_um2 / report.core.area_um2;
    }
    if (report.core.power_uw > 0.0) {
        report.power_percent = 100.0 * report.synts_additions.power_uw / report.core.power_uw;
    }
    return report;
}

} // namespace synts::energy
