// energy_model.h -- the paper's performance/energy model (Eqs. 4.1-4.3).
//
// For thread i at voltage V_i and clock period t_clk_i = r_i * t_nom(V_i):
//
//   SPI_i  = t_clk_i * (p_err_i * C_penalty + CPI_base_i)          (Eq. 4.1)
//   t_exec = max_i N_i * SPI_i / t_clk_i ... spelled out:
//            max_i N_i * t_clk_i * (p_err_i * C_penalty + CPI_base_i)  (4.2)
//   en_i   = alpha * V_i^2 * N_i * (p_err_i * C_penalty + CPI_base_i)  (4.3)
//
// alpha is the average switching capacitance; the model (deliberately, like
// the paper's) excludes leakage. Units are arbitrary-but-consistent: time in
// picoseconds, energy in alpha * V^2 * cycles.

#pragma once

#include <cstdint>
#include <span>

namespace synts::energy {

/// Model constants shared by every evaluation.
///
/// The paper's Eq. 4.3 covers dynamic energy only ("although the model does
/// not currently account for leakage, it can be easily extended to do so").
/// The extension lives here: when `leakage_power` > 0, a thread running for
/// time T at voltage V additionally pays leakage_power * V * T (leakage
/// roughly linear in V around the operating range). Zero by default so the
/// baseline reproduction matches the paper's model exactly.
struct energy_params {
    double alpha_switching_cap = 1.0; ///< alpha of Eq. 4.3
    std::uint32_t error_penalty_cycles = 5; ///< C_penalty (Razor replay)
    double leakage_power = 0.0; ///< leakage energy per (volt x ps) of runtime
};

/// Leakage energy of a thread active for `time_ps` at supply `vdd`
/// (0 when the leakage extension is disabled).
[[nodiscard]] double thread_leakage_energy(const energy_params& params, double vdd,
                                           double time_ps) noexcept;

/// Expected cycles per instruction including error recovery:
/// p_err * C_penalty + CPI_base.
[[nodiscard]] double effective_cpi(double error_probability, double cpi_base,
                                   std::uint32_t penalty_cycles) noexcept;

/// Eq. 4.1 -- seconds (ps) per instruction.
[[nodiscard]] double seconds_per_instruction(double t_clk_ps, double error_probability,
                                             double cpi_base,
                                             std::uint32_t penalty_cycles) noexcept;

/// One thread's execution time over N instructions (the inner term of
/// Eq. 4.2).
[[nodiscard]] double thread_execution_time(std::uint64_t instruction_count,
                                           double t_clk_ps, double error_probability,
                                           double cpi_base,
                                           std::uint32_t penalty_cycles) noexcept;

/// Eq. 4.3 -- one thread's energy over N instructions.
[[nodiscard]] double thread_energy(const energy_params& params, double vdd,
                                   std::uint64_t instruction_count,
                                   double error_probability, double cpi_base) noexcept;

/// Eq. 4.2 -- barrier execution time: max over per-thread times.
[[nodiscard]] double barrier_execution_time(std::span<const double> thread_times) noexcept;

/// Energy-delay product.
[[nodiscard]] double energy_delay_product(double energy, double time) noexcept;

} // namespace synts::energy
