#include "energy/energy_model.h"

#include <algorithm>

namespace synts::energy {

double effective_cpi(double error_probability, double cpi_base,
                     std::uint32_t penalty_cycles) noexcept
{
    return error_probability * static_cast<double>(penalty_cycles) + cpi_base;
}

double seconds_per_instruction(double t_clk_ps, double error_probability, double cpi_base,
                               std::uint32_t penalty_cycles) noexcept
{
    return t_clk_ps * effective_cpi(error_probability, cpi_base, penalty_cycles);
}

double thread_execution_time(std::uint64_t instruction_count, double t_clk_ps,
                             double error_probability, double cpi_base,
                             std::uint32_t penalty_cycles) noexcept
{
    return static_cast<double>(instruction_count) *
           seconds_per_instruction(t_clk_ps, error_probability, cpi_base, penalty_cycles);
}

double thread_energy(const energy_params& params, double vdd,
                     std::uint64_t instruction_count, double error_probability,
                     double cpi_base) noexcept
{
    return params.alpha_switching_cap * vdd * vdd *
           static_cast<double>(instruction_count) *
           effective_cpi(error_probability, cpi_base, params.error_penalty_cycles);
}

double thread_leakage_energy(const energy_params& params, double vdd,
                             double time_ps) noexcept
{
    return params.leakage_power * vdd * time_ps;
}

double barrier_execution_time(std::span<const double> thread_times) noexcept
{
    double worst = 0.0;
    for (const double t : thread_times) {
        worst = std::max(worst, t);
    }
    return worst;
}

double energy_delay_product(double energy, double time) noexcept
{
    return energy * time;
}

} // namespace synts::energy
