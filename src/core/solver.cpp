#include "core/solver.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace synts::core {

namespace {

/// Precomputed per-thread evaluation grid: time and energy of every (j, k).
struct thread_grid {
    std::vector<double> time_ps; ///< [j * S + k]
    std::vector<double> energy;  ///< [j * S + k]
};

[[nodiscard]] std::vector<thread_grid> precompute_grids(const solver_input& input)
{
    const config_space& space = *input.space;
    const std::size_t q = space.voltage_count();
    const std::size_t s = space.tsr_count();

    std::vector<thread_grid> grids(input.thread_count());
    for (std::size_t i = 0; i < input.thread_count(); ++i) {
        thread_grid& grid = grids[i];
        grid.time_ps.resize(q * s);
        grid.energy.resize(q * s);
        for (std::size_t j = 0; j < q; ++j) {
            for (std::size_t k = 0; k < s; ++k) {
                const thread_metrics m =
                    evaluate_thread(space, input.workloads[i], *input.error_models[i],
                                    thread_assignment{j, k}, input.params);
                grid.time_ps[j * s + k] = m.time_ps;
                grid.energy[j * s + k] = m.energy;
            }
        }
    }
    return grids;
}

/// minEnergy procedure of Algorithm 1: cheapest config of thread `i` whose
/// execution time does not exceed `texec`. Returns its energy and writes
/// the winning assignment (untouched when infeasible -> +inf).
[[nodiscard]] double min_energy_within(const thread_grid& grid, std::size_t q,
                                       std::size_t s, double texec_ps,
                                       thread_assignment& chosen)
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < q; ++j) {
        for (std::size_t k = 0; k < s; ++k) {
            const std::size_t idx = j * s + k;
            if (grid.time_ps[idx] <= texec_ps && grid.energy[idx] < best) {
                best = grid.energy[idx];
                chosen = thread_assignment{j, k};
            }
        }
    }
    return best;
}

} // namespace

interval_solution solve_synts_poly(const solver_input& input)
{
    input.validate();
    const config_space& space = *input.space;
    const std::size_t m = input.thread_count();
    const std::size_t q = space.voltage_count();
    const std::size_t s = space.tsr_count();
    const auto grids = precompute_grids(input);

    double best_cost = std::numeric_limits<double>::infinity();
    std::vector<thread_assignment> best(m);
    std::vector<thread_assignment> candidate(m);

    // Iteratively demarcate each thread as the critical thread.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < q; ++j) {
            for (std::size_t k = 0; k < s; ++k) {
                const std::size_t idx = j * s + k;
                const double texec = grids[i].time_ps[idx];
                double energy = grids[i].energy[idx];
                candidate[i] = thread_assignment{j, k};

                bool feasible = true;
                for (std::size_t l = 0; l < m && feasible; ++l) {
                    if (l == i) {
                        continue;
                    }
                    const double e =
                        min_energy_within(grids[l], q, s, texec, candidate[l]);
                    if (!std::isfinite(e)) {
                        feasible = false;
                    } else {
                        energy += e;
                    }
                }
                if (!feasible) {
                    continue;
                }
                const double cost = energy + input.theta * texec;
                if (cost < best_cost) {
                    best_cost = cost;
                    best = candidate;
                }
            }
        }
    }
    return evaluate_assignment(input, best);
}

interval_solution solve_exhaustive(const solver_input& input,
                                   std::uint64_t max_combinations)
{
    input.validate();
    const config_space& space = *input.space;
    const std::size_t m = input.thread_count();
    const std::uint64_t per_thread =
        static_cast<std::uint64_t>(space.voltage_count()) * space.tsr_count();

    double combinations = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
        combinations *= static_cast<double>(per_thread);
    }
    if (combinations > static_cast<double>(max_combinations)) {
        throw std::invalid_argument("solve_exhaustive: search space too large");
    }

    const auto grids = precompute_grids(input);
    const std::size_t s = space.tsr_count();

    std::vector<std::size_t> flat(m, 0); // flat config index per thread
    std::vector<thread_assignment> best(m);
    double best_cost = std::numeric_limits<double>::infinity();

    for (;;) {
        double energy = 0.0;
        double texec = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            energy += grids[i].energy[flat[i]];
            texec = std::max(texec, grids[i].time_ps[flat[i]]);
        }
        const double cost = energy + input.theta * texec;
        if (cost < best_cost) {
            best_cost = cost;
            for (std::size_t i = 0; i < m; ++i) {
                best[i] = thread_assignment{flat[i] / s, flat[i] % s};
            }
        }

        // Odometer increment.
        std::size_t digit = 0;
        while (digit < m) {
            if (++flat[digit] < per_thread) {
                break;
            }
            flat[digit] = 0;
            ++digit;
        }
        if (digit == m) {
            break;
        }
    }
    return evaluate_assignment(input, best);
}

interval_solution solve_per_core_ts(const solver_input& input)
{
    input.validate();
    const config_space& space = *input.space;
    const std::size_t s = space.tsr_count();
    const auto grids = precompute_grids(input);

    std::vector<thread_assignment> chosen(input.thread_count());
    for (std::size_t i = 0; i < input.thread_count(); ++i) {
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < space.voltage_count(); ++j) {
            for (std::size_t k = 0; k < s; ++k) {
                const std::size_t idx = j * s + k;
                const double cost =
                    grids[i].energy[idx] + input.theta * grids[i].time_ps[idx];
                if (cost < best_cost) {
                    best_cost = cost;
                    chosen[i] = thread_assignment{j, k};
                }
            }
        }
    }
    return evaluate_assignment(input, chosen);
}

interval_solution solve_no_ts(const solver_input& input)
{
    input.validate();
    // Restrict the space to r = 1 by cloning with a single TSR level; the
    // assignment indices map back to the original space's last TSR level.
    const config_space& space = *input.space;
    const std::size_t last_tsr = space.tsr_count() - 1;

    const config_space restricted(
        std::vector<double>(space.voltages().begin(), space.voltages().end()),
        {1.0},
        std::vector<double>(space.tnom_levels_ps().begin(), space.tnom_levels_ps().end()));

    solver_input narrowed = input;
    narrowed.space = &restricted;
    interval_solution solution = solve_synts_poly(narrowed);

    // Re-express in the full space (k index -> last level) and re-evaluate
    // so metrics reference the caller's space.
    std::vector<thread_assignment> remapped(solution.assignments.size());
    for (std::size_t i = 0; i < remapped.size(); ++i) {
        remapped[i] = thread_assignment{solution.assignments[i].voltage_index, last_tsr};
    }
    return evaluate_assignment(input, remapped);
}

interval_solution nominal_solution(const solver_input& input)
{
    input.validate();
    const std::vector<thread_assignment> assignments(input.thread_count(),
                                                     input.space->nominal_assignment());
    return evaluate_assignment(input, assignments);
}

} // namespace synts::core
