// critical_sections.h -- SynTS beyond barriers (the paper's future work).
//
// "As future work, this approach can be extended to multi-threaded
// applications that use other synchronization mechanisms, besides barriers
// for CMPs." This module takes that step for lock-based synchronization:
// each thread's interval work splits into a parallel part and a part
// executed inside a (single, shared) critical section. Critical sections
// cannot overlap, so the interval's makespan is bounded below both by the
// slowest thread and by the serialized lock occupancy:
//
//   t_exec = max( max_i t_i ,  sum_i s_i * t_i + min_i (1 - s_i) * t_i )
//
// where t_i is thread i's total execution time at its chosen (V, r) and
// s_i its serial fraction. (The second bound: the lock is busy for
// sum s_i t_i, and at least one thread's parallel work cannot be hidden
// behind other threads' lock occupancy.) Timing speculation now has a new
// twist: speeding up a thread with a large serial fraction shortens
// *everyone's* critical path, so lock-heavy threads deserve aggressive
// configurations even when they are not the latest arrivals.
//
// Optimizing the weighted cost over this makespan no longer decomposes the
// way Lemma 4.2.1 exploits, so the module provides (a) an exhaustive
// optimizer for small instances, and (b) a descent heuristic seeded by
// SynTS-Poly, whose quality is validated against (a) in the tests.

#pragma once

#include <span>
#include <vector>

#include "core/solver.h"
#include "core/system_model.h"

namespace synts::core {

/// Per-thread serial (in-critical-section) fraction of the interval's
/// instructions, each in [0, 1].
using serial_fractions = std::vector<double>;

/// Lock-aware makespan of an evaluated assignment.
[[nodiscard]] double lock_aware_makespan(std::span<const thread_metrics> metrics,
                                         std::span<const double> serial_fraction);

/// Lock-aware weighted cost: total energy + theta * lock_aware_makespan.
[[nodiscard]] double lock_aware_cost(const interval_solution& solution,
                                     std::span<const double> serial_fraction,
                                     double theta);

/// A solution with its lock-aware objective.
struct lock_aware_solution {
    interval_solution solution;
    double makespan_ps = 0.0;
    double cost = 0.0;
};

/// Exhaustive lock-aware optimum (small instances; throws
/// std::invalid_argument when (QS)^M exceeds `max_combinations`).
[[nodiscard]] lock_aware_solution
solve_lock_aware_exhaustive(const solver_input& input,
                            std::span<const double> serial_fraction,
                            std::uint64_t max_combinations = 50'000'000);

/// Descent heuristic: seed with SynTS-Poly (barrier objective), then
/// greedily apply the single-thread configuration move that most improves
/// the lock-aware cost until no move helps. Polynomial:
/// O(moves * M * Q * S) with moves bounded by `max_rounds * M`.
[[nodiscard]] lock_aware_solution
solve_lock_aware_descent(const solver_input& input,
                         std::span<const double> serial_fraction,
                         std::size_t max_rounds = 32);

} // namespace synts::core
