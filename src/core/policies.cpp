#include "core/policies.h"

#include <array>
#include <stdexcept>

namespace synts::core {

std::string_view policy_name(policy_kind kind) noexcept
{
    switch (kind) {
    case policy_kind::nominal:
        return "Nominal";
    case policy_kind::no_ts:
        return "No-TS";
    case policy_kind::per_core_ts:
        return "Per-core TS";
    case policy_kind::synts_offline:
        return "SynTS (offline)";
    case policy_kind::synts_online:
        return "SynTS (online)";
    }
    return "?";
}

std::span<const policy_kind> all_policies() noexcept
{
    static constexpr std::array<policy_kind, policy_count> all = {
        policy_kind::nominal,       policy_kind::no_ts,
        policy_kind::per_core_ts,   policy_kind::synts_offline,
        policy_kind::synts_online,
    };
    return all;
}

policy_engine::policy_engine(sampling_config sampling)
    : sampling_(sampling)
{
}

interval_outcome policy_engine::run_interval(
    policy_kind kind, const solver_input& truth,
    std::span<const interval_characterization* const> sampling_data) const
{
    interval_outcome outcome;
    switch (kind) {
    case policy_kind::nominal:
        outcome.solution = nominal_solution(truth);
        break;
    case policy_kind::no_ts:
        outcome.solution = solve_no_ts(truth);
        break;
    case policy_kind::per_core_ts:
        outcome.solution = solve_per_core_ts(truth);
        break;
    case policy_kind::synts_offline:
        outcome.solution = solve_synts_poly(truth);
        break;
    case policy_kind::synts_online:
        return run_online(truth, sampling_data, truth.workloads);
    }
    outcome.energy = outcome.solution.total_energy;
    outcome.time_ps = outcome.solution.exec_time_ps;
    return outcome;
}

interval_outcome policy_engine::run_online_predicted(
    const solver_input& truth,
    std::span<const interval_characterization* const> sampling_data,
    std::span<const thread_workload> decision_workloads) const
{
    return run_online(truth, sampling_data, decision_workloads);
}

interval_outcome policy_engine::run_online(
    const solver_input& truth,
    std::span<const interval_characterization* const> sampling_data,
    std::span<const thread_workload> decision_workloads) const
{
    truth.validate();
    const std::size_t m = truth.thread_count();
    if (sampling_data.size() != m) {
        throw std::invalid_argument("policy_engine: synts_online needs per-thread "
                                    "characterization data");
    }
    if (decision_workloads.size() != m) {
        throw std::invalid_argument("policy_engine: decision workload count mismatch");
    }

    const online_estimator estimator(sampling_);

    // 1. Sampling phase on every thread (concurrent across cores; each
    //    thread pays its own time/energy).
    std::vector<sampling_result> samples;
    samples.reserve(m);
    std::vector<estimated_error_curve> curves;
    curves.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        if (sampling_data[i] == nullptr) {
            throw std::invalid_argument("policy_engine: null characterization entry");
        }
        samples.push_back(estimator.sample_interval(*truth.space, *sampling_data[i],
                                                    truth.workloads[i].cpi_base,
                                                    truth.params));
        curves.push_back(samples.back().make_curve(*truth.space));
    }

    // 2. Optimize the remaining interval with the *estimated* curves and
    //    the decision workloads (equal to the truth for plain online mode,
    //    or a predictor's output when the N_i assumption is dropped).
    solver_input estimated = truth;
    estimated.error_models.clear();
    for (std::size_t i = 0; i < m; ++i) {
        estimated.error_models.push_back(&curves[i]);
        estimated.workloads[i] = decision_workloads[i];
        estimated.workloads[i].instructions =
            decision_workloads[i].instructions >= samples[i].sampled_instructions
                ? decision_workloads[i].instructions - samples[i].sampled_instructions
                : 0;
    }
    const interval_solution planned = solve_synts_poly(estimated);

    // 3. Evaluate the chosen configurations under the TRUE error models and
    //    true workloads on the remaining instructions.
    solver_input actual = truth;
    for (std::size_t i = 0; i < m; ++i) {
        actual.workloads[i].instructions =
            truth.workloads[i].instructions >= samples[i].sampled_instructions
                ? truth.workloads[i].instructions - samples[i].sampled_instructions
                : 0;
    }
    interval_outcome outcome;
    outcome.solution = evaluate_assignment(actual, planned.assignments);

    // 4. Charge the sampling phase: each thread's wall time is sampling +
    //    remainder; the barrier closes at the slowest thread.
    double barrier_time = 0.0;
    double total_energy = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        const double thread_time =
            samples[i].sampling_time_ps + outcome.solution.metrics[i].time_ps;
        barrier_time = std::max(barrier_time, thread_time);
        total_energy += samples[i].sampling_energy + outcome.solution.metrics[i].energy;
        outcome.sampling_energy += samples[i].sampling_energy;
        outcome.sampling_time_ps =
            std::max(outcome.sampling_time_ps, samples[i].sampling_time_ps);
    }
    outcome.energy = total_energy;
    outcome.time_ps = barrier_time;
    return outcome;
}

} // namespace synts::core
