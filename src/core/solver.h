// solver.h -- optimizers for SynTS-OPT (Eq. 4.4) and the baselines.
//
//   * solve_synts_poly   -- Algorithm 1 (SynTS-Poly): enumerate the critical
//                           thread and its (V, r); give every other thread
//                           its cheapest config that still meets the
//                           critical thread's finish time. Exact
//                           (Lemma 4.2.1), O(M^2 Q^2 S^2).
//   * solve_exhaustive   -- brute force over all (QS)^M joint assignments;
//                           ground truth for property tests (small M only).
//   * solve_per_core_ts  -- the Per-core TS baseline: each core minimizes
//                           its own en_i + theta * t_i independently (the
//                           best any single-core Razor-style scheme can do).
//   * solve_no_ts        -- the No-TS baseline: joint DVFS without timing
//                           speculation (r pinned to 1).
//   * nominal_solution   -- every core at the highest voltage, r = 1.

#pragma once

#include "core/system_model.h"

namespace synts::core {

/// Algorithm 1 (SynTS-Poly). Returns the optimal interval solution.
[[nodiscard]] interval_solution solve_synts_poly(const solver_input& input);

/// Exhaustive search over all joint assignments. Intended for tests;
/// throws std::invalid_argument when (QS)^M exceeds `max_combinations`.
[[nodiscard]] interval_solution solve_exhaustive(const solver_input& input,
                                                 std::uint64_t max_combinations = 50'000'000);

/// Per-core timing speculation: independent per-thread minimization of
/// en_i + theta * t_i over the full (V, r) grid.
[[nodiscard]] interval_solution solve_per_core_ts(const solver_input& input);

/// Conventional joint DVFS (no timing speculation): SynTS restricted to
/// r = 1.
[[nodiscard]] interval_solution solve_no_ts(const solver_input& input);

/// The Nominal baseline: highest voltage, r = 1 for every thread.
[[nodiscard]] interval_solution nominal_solution(const solver_input& input);

} // namespace synts::core
