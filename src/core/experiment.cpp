#include "core/experiment.h"

#include <cmath>
#include <stdexcept>

#include "util/hashing.h"

namespace synts::core {

std::uint64_t experiment_config::workload_digest() const noexcept
{
    return core::workload_digest(thread_count, seed, characterization.core);
}

std::uint64_t experiment_config::digest() const noexcept
{
    util::digest_builder h;
    h.value(workload_digest());
    h.value(sampling.sample_fraction);
    h.value(sampling.sample_voltage_index);
    h.value(sampling.min_sample_instructions);
    h.value(characterization.histogram_bins);
    h.value(characterization.histogram_headroom);
    h.value(characterization.keep_sampling_trace);
    h.value(params.alpha_switching_cap);
    h.value(params.error_penalty_cycles);
    h.value(params.leakage_power);
    h.value(voltage_class_spread);
    return h.digest();
}

std::shared_ptr<const program_artifacts>
make_program_artifacts(const workload::workload_key& workload,
                       const experiment_config& config,
                       const util::parallel_for_fn& parallel,
                       const util::cancel_token& cancel)
{
    const program_characterizer characterizer(config.characterization.core);
    return std::make_shared<const program_artifacts>(characterizer.characterize(
        workload, config.thread_count, config.seed, parallel, cancel));
}

namespace {

const program_artifacts&
checked_artifacts(const std::shared_ptr<const program_artifacts>& artifacts)
{
    if (!artifacts) {
        throw std::invalid_argument("benchmark_experiment: null program artifacts");
    }
    return *artifacts;
}

} // namespace

benchmark_experiment::benchmark_experiment(const workload::workload_key& workload,
                                           circuit::pipe_stage stage,
                                           const experiment_config& config)
    : benchmark_experiment(make_program_artifacts(workload, config), stage, config)
{
}

benchmark_experiment::benchmark_experiment(
    std::shared_ptr<const program_artifacts> artifacts, circuit::pipe_stage stage,
    const experiment_config& config, const util::parallel_for_fn& parallel,
    const util::cancel_token& cancel)
    : workload_(checked_artifacts(artifacts).workload), stage_(stage), config_(config),
      artifacts_(std::move(artifacts)), lib_(circuit::cell_library::standard_22nm()),
      vm_(config.voltage_class_spread), engine_(config.sampling)
{
    if (artifacts_->trace.thread_count() != config_.thread_count) {
        throw std::invalid_argument(
            "benchmark_experiment: artifacts/config thread count mismatch");
    }
    if (artifacts_->workload_digest != config_.workload_digest()) {
        throw std::invalid_argument(
            "benchmark_experiment: artifacts/config workload mismatch (seed or "
            "core model differs -- results would be attributed to the wrong "
            "workload)");
    }

    const characterizer chars(lib_, vm_, config_.characterization);
    characterization_ = chars.characterize(*artifacts_, stage, parallel,
                                           /*worker_hint=*/0, cancel);

    space_ = config_space::paper_grid(characterization_.tnom_ps);

    error_models_.reserve(thread_count());
    for (std::size_t t = 0; t < characterization_.threads.size(); ++t) {
        std::vector<empirical_error_model> per_interval;
        per_interval.reserve(characterization_.threads[t].size());
        for (std::size_t k = 0; k < characterization_.threads[t].size(); ++k) {
            per_interval.push_back(characterization_.make_error_model(t, k));
        }
        error_models_.push_back(std::move(per_interval));
    }
}

std::size_t benchmark_experiment::interval_count() const noexcept
{
    return characterization_.threads.empty() ? 0 : characterization_.threads.front().size();
}

std::size_t benchmark_experiment::thread_count() const noexcept
{
    return characterization_.threads.size();
}

solver_input benchmark_experiment::make_solver_input(std::size_t interval,
                                                     double theta) const
{
    if (interval >= interval_count()) {
        throw std::out_of_range("benchmark_experiment: interval index");
    }
    solver_input input;
    input.space = &space_;
    input.params = config_.params;
    input.theta = theta;
    for (std::size_t t = 0; t < thread_count(); ++t) {
        const arch::interval_profile& p = artifacts_->arch_profiles[t][interval];
        input.workloads.push_back(
            thread_workload{p.instruction_count, p.cpi_base});
        input.error_models.push_back(&error_models_[t][interval]);
    }
    return input;
}

double benchmark_experiment::equal_weight_theta() const
{
    double energy = 0.0;
    double time = 0.0;
    for (std::size_t k = 0; k < interval_count(); ++k) {
        const solver_input input = make_solver_input(k, 0.0);
        const interval_solution nominal = nominal_solution(input);
        energy += nominal.total_energy;
        time += nominal.exec_time_ps;
    }
    if (time <= 0.0) {
        throw std::logic_error("benchmark_experiment: degenerate nominal time");
    }
    return energy / time;
}

benchmark_experiment::policy_run benchmark_experiment::run_policy(policy_kind kind,
                                                                  double theta) const
{
    policy_run run;
    run.kind = kind;
    run.intervals.reserve(interval_count());
    for (std::size_t k = 0; k < interval_count(); ++k) {
        const solver_input truth = make_solver_input(k, theta);

        std::vector<const interval_characterization*> sampling_data;
        if (kind == policy_kind::synts_online) {
            sampling_data.reserve(thread_count());
            for (std::size_t t = 0; t < thread_count(); ++t) {
                sampling_data.push_back(&characterization_.threads[t][k]);
            }
        }
        interval_outcome outcome = engine_.run_interval(kind, truth, sampling_data);
        run.sum.energy += outcome.energy;
        run.sum.time_ps += outcome.time_ps;
        run.intervals.push_back(std::move(outcome));
    }
    return run;
}

benchmark_experiment::policy_run
benchmark_experiment::run_synts_online_predicted(double theta, double smoothing) const
{
    policy_run run;
    run.kind = policy_kind::synts_online;
    run.intervals.reserve(interval_count());

    workload_predictor predictor(thread_count(), smoothing);
    for (std::size_t k = 0; k < interval_count(); ++k) {
        const solver_input truth = make_solver_input(k, theta);

        std::vector<const interval_characterization*> sampling_data;
        sampling_data.reserve(thread_count());
        for (std::size_t t = 0; t < thread_count(); ++t) {
            sampling_data.push_back(&characterization_.threads[t][k]);
        }

        const std::vector<thread_workload> decision =
            predictor.predict(truth.workloads);
        interval_outcome outcome =
            engine_.run_online_predicted(truth, sampling_data, decision);
        predictor.observe(truth.workloads);

        run.sum.energy += outcome.energy;
        run.sum.time_ps += outcome.time_ps;
        run.intervals.push_back(std::move(outcome));
    }
    return run;
}

std::vector<benchmark_experiment::policy_run>
benchmark_experiment::run_all_policies(double theta) const
{
    std::vector<policy_run> runs;
    runs.reserve(policy_count);
    for (const policy_kind kind : all_policies()) {
        runs.push_back(run_policy(kind, theta));
    }
    return runs;
}

std::vector<pareto_point> pareto_sweep(const benchmark_experiment& experiment,
                                       policy_kind kind,
                                       std::span<const double> theta_multipliers)
{
    const double theta_eq = experiment.equal_weight_theta();
    return pareto_sweep(experiment, kind, theta_multipliers, theta_eq,
                        experiment.run_policy(policy_kind::nominal, theta_eq));
}

std::vector<pareto_point> pareto_sweep(const benchmark_experiment& experiment,
                                       policy_kind kind,
                                       std::span<const double> theta_multipliers,
                                       const double theta_eq,
                                       const benchmark_experiment::policy_run& nominal)
{
    std::vector<pareto_point> points;
    points.reserve(theta_multipliers.size());
    for (const double multiplier : theta_multipliers) {
        const double theta = theta_eq * multiplier;
        const auto run = experiment.run_policy(kind, theta);
        pareto_point p;
        p.theta = theta;
        p.energy = run.sum.energy / nominal.sum.energy;
        p.time = run.sum.time_ps / nominal.sum.time_ps;
        points.push_back(p);
    }
    return points;
}

std::vector<double> default_theta_multipliers()
{
    // Log-spaced from 1/64x to 64x around the equal-weight theta: enough
    // range to trace out both the low-energy and the high-performance ends
    // of the Pareto front.
    std::vector<double> multipliers;
    for (int e = -6; e <= 6; ++e) {
        multipliers.push_back(std::pow(2.0, e));
    }
    return multipliers;
}

} // namespace synts::core
