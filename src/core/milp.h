// milp.h -- the SynTS-MILP formulation (Eqs. 4.5-4.10) and an exact solver.
//
// The paper linearizes SynTS-OPT with binary variables x_ijk (thread i runs
// at voltage j, TSR k) and a continuous t_exec:
//
//   min  sum_ijk en_ijk x_ijk + theta * t_exec                      (4.5)
//   s.t. t_exec >= sum_jk time_ijk x_ijk     for all i              (4.6)
//        sum_jk x_ijk = 1                    for all i              (4.10)
//
// (4.7-4.9 define t_clk, p_err and en in terms of x and are substituted
// into the coefficients.) A standard MILP solver is not available offline,
// so `solve_branch_and_bound` provides an exact solver exploiting the
// assignment structure: depth-first search over threads with an admissible
// lower bound (energy: per-thread minima; time: max of assigned times and
// unassigned per-thread minimum times). It exists to validate SynTS-Poly's
// optimality claim (Lemma 4.2.1), and `to_lp_string()` emits the exact LP
// file a commercial solver would consume.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_model.h"

namespace synts::core {

/// Materialized coefficients of the SynTS-MILP instance.
class milp_model {
public:
    /// Builds the model from a solver input (computes en_ijk / time_ijk for
    /// every thread and grid point).
    [[nodiscard]] static milp_model build(const solver_input& input);

    /// M, Q, S.
    [[nodiscard]] std::size_t thread_count() const noexcept { return m_; }
    [[nodiscard]] std::size_t voltage_count() const noexcept { return q_; }
    [[nodiscard]] std::size_t tsr_count() const noexcept { return s_; }

    /// Number of binary variables: M * Q * S (plus one continuous t_exec).
    [[nodiscard]] std::size_t binary_variable_count() const noexcept { return m_ * q_ * s_; }

    /// Number of constraints: M one-hot (4.10) + M t_exec bounds (4.6).
    [[nodiscard]] std::size_t constraint_count() const noexcept { return 2 * m_; }

    /// en_ijk coefficient.
    [[nodiscard]] double energy_coeff(std::size_t i, std::size_t j, std::size_t k) const
    {
        return energy_[index(i, j, k)];
    }

    /// time_ijk coefficient (thread i's execution time at (j, k)).
    [[nodiscard]] double time_coeff(std::size_t i, std::size_t j, std::size_t k) const
    {
        return time_[index(i, j, k)];
    }

    /// theta of the objective.
    [[nodiscard]] double theta() const noexcept { return theta_; }

    /// Objective value of a complete assignment (Eq. 4.5 with t_exec at its
    /// binding value).
    [[nodiscard]] double objective(std::span<const thread_assignment> assignments) const;

    /// True when the assignment satisfies every constraint (one config per
    /// thread; t_exec is implied).
    [[nodiscard]] bool is_feasible(std::span<const thread_assignment> assignments) const;

    /// CPLEX-LP-format rendering of the full instance.
    [[nodiscard]] std::string to_lp_string() const;

private:
    [[nodiscard]] std::size_t index(std::size_t i, std::size_t j, std::size_t k) const
    {
        return (i * q_ + j) * s_ + k;
    }

    std::size_t m_ = 0;
    std::size_t q_ = 0;
    std::size_t s_ = 0;
    double theta_ = 0.0;
    std::vector<double> energy_;
    std::vector<double> time_;
};

/// Exact branch-and-bound over the MILP's assignment structure. Returns the
/// same optimum as solve_synts_poly / solve_exhaustive.
[[nodiscard]] interval_solution solve_branch_and_bound(const solver_input& input);

/// Search statistics of the most recent solve_branch_and_bound call on this
/// thread (nodes expanded, nodes pruned). For reporting/benchmarks only.
struct branch_and_bound_stats {
    std::uint64_t nodes_expanded = 0;
    std::uint64_t nodes_pruned = 0;
};
[[nodiscard]] branch_and_bound_stats last_branch_and_bound_stats() noexcept;

} // namespace synts::core
