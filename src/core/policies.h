// policies.h -- the five operating policies compared in the paper.
//
//   Nominal        -- highest voltage, r = 1 (no scaling, no speculation).
//   No-TS          -- joint DVFS, no speculation (Liu et al.-style balancing).
//   Per-core TS    -- independent per-core timing speculation with offline
//                     error knowledge (upper bound of Razor-like schemes).
//   SynTS-offline  -- Algorithm 1 with the true error curves.
//   SynTS-online   -- sampling phase -> estimated curves -> Algorithm 1 on
//                     the remaining interval; sampling cost charged.
//
// Policies are evaluated per barrier interval: decisions may come from
// estimates, but outcomes are always evaluated under the *true* error
// models.

#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/online_estimator.h"
#include "core/solver.h"
#include "core/system_model.h"

namespace synts::core {

/// The compared schemes.
enum class policy_kind {
    nominal = 0,
    no_ts,
    per_core_ts,
    synts_offline,
    synts_online,
};

/// Number of policies.
inline constexpr std::size_t policy_count = 5;

/// Display name matching the paper's figures.
[[nodiscard]] std::string_view policy_name(policy_kind kind) noexcept;

/// All five policies in presentation order.
[[nodiscard]] std::span<const policy_kind> all_policies() noexcept;

/// Evaluated outcome of one policy on one barrier interval.
struct interval_outcome {
    /// Chosen configurations evaluated under the true error models (for
    /// SynTS-online: over the post-sampling remainder of the interval).
    interval_solution solution;
    /// Per-thread sampling overheads (zero for offline policies).
    double sampling_energy = 0.0;
    double sampling_time_ps = 0.0;
    /// Interval totals including sampling.
    double energy = 0.0;
    double time_ps = 0.0;

    /// Interval EDP.
    [[nodiscard]] double edp() const noexcept { return energy * time_ps; }
};

/// Evaluates policies on barrier intervals.
class policy_engine {
public:
    explicit policy_engine(sampling_config sampling = {});

    /// Runs `kind` on one interval. `truth` carries the true error models
    /// and full-interval workloads. For synts_online, `sampling_data` must
    /// supply one interval_characterization per thread (the estimator's
    /// replay source); other policies ignore it.
    [[nodiscard]] interval_outcome
    run_interval(policy_kind kind, const solver_input& truth,
                 std::span<const interval_characterization* const> sampling_data = {}) const;

    /// SynTS-online, but optimizing with *predicted* workloads (e.g. from a
    /// core::workload_predictor) instead of the true N_i / CPI_base_i --
    /// removing the paper's assumption that workload heterogeneity is known.
    /// Outcomes are still evaluated under the true workloads and curves.
    [[nodiscard]] interval_outcome
    run_online_predicted(const solver_input& truth,
                         std::span<const interval_characterization* const> sampling_data,
                         std::span<const thread_workload> decision_workloads) const;

private:
    sampling_config sampling_;

    [[nodiscard]] interval_outcome
    run_online(const solver_input& truth,
               std::span<const interval_characterization* const> sampling_data,
               std::span<const thread_workload> decision_workloads) const;
};

} // namespace synts::core
