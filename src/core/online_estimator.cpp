#include "core/online_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace synts::core {

estimated_error_curve::estimated_error_curve(std::vector<double> tsr_levels,
                                             std::vector<double> err_at_tsr)
    : tsr_levels_(std::move(tsr_levels)), err_at_tsr_(std::move(err_at_tsr))
{
    if (tsr_levels_.empty() || tsr_levels_.size() != err_at_tsr_.size()) {
        throw std::invalid_argument("estimated_error_curve: level arrays mismatch");
    }
}

double estimated_error_curve::error_probability(std::size_t /*voltage_index*/,
                                                double tsr) const
{
    // Voltage-independent: the paper's extrapolation err~(t_clk / t_nom(V))
    // reduces to err~(r).
    if (tsr <= tsr_levels_.front()) {
        return err_at_tsr_.front();
    }
    if (tsr >= tsr_levels_.back()) {
        return err_at_tsr_.back();
    }
    for (std::size_t k = 1; k < tsr_levels_.size(); ++k) {
        if (tsr <= tsr_levels_[k]) {
            const double t =
                (tsr - tsr_levels_[k - 1]) / (tsr_levels_[k] - tsr_levels_[k - 1]);
            return err_at_tsr_[k - 1] * (1.0 - t) + err_at_tsr_[k] * t;
        }
    }
    return err_at_tsr_.back();
}

estimated_error_curve sampling_result::make_curve(const config_space& space) const
{
    return estimated_error_curve(
        std::vector<double>(space.tsr_levels().begin(), space.tsr_levels().end()),
        err_estimates);
}

online_estimator::online_estimator(sampling_config config)
    : config_(config)
{
    if (config_.sample_fraction <= 0.0 || config_.sample_fraction > 1.0) {
        throw std::invalid_argument("online_estimator: sample_fraction out of (0, 1]");
    }
}

sampling_result online_estimator::sample_interval(const config_space& space,
                                                  const interval_characterization& data,
                                                  double cpi_base,
                                                  const energy::energy_params& params) const
{
    const std::size_t s = space.tsr_count();
    const std::size_t vsamp = config_.sample_voltage_index;
    if (vsamp >= space.voltage_count()) {
        throw std::invalid_argument("online_estimator: sampling voltage index");
    }
    if (data.sampling_delays_ps.size() != data.sampling_instr_index.size()) {
        throw std::invalid_argument("online_estimator: characterization lacks the "
                                    "sampling trace");
    }

    sampling_result result;
    result.err_estimates.assign(s, 0.0);
    result.errors.assign(s, 0);
    result.instructions.assign(s, 0);

    const std::uint64_t wanted = std::max<std::uint64_t>(
        config_.min_sample_instructions,
        static_cast<std::uint64_t>(config_.sample_fraction *
                                   static_cast<double>(data.instruction_count)));
    result.sampled_instructions = std::min<std::uint64_t>(wanted, data.instruction_count);
    const std::uint64_t chunk = std::max<std::uint64_t>(1, result.sampled_instructions / s);

    const double tnom_samp = space.tnom_ps(vsamp);
    const double vdd_samp = space.voltage(vsamp);

    // Level k sweeps instructions [k * chunk, (k+1) * chunk). The paper's
    // Fig. 4.7 sweeps low frequency -> high frequency; order does not change
    // the estimates because chunks are disjoint.
    std::size_t cursor = 0; // index into the vector-aligned delay trace
    for (std::size_t k = 0; k < s; ++k) {
        const std::uint64_t first_instr = k * chunk;
        const std::uint64_t last_instr =
            (k + 1 == s) ? result.sampled_instructions : (k + 1) * chunk;
        result.instructions[k] = last_instr - first_instr;

        const double threshold = space.tsr(k) * tnom_samp;
        while (cursor < data.sampling_instr_index.size() &&
               data.sampling_instr_index[cursor] < last_instr) {
            if (data.sampling_instr_index[cursor] >= first_instr &&
                static_cast<double>(data.sampling_delays_ps[cursor]) > threshold) {
                ++result.errors[k];
            }
            ++cursor;
        }

        const double n = static_cast<double>(result.instructions[k]);
        const double p_hat =
            n == 0.0 ? 0.0 : static_cast<double>(result.errors[k]) / n;
        result.err_estimates[k] = p_hat;

        // Cost of this chunk: run at (V_samp, r_k) with the observed error
        // rate (Eqs. 4.1/4.3 applied to the chunk).
        const double t_clk = space.tsr(k) * tnom_samp;
        result.sampling_time_ps += energy::thread_execution_time(
            result.instructions[k], t_clk, p_hat, cpi_base, params.error_penalty_cycles);
        result.sampling_energy +=
            energy::thread_energy(params, vdd_samp, result.instructions[k], p_hat,
                                  cpi_base);
    }

    // err must be non-increasing in r; enforce monotonicity on the raw
    // estimates (isotonic pass), which also denoises small-sample jitter.
    for (std::size_t k = s; k-- > 1;) {
        if (result.err_estimates[k - 1] < result.err_estimates[k]) {
            result.err_estimates[k - 1] = result.err_estimates[k];
        }
    }
    return result;
}

} // namespace synts::core
