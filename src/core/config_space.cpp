#include "core/config_space.h"

#include <stdexcept>

#include "circuit/voltage_model.h"

namespace synts::core {

config_space::config_space(std::vector<double> voltages, std::vector<double> tsr_levels,
                           std::vector<double> tnom_ps)
    : voltages_(std::move(voltages)), tsr_levels_(std::move(tsr_levels)),
      tnom_ps_(std::move(tnom_ps))
{
    if (voltages_.empty() || tsr_levels_.empty()) {
        throw std::invalid_argument("config_space: empty grid");
    }
    if (voltages_.size() != tnom_ps_.size()) {
        throw std::invalid_argument("config_space: tnom per voltage required");
    }
    for (std::size_t k = 1; k < tsr_levels_.size(); ++k) {
        if (tsr_levels_[k] <= tsr_levels_[k - 1]) {
            throw std::invalid_argument("config_space: TSR levels must ascend");
        }
    }
    if (tsr_levels_.back() != 1.0) {
        throw std::invalid_argument("config_space: last TSR level must be 1 (R_S = 1)");
    }
    for (const double t : tnom_ps_) {
        if (t <= 0.0) {
            throw std::invalid_argument("config_space: nominal periods must be positive");
        }
    }
}

std::vector<double> config_space::default_tsr_levels()
{
    // Six levels, evenly spaced over [0.64, 1.0].
    return {0.64, 0.712, 0.784, 0.856, 0.928, 1.0};
}

config_space config_space::paper_grid(std::span<const double> tnom_ps)
{
    const auto levels = circuit::paper_voltage_levels();
    if (tnom_ps.size() != levels.size()) {
        throw std::invalid_argument("config_space::paper_grid: need one tnom per "
                                    "Table 5.1 voltage");
    }
    return config_space(std::vector<double>(levels.begin(), levels.end()),
                        default_tsr_levels(),
                        std::vector<double>(tnom_ps.begin(), tnom_ps.end()));
}

thread_assignment config_space::nominal_assignment() const noexcept
{
    // Voltages are stored highest-first (Table 5.1 order); nominal is the
    // highest voltage at r = 1.
    std::size_t best = 0;
    for (std::size_t j = 1; j < voltages_.size(); ++j) {
        if (voltages_[j] > voltages_[best]) {
            best = j;
        }
    }
    return thread_assignment{best, tsr_levels_.size() - 1};
}

} // namespace synts::core
