// workload_predictor.h -- online prediction of per-thread interval work.
//
// The paper assumes "the information on workload heterogeneity (N_i for
// each thread) is available from offline characterization or using online
// workload prediction techniques proposed in the literature [8, 15, 16]"
// (thread-criticality predictors, barrier-DVFS history, meeting points).
// This module supplies the online half of that assumption: an
// exponentially-weighted moving-average predictor over past barrier
// intervals, so SynTS can run with *no* offline workload knowledge at all.
// The ablation bench (bench_ext_predictor) quantifies the cost of the
// removed assumption.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/system_model.h"

namespace synts::core {

/// EWMA predictor of (N_i, CPI_base_i) per thread across barrier intervals.
class workload_predictor {
public:
    /// `smoothing` in (0, 1]: weight of the newest observation (1 = use the
    /// last interval verbatim). Throws std::invalid_argument otherwise.
    explicit workload_predictor(std::size_t thread_count, double smoothing = 0.6);

    /// True once at least one interval has been observed.
    [[nodiscard]] bool has_history() const noexcept { return has_history_; }

    /// Number of tracked threads.
    [[nodiscard]] std::size_t thread_count() const noexcept { return state_.size(); }

    /// Records the actual workloads of a finished interval.
    void observe(std::span<const thread_workload> actual);

    /// Predicts the next interval's workloads (and remembers the prediction
    /// so the following observe() can score it). Before any observation,
    /// returns `fallback` (e.g., an equal split of expected program work).
    [[nodiscard]] std::vector<thread_workload>
    predict(std::span<const thread_workload> fallback);

    /// Mean absolute relative error of the last prediction against the
    /// observation that followed it (diagnostics; 0 until two intervals).
    [[nodiscard]] double last_error() const noexcept { return last_error_; }

private:
    struct ewma_state {
        double instructions = 0.0;
        double cpi = 0.0;
    };
    std::vector<ewma_state> state_;
    std::vector<thread_workload> last_prediction_;
    double smoothing_;
    double last_error_ = 0.0;
    bool has_history_ = false;
};

} // namespace synts::core
