// program_artifacts.h -- stage-independent products of the characterization
// pipeline.
//
// The staged pipeline factors Fig. 5.8's cross-layer characterization into
// two explicit phases with a shareable intermediate:
//
//   workload profile --(generate)--> program trace --(profile)--> arch
//   profiles == program_artifacts --(per-stage timing sim)--> stage
//   characterization --(error models, config space)--> policy evaluation
//
// Everything in program_artifacts depends only on (benchmark, thread count,
// seed, core config) -- experiment_config::workload_digest() -- and NOT on
// the pipe stage, histogram knobs, energy parameters, or voltage spread. One
// artifact set therefore feeds the characterization of all three pipe
// stages; the runtime's experiment_cache keys a dedicated tier on
// (benchmark, workload_digest) so the trace is generated and the
// architectural profiler run exactly once per workload.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/multicore.h"
#include "arch/trace.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "workload/registry.h"

namespace synts::core {

/// Digest over exactly the knobs that determine program artifacts: thread
/// count, seed, and every core-model field. The single source of truth --
/// experiment_config::workload_digest() and program_characterizer both
/// delegate here, so producer stamps and consumer checks can never drift.
[[nodiscard]] std::uint64_t workload_digest(std::size_t thread_count, std::uint64_t seed,
                                            const arch::core_config& core) noexcept;

/// Stage-independent artifacts of one characterized program: the generated
/// trace plus the per-thread architectural profiles, with the workload knobs
/// they were produced from as provenance.
struct program_artifacts {
    /// Registry identity of the producing workload (see workload/registry.h);
    /// the key's 64-bit id -- not an enum ordinal -- is what every cache
    /// tier and store frame keys on.
    workload::workload_key workload;
    std::size_t thread_count = 0;
    std::uint64_t seed = 0;
    /// workload_digest(thread_count, seed, core) of the producing run; 0
    /// when the artifacts were built from an external trace
    /// (program_characterizer::characterize_trace) whose provenance is
    /// unknown. benchmark_experiment refuses artifacts whose digest
    /// disagrees with its config, so a core-model or seed mismatch cannot
    /// silently attribute results to the wrong workload.
    std::uint64_t workload_digest = 0;
    arch::program_trace trace;
    /// [thread][interval], aligned with `trace`.
    std::vector<arch::thread_profile> arch_profiles;

    /// Shared barrier-interval count (0 for an empty program).
    [[nodiscard]] std::size_t interval_count() const noexcept
    {
        return trace.interval_count();
    }

    /// Structural checks: the trace validates and the profiles align with it
    /// (same thread count, same interval count per thread). Throws
    /// std::logic_error on violation.
    void validate() const;

    /// Provenance check for artifacts of EXTERNAL origin (deserialized from
    /// an artifact store, handed across an API boundary): true only when
    /// the stamped provenance says these artifacts were produced for
    /// exactly the workload of `expected_workload` (name and identity
    /// digest) with `thread_count` threads under
    /// `expected_workload_digest` (seed + core model, see
    /// core::workload_digest), and the trace agrees with the stamp. A
    /// digest mismatch means "not the artifacts you asked for" -- loaders
    /// must treat it as a cache miss and rebuild, never serve the data.
    [[nodiscard]] bool
    provenance_matches(const workload::workload_key& expected_workload,
                       std::size_t expected_thread_count,
                       std::uint64_t expected_workload_digest) const noexcept;
};

/// Produces program_artifacts: workload generation plus architectural
/// profiling. This is the first pipeline phase; characterizer consumes its
/// output for the per-stage second phase.
class program_characterizer {
public:
    /// The core model used for profiling (N_i, CPI_base_i).
    explicit program_characterizer(arch::core_config core = {});

    /// Generates the workload's trace for `thread_count` threads at `seed`
    /// and profiles it. The profile is resolved through
    /// workload_registry::global() -- an unregistered key throws
    /// std::out_of_range. Deterministic in (workload, thread_count, seed,
    /// core config); `parallel` fans per-thread work out without changing
    /// the result. benchmark_id call sites convert implicitly (the built-in
    /// ten are always registered). `cancel` (inert by default) is polled at
    /// the phase boundaries -- before generation and between generation and
    /// profiling -- and unwinds as util::operation_cancelled with no
    /// partial artifacts escaping.
    [[nodiscard]] program_artifacts characterize(const workload::workload_key& workload,
                                                 std::size_t thread_count,
                                                 std::uint64_t seed,
                                                 const util::parallel_for_fn& parallel = {},
                                                 const util::cancel_token& cancel = {}) const;

    /// Profiles an externally generated trace (the legacy one-shot path of
    /// characterizer::characterize(program_trace, stage)); the benchmark and
    /// seed provenance fields are left at their defaults.
    [[nodiscard]] program_artifacts
    characterize_trace(arch::program_trace trace,
                       const util::parallel_for_fn& parallel = {}) const;

private:
    arch::core_config core_;
};

} // namespace synts::core
