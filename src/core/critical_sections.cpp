#include "core/critical_sections.h"

#include <limits>
#include <stdexcept>

namespace synts::core {

double lock_aware_makespan(std::span<const thread_metrics> metrics,
                           std::span<const double> serial_fraction)
{
    if (metrics.size() != serial_fraction.size()) {
        throw std::invalid_argument("lock_aware_makespan: size mismatch");
    }
    double slowest_thread = 0.0;
    double lock_busy = 0.0;
    double min_parallel = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const double s = serial_fraction[i];
        if (s < 0.0 || s > 1.0) {
            throw std::invalid_argument("lock_aware_makespan: fraction out of [0, 1]");
        }
        slowest_thread = std::max(slowest_thread, metrics[i].time_ps);
        lock_busy += s * metrics[i].time_ps;
        min_parallel = std::min(min_parallel, (1.0 - s) * metrics[i].time_ps);
    }
    if (metrics.empty()) {
        return 0.0;
    }
    return std::max(slowest_thread, lock_busy + min_parallel);
}

double lock_aware_cost(const interval_solution& solution,
                       std::span<const double> serial_fraction, double theta)
{
    return solution.total_energy +
           theta * lock_aware_makespan(solution.metrics, serial_fraction);
}

namespace {

[[nodiscard]] lock_aware_solution finalize(const solver_input& input,
                                           std::span<const thread_assignment> assignment,
                                           std::span<const double> serial_fraction)
{
    lock_aware_solution result;
    result.solution = evaluate_assignment(input, assignment);
    result.makespan_ps = lock_aware_makespan(result.solution.metrics, serial_fraction);
    result.cost = result.solution.total_energy + input.theta * result.makespan_ps;
    return result;
}

} // namespace

lock_aware_solution solve_lock_aware_exhaustive(const solver_input& input,
                                                std::span<const double> serial_fraction,
                                                std::uint64_t max_combinations)
{
    input.validate();
    if (serial_fraction.size() != input.thread_count()) {
        throw std::invalid_argument("solve_lock_aware_exhaustive: fraction count");
    }
    const config_space& space = *input.space;
    const std::size_t m = input.thread_count();
    const std::uint64_t per_thread =
        static_cast<std::uint64_t>(space.voltage_count()) * space.tsr_count();

    double combinations = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
        combinations *= static_cast<double>(per_thread);
    }
    if (combinations > static_cast<double>(max_combinations)) {
        throw std::invalid_argument("solve_lock_aware_exhaustive: search too large");
    }

    const std::size_t s = space.tsr_count();
    std::vector<std::size_t> flat(m, 0);
    std::vector<thread_assignment> assignment(m);
    std::vector<thread_assignment> best(m);
    double best_cost = std::numeric_limits<double>::infinity();

    for (;;) {
        for (std::size_t i = 0; i < m; ++i) {
            assignment[i] = thread_assignment{flat[i] / s, flat[i] % s};
        }
        const interval_solution sol = evaluate_assignment(input, assignment);
        const double cost = sol.total_energy +
                            input.theta * lock_aware_makespan(sol.metrics,
                                                              serial_fraction);
        if (cost < best_cost) {
            best_cost = cost;
            best = assignment;
        }

        std::size_t digit = 0;
        while (digit < m) {
            if (++flat[digit] < per_thread) {
                break;
            }
            flat[digit] = 0;
            ++digit;
        }
        if (digit == m) {
            break;
        }
    }
    return finalize(input, best, serial_fraction);
}

lock_aware_solution solve_lock_aware_descent(const solver_input& input,
                                             std::span<const double> serial_fraction,
                                             std::size_t max_rounds)
{
    input.validate();
    if (serial_fraction.size() != input.thread_count()) {
        throw std::invalid_argument("solve_lock_aware_descent: fraction count");
    }
    const config_space& space = *input.space;
    const std::size_t m = input.thread_count();

    // Seed with the barrier-objective optimum.
    std::vector<thread_assignment> current = solve_synts_poly(input).assignments;
    lock_aware_solution best = finalize(input, current, serial_fraction);

    for (std::size_t round = 0; round < max_rounds; ++round) {
        bool improved = false;
        for (std::size_t i = 0; i < m; ++i) {
            thread_assignment best_move = current[i];
            double best_move_cost = best.cost;
            for (std::size_t j = 0; j < space.voltage_count(); ++j) {
                for (std::size_t k = 0; k < space.tsr_count(); ++k) {
                    const thread_assignment candidate{j, k};
                    if (candidate == current[i]) {
                        continue;
                    }
                    std::vector<thread_assignment> trial = current;
                    trial[i] = candidate;
                    const interval_solution sol = evaluate_assignment(input, trial);
                    const double cost =
                        sol.total_energy +
                        input.theta *
                            lock_aware_makespan(sol.metrics, serial_fraction);
                    if (cost < best_move_cost - 1e-12) {
                        best_move_cost = cost;
                        best_move = candidate;
                    }
                }
            }
            if (!(best_move == current[i])) {
                current[i] = best_move;
                best = finalize(input, current, serial_fraction);
                improved = true;
            }
        }
        if (!improved) {
            break;
        }
    }
    return best;
}

} // namespace synts::core
