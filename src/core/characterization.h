// characterization.h -- the cross-layer methodology of Fig. 5.8.
//
// Pipeline: the workload's program trace runs on the architectural
// simulator (for N_i and CPI_base_i per barrier interval) while each
// micro-op's stage input vector drives the gate-level netlist through the
// multi-corner dynamic timing simulator. The result, per (thread, interval),
// is a sensitized-delay distribution at every voltage corner -- the raw
// material for the empirical error models err_i(r) -- plus the
// vector-aligned delay trace at the sampling voltage that the online
// estimator replays.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/multicore.h"
#include "arch/stage_taps.h"
#include "arch/trace.h"
#include "circuit/cell_library.h"
#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "circuit/voltage_model.h"
#include "core/error_model.h"
#include "core/program_artifacts.h"
#include "util/cancellation.h"
#include "util/histogram.h"
#include "util/parallel.h"

namespace synts::core {

/// Circuit-level characterization of one thread in one barrier interval.
struct interval_characterization {
    /// Sensitized-delay histogram per voltage corner.
    std::vector<util::histogram> delay_histograms;
    /// Raw per-vector delays at the sampling corner (corner 0 = nominal V).
    std::vector<float> sampling_delays_ps;
    /// Instruction index (within the interval) of each vector above.
    std::vector<std::uint32_t> sampling_instr_index;
    /// Total instructions in the interval (driving or not).
    std::uint64_t instruction_count = 0;
    /// Vectors that actually drove the stage.
    std::uint64_t vector_count = 0;

    /// Fraction of instructions exercising the stage.
    [[nodiscard]] double drive_fraction() const noexcept
    {
        return instruction_count == 0
                   ? 0.0
                   : static_cast<double>(vector_count) /
                         static_cast<double>(instruction_count);
    }
};

/// Characterization of one pipe stage over a whole program.
struct stage_characterization {
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    /// Stage nominal period (STA critical path) per voltage corner, ps.
    std::vector<double> tnom_ps;
    /// Voltage of each corner.
    std::vector<double> corner_vdd;
    /// [thread][interval].
    std::vector<std::vector<interval_characterization>> threads;
    // NOTE: the per-thread ARCHITECTURAL profiles are deliberately not
    // duplicated here. They are stage-independent and live in the
    // program_artifacts the characterization was built from; copying them
    // into every per-stage product tripled their footprint across the
    // cached stages of one workload. Consumers that need N_i / CPI_base_i
    // read them from the experiment's shared artifacts
    // (benchmark_experiment::artifacts()->arch_profiles).

    /// Builds the empirical error model of (thread, interval).
    [[nodiscard]] empirical_error_model make_error_model(std::size_t thread,
                                                         std::size_t interval) const;
};

/// Tunables of the characterization pass.
struct characterization_config {
    std::size_t histogram_bins = 512;
    /// Histogram upper bound as a multiple of the corner's nominal period.
    double histogram_headroom = 1.05;
    /// Keep the raw sampling-corner delay trace (needed by SynTS-online).
    bool keep_sampling_trace = true;
    /// Run the vectorized hot path (64-lane step_batch over chunked
    /// interval ranges). false selects the scalar per-cell reference walk.
    /// Results are bit-identical either way (pinned by
    /// tests/test_core_characterization_batch.cpp), so this flag is NOT
    /// part of experiment_config::digest(): flipping it never invalidates
    /// cached sweep results.
    bool batched = true;
    arch::core_config core{};
};

/// Cross-layer characterizer: owns the stage netlists and timing machinery.
class characterizer {
public:
    /// Corners follow circuit::paper_voltage_levels() (corner 0 = 1.0 V).
    characterizer(const circuit::cell_library& lib, const circuit::voltage_model& vm,
                  characterization_config config = {});

    /// Characterizes pre-built program artifacts against one pipe stage --
    /// the staged-pipeline entry point; the architectural profiles are taken
    /// from `program`, never recomputed. `parallel` fans independent work
    /// out. In batched mode the grain is a contiguous run of intervals per
    /// thread (a *chunk*): the simulator chains serially within a chunk --
    /// a settled netlist's state is a pure function of the last applied
    /// vector, so entering interval k with the chunk's carried state equals
    /// replaying the last driving vector before k -- and only chunk entry
    /// pays a warm-up step. `worker_hint` sizes the chunks (0 = derive from
    /// hardware_concurrency when `parallel` is set, serial otherwise); at
    /// one worker the partition degenerates to one chunk per thread, i.e.
    /// the exact serial walk. In scalar mode the grain is one (thread,
    /// interval) cell with per-cell warm-up replay. Every grain lands in a
    /// pre-assigned slot, so output is bit-identical to the serial pass for
    /// any executor and either mode (pinned by
    /// tests/test_core_characterization_pipeline.cpp and
    /// tests/test_core_characterization_batch.cpp).
    ///
    /// `cancel` (inert by default -- the tokenless call is the exact
    /// pre-cancellation path) is polled at every natural boundary: per
    /// thread in the warm-up pre-pass, per cell in the scalar walk, and at
    /// chunk entry plus every interval inside a chunk in batched mode --
    /// so a multi-second cell abandons within ONE INTERVAL of simulation
    /// work, well under a chunk grain. Cancellation unwinds as
    /// util::operation_cancelled with no partial result escaping.
    [[nodiscard]] stage_characterization
    characterize(const program_artifacts& program, circuit::pipe_stage stage,
                 const util::parallel_for_fn& parallel = {},
                 std::size_t worker_hint = 0,
                 const util::cancel_token& cancel = {}) const;

    /// Legacy one-shot: profiles `program` architecturally, then delegates
    /// to the artifact overload above. Equivalent to running
    /// program_characterizer::characterize_trace yourself.
    [[nodiscard]] stage_characterization characterize(const arch::program_trace& program,
                                                      circuit::pipe_stage stage) const;

private:
    /// Sentinel for "no driving op precedes the interval" (fresh sim state).
    static constexpr std::size_t no_warmup_op = static_cast<std::size_t>(-1);

    [[nodiscard]] interval_characterization characterize_interval(
        const circuit::stage_netlist& stage_nl, const arch::stage_tap& tap,
        const std::shared_ptr<const circuit::timing_corner_tables>& tables,
        const arch::thread_trace& trace, std::size_t interval,
        std::size_t warmup_op) const;

    const circuit::cell_library& lib_;
    const circuit::voltage_model& vm_;
    characterization_config config_;
};

} // namespace synts::core
