// characterization.h -- the cross-layer methodology of Fig. 5.8.
//
// Pipeline: the workload's program trace runs on the architectural
// simulator (for N_i and CPI_base_i per barrier interval) while each
// micro-op's stage input vector drives the gate-level netlist through the
// multi-corner dynamic timing simulator. The result, per (thread, interval),
// is a sensitized-delay distribution at every voltage corner -- the raw
// material for the empirical error models err_i(r) -- plus the
// vector-aligned delay trace at the sampling voltage that the online
// estimator replays.

#pragma once

#include <cstdint>
#include <vector>

#include "arch/multicore.h"
#include "arch/trace.h"
#include "circuit/cell_library.h"
#include "circuit/netlist_builder.h"
#include "circuit/voltage_model.h"
#include "core/error_model.h"
#include "util/histogram.h"

namespace synts::core {

/// Circuit-level characterization of one thread in one barrier interval.
struct interval_characterization {
    /// Sensitized-delay histogram per voltage corner.
    std::vector<util::histogram> delay_histograms;
    /// Raw per-vector delays at the sampling corner (corner 0 = nominal V).
    std::vector<float> sampling_delays_ps;
    /// Instruction index (within the interval) of each vector above.
    std::vector<std::uint32_t> sampling_instr_index;
    /// Total instructions in the interval (driving or not).
    std::uint64_t instruction_count = 0;
    /// Vectors that actually drove the stage.
    std::uint64_t vector_count = 0;

    /// Fraction of instructions exercising the stage.
    [[nodiscard]] double drive_fraction() const noexcept
    {
        return instruction_count == 0
                   ? 0.0
                   : static_cast<double>(vector_count) /
                         static_cast<double>(instruction_count);
    }
};

/// Characterization of one pipe stage over a whole program.
struct stage_characterization {
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    /// Stage nominal period (STA critical path) per voltage corner, ps.
    std::vector<double> tnom_ps;
    /// Voltage of each corner.
    std::vector<double> corner_vdd;
    /// [thread][interval].
    std::vector<std::vector<interval_characterization>> threads;
    /// Architectural profiles aligned with `threads` ([thread][interval]).
    std::vector<arch::thread_profile> arch_profiles;

    /// Builds the empirical error model of (thread, interval).
    [[nodiscard]] empirical_error_model make_error_model(std::size_t thread,
                                                         std::size_t interval) const;
};

/// Tunables of the characterization pass.
struct characterization_config {
    std::size_t histogram_bins = 512;
    /// Histogram upper bound as a multiple of the corner's nominal period.
    double histogram_headroom = 1.05;
    /// Keep the raw sampling-corner delay trace (needed by SynTS-online).
    bool keep_sampling_trace = true;
    arch::core_config core{};
};

/// Cross-layer characterizer: owns the stage netlists and timing machinery.
class characterizer {
public:
    /// Corners follow circuit::paper_voltage_levels() (corner 0 = 1.0 V).
    characterizer(const circuit::cell_library& lib, const circuit::voltage_model& vm,
                  characterization_config config = {});

    /// Characterizes `program` against one pipe stage.
    [[nodiscard]] stage_characterization characterize(const arch::program_trace& program,
                                                      circuit::pipe_stage stage) const;

private:
    const circuit::cell_library& lib_;
    const circuit::voltage_model& vm_;
    characterization_config config_;
};

} // namespace synts::core
