#include "core/characterization.h"

#include <memory>
#include <stdexcept>

#include "circuit/dynamic_timing.h"

namespace synts::core {

empirical_error_model stage_characterization::make_error_model(std::size_t thread,
                                                               std::size_t interval) const
{
    const interval_characterization& data = threads.at(thread).at(interval);
    return empirical_error_model(data.delay_histograms, tnom_ps, data.drive_fraction());
}

characterizer::characterizer(const circuit::cell_library& lib,
                             const circuit::voltage_model& vm,
                             characterization_config config)
    : lib_(lib), vm_(vm), config_(std::move(config))
{
}

interval_characterization characterizer::characterize_interval(
    const circuit::stage_netlist& stage_nl, const arch::stage_tap& tap,
    const std::shared_ptr<const circuit::timing_corner_tables>& tables,
    const arch::thread_trace& trace, std::size_t interval,
    std::size_t warmup_op) const
{
    // One simulator per cell: the stage's datapath state is private to the
    // core the thread runs on, and a settled netlist's node values are a
    // pure function of the last applied vector. Replaying the last driving
    // vector of the preceding intervals -- `warmup_op`, precomputed by
    // characterize() -- with its delays discarded therefore reproduces
    // exactly the state a single serial walk of the whole thread would
    // carry into this interval: cells stay bit-identical to serial while
    // running embarrassingly parallel. The shared corner tables keep
    // per-cell construction cheap (no STA).
    const std::size_t corner_count = tables->vdd.size();
    const std::vector<double>& tnom_ps = tables->nominal_period_ps;
    circuit::dynamic_timing_simulator sim(stage_nl.nl, tables);
    const auto bits_storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(bits_storage.get(), tap.width());
    std::vector<double> corner_delays(corner_count);

    if (warmup_op != no_warmup_op) {
        if (!tap.extract(trace.ops[warmup_op], bits)) {
            throw std::logic_error("characterizer: warm-up op does not drive the stage");
        }
        sim.step(std::span<const bool>(bits_storage.get(), tap.width()), corner_delays);
    }

    interval_characterization data;
    data.delay_histograms.reserve(corner_count);
    for (std::size_t c = 0; c < corner_count; ++c) {
        data.delay_histograms.emplace_back(
            0.0, tnom_ps[c] * config_.histogram_headroom, config_.histogram_bins);
    }

    const auto ops = trace.interval(interval);
    data.instruction_count = ops.size();
    for (std::size_t n = 0; n < ops.size(); ++n) {
        if (!tap.extract(ops[n], bits)) {
            continue;
        }
        sim.step(std::span<const bool>(bits_storage.get(), tap.width()), corner_delays);

        ++data.vector_count;
        for (std::size_t c = 0; c < corner_count; ++c) {
            data.delay_histograms[c].add(corner_delays[c]);
        }
        if (config_.keep_sampling_trace) {
            data.sampling_delays_ps.push_back(static_cast<float>(corner_delays[0]));
            data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
        }
    }
    return data;
}

stage_characterization characterizer::characterize(const program_artifacts& program,
                                                   circuit::pipe_stage stage,
                                                   const util::parallel_for_fn& parallel) const
{
    program.validate();

    const circuit::stage_netlist stage_nl = circuit::build_stage(stage);
    const auto corners = circuit::paper_voltage_levels();

    stage_characterization result;
    result.stage = stage;
    result.corner_vdd.assign(corners.begin(), corners.end());

    // One STA pass for the whole stage: the corner tables (per-gate delays
    // and the nominal periods, which depend only on (netlist, corner), not
    // on stepping history) are computed once up front and shared by every
    // cell's simulator.
    const std::shared_ptr<const circuit::timing_corner_tables> tables =
        circuit::make_corner_tables(stage_nl.nl, lib_, vm_, corners);
    result.tnom_ps = tables->nominal_period_ps;

    const arch::stage_tap tap(stage, stage_nl.layout);
    const std::size_t thread_count = program.trace.thread_count();
    const std::size_t interval_count = program.trace.interval_count();

    result.threads.resize(thread_count);
    for (auto& intervals : result.threads) {
        intervals.resize(interval_count);
    }

    // Pre-pass: each interval's replay vector is the last op *before* it
    // that drives the stage. One forward scan per thread finds them all;
    // a per-cell backward scan would re-walk the whole preceding history
    // per interval -- quadratic exactly when the stage fires rarely and
    // there is little simulation work to amortize it.
    std::vector<std::vector<std::size_t>> warmup_ops(
        thread_count, std::vector<std::size_t>(interval_count, no_warmup_op));
    util::for_each_index(parallel, thread_count, [&](std::size_t t) {
        const arch::thread_trace& trace = program.trace.threads[t];
        const auto bits_storage = std::make_unique<bool[]>(tap.width());
        const std::span<bool> bits(bits_storage.get(), tap.width());
        std::size_t last_driving = no_warmup_op;
        for (std::size_t k = 0; k < interval_count; ++k) {
            warmup_ops[t][k] = last_driving;
            const std::size_t begin = k == 0 ? 0 : trace.barrier_points[k - 1];
            for (std::size_t n = begin; n < trace.barrier_points[k]; ++n) {
                if (tap.extract(trace.ops[n], bits)) {
                    last_driving = n;
                }
            }
        }
    });

    // Every (thread, interval) cell is independent (see
    // characterize_interval) and lands in its pre-assigned slot, so the
    // merge order is deterministic regardless of schedule.
    util::for_each_index(parallel, thread_count * interval_count, [&](std::size_t cell) {
        const std::size_t t = cell / interval_count;
        const std::size_t k = cell % interval_count;
        result.threads[t][k] =
            characterize_interval(stage_nl, tap, tables, program.trace.threads[t], k,
                                  warmup_ops[t][k]);
    });
    return result;
}

stage_characterization characterizer::characterize(const arch::program_trace& program,
                                                   circuit::pipe_stage stage) const
{
    const program_characterizer profiler(config_.core);
    return characterize(profiler.characterize_trace(program), stage);
}

} // namespace synts::core
