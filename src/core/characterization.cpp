#include "core/characterization.h"

#include <memory>
#include <stdexcept>

#include "arch/stage_taps.h"
#include "circuit/dynamic_timing.h"

namespace synts::core {

empirical_error_model stage_characterization::make_error_model(std::size_t thread,
                                                               std::size_t interval) const
{
    const interval_characterization& data = threads.at(thread).at(interval);
    return empirical_error_model(data.delay_histograms, tnom_ps, data.drive_fraction());
}

characterizer::characterizer(const circuit::cell_library& lib,
                             const circuit::voltage_model& vm,
                             characterization_config config)
    : lib_(lib), vm_(vm), config_(std::move(config))
{
}

stage_characterization characterizer::characterize(const arch::program_trace& program,
                                                   circuit::pipe_stage stage) const
{
    program.validate();

    const circuit::stage_netlist stage_nl = circuit::build_stage(stage);
    const auto corners = circuit::paper_voltage_levels();

    stage_characterization result;
    result.stage = stage;
    result.corner_vdd.assign(corners.begin(), corners.end());

    // Architectural profiling (N_i, CPI_base_i per interval).
    arch::multicore_profiler profiler(config_.core);
    result.arch_profiles = profiler.profile(program);

    const arch::stage_tap tap(stage, stage_nl.layout);
    const auto bits_storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(bits_storage.get(), tap.width());
    std::vector<double> corner_delays(corners.size());

    result.threads.resize(program.thread_count());
    for (std::size_t t = 0; t < program.thread_count(); ++t) {
        // One simulator per thread: the stage's datapath state is private
        // to the core the thread runs on.
        circuit::dynamic_timing_simulator sim(stage_nl.nl, lib_, vm_, corners);
        if (result.tnom_ps.empty()) {
            result.tnom_ps.resize(corners.size());
            for (std::size_t c = 0; c < corners.size(); ++c) {
                result.tnom_ps[c] = sim.nominal_period_ps(c);
            }
        }

        const arch::thread_trace& trace = program.threads[t];
        auto& intervals = result.threads[t];
        intervals.reserve(trace.interval_count());

        for (std::size_t k = 0; k < trace.interval_count(); ++k) {
            interval_characterization data;
            data.delay_histograms.reserve(corners.size());
            for (std::size_t c = 0; c < corners.size(); ++c) {
                data.delay_histograms.emplace_back(
                    0.0, result.tnom_ps[c] * config_.histogram_headroom,
                    config_.histogram_bins);
            }

            const auto ops = trace.interval(k);
            data.instruction_count = ops.size();
            for (std::size_t n = 0; n < ops.size(); ++n) {
                if (!tap.extract(ops[n], bits)) {
                    continue;
                }
                sim.step(std::span<const bool>(bits_storage.get(), tap.width()),
                         corner_delays);

                ++data.vector_count;
                for (std::size_t c = 0; c < corners.size(); ++c) {
                    data.delay_histograms[c].add(corner_delays[c]);
                }
                if (config_.keep_sampling_trace) {
                    data.sampling_delays_ps.push_back(
                        static_cast<float>(corner_delays[0]));
                    data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
                }
            }
            intervals.push_back(std::move(data));
        }
    }
    return result;
}

} // namespace synts::core
