#include "core/characterization.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "circuit/dynamic_timing.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace synts::core {

empirical_error_model stage_characterization::make_error_model(std::size_t thread,
                                                               std::size_t interval) const
{
    const interval_characterization& data = threads.at(thread).at(interval);
    return empirical_error_model(data.delay_histograms, tnom_ps, data.drive_fraction());
}

characterizer::characterizer(const circuit::cell_library& lib,
                             const circuit::voltage_model& vm,
                             characterization_config config)
    : lib_(lib), vm_(vm), config_(std::move(config))
{
}

interval_characterization characterizer::characterize_interval(
    const circuit::stage_netlist& stage_nl, const arch::stage_tap& tap,
    const std::shared_ptr<const circuit::timing_corner_tables>& tables,
    const arch::thread_trace& trace, std::size_t interval,
    std::size_t warmup_op) const
{
    // One simulator per cell: the stage's datapath state is private to the
    // core the thread runs on, and a settled netlist's node values are a
    // pure function of the last applied vector. Replaying the last driving
    // vector of the preceding intervals -- `warmup_op`, precomputed by
    // characterize() -- with its delays discarded therefore reproduces
    // exactly the state a single serial walk of the whole thread would
    // carry into this interval: cells stay bit-identical to serial while
    // running embarrassingly parallel. The shared corner tables keep
    // per-cell construction cheap (no STA).
    const std::size_t corner_count = tables->vdd.size();
    const std::vector<double>& tnom_ps = tables->nominal_period_ps;
    circuit::dynamic_timing_simulator sim(stage_nl.nl, tables);
    const auto bits_storage = std::make_unique<bool[]>(tap.width());
    const std::span<bool> bits(bits_storage.get(), tap.width());
    std::vector<double> corner_delays(corner_count);

    if (warmup_op != no_warmup_op) {
        if (!tap.extract(trace.ops[warmup_op], bits)) {
            throw std::logic_error("characterizer: warm-up op does not drive the stage");
        }
        sim.step(std::span<const bool>(bits_storage.get(), tap.width()), corner_delays);
    }

    interval_characterization data;
    data.delay_histograms.reserve(corner_count);
    for (std::size_t c = 0; c < corner_count; ++c) {
        data.delay_histograms.emplace_back(
            0.0, tnom_ps[c] * config_.histogram_headroom, config_.histogram_bins);
    }

    const auto ops = trace.interval(interval);
    data.instruction_count = ops.size();
    for (std::size_t n = 0; n < ops.size(); ++n) {
        if (!tap.extract(ops[n], bits)) {
            continue;
        }
        sim.step(std::span<const bool>(bits_storage.get(), tap.width()), corner_delays);

        ++data.vector_count;
        for (std::size_t c = 0; c < corner_count; ++c) {
            data.delay_histograms[c].add(corner_delays[c]);
        }
        if (config_.keep_sampling_trace) {
            data.sampling_delays_ps.push_back(static_cast<float>(corner_delays[0]));
            data.sampling_instr_index.push_back(static_cast<std::uint32_t>(n));
        }
    }
    return data;
}

stage_characterization characterizer::characterize(const program_artifacts& program,
                                                   circuit::pipe_stage stage,
                                                   const util::parallel_for_fn& parallel,
                                                   std::size_t worker_hint,
                                                   const util::cancel_token& cancel) const
{
    program.validate();
    cancel.throw_if_cancelled();

    obs::metrics_registry& registry = obs::metrics_registry::global();
    obs::counter& cells_counter = registry.counter_at("characterize.cells");
    obs::counter& vectors_counter = registry.counter_at("characterize.vectors");
    obs::latency_histogram& cell_ns = registry.histogram_at("characterize.cell_ns");
    obs::health_monitor& slow_cells = obs::health_monitor::cell_monitor();
    const obs::trace_span span(obs::trace_recorder::global(), [stage] {
        return std::string("characterize.stage:") + circuit::pipe_stage_name(stage);
    });

    const circuit::stage_netlist stage_nl = circuit::build_stage(stage);
    const auto corners = circuit::paper_voltage_levels();

    stage_characterization result;
    result.stage = stage;
    result.corner_vdd.assign(corners.begin(), corners.end());

    // One STA pass for the whole stage: the corner tables (per-gate delays
    // and the nominal periods, which depend only on (netlist, corner), not
    // on stepping history) are computed once up front and shared by every
    // cell's simulator.
    const std::shared_ptr<const circuit::timing_corner_tables> tables =
        circuit::make_corner_tables(stage_nl.nl, lib_, vm_, corners);
    result.tnom_ps = tables->nominal_period_ps;

    const arch::stage_tap tap(stage, stage_nl.layout);
    const std::size_t thread_count = program.trace.thread_count();
    const std::size_t interval_count = program.trace.interval_count();

    result.threads.resize(thread_count);
    for (auto& intervals : result.threads) {
        intervals.resize(interval_count);
    }

    // Pre-pass: each interval's replay vector is the last op *before* it
    // that drives the stage. One forward scan per thread finds them all;
    // a per-cell backward scan would re-walk the whole preceding history
    // per interval -- quadratic exactly when the stage fires rarely and
    // there is little simulation work to amortize it. drives_stage alone
    // decides -- no bit extraction on this scan.
    std::vector<std::vector<std::size_t>> warmup_ops(
        thread_count, std::vector<std::size_t>(interval_count, no_warmup_op));
    util::for_each_index(parallel, thread_count, [&](std::size_t t) {
        cancel.throw_if_cancelled();
        const arch::thread_trace& trace = program.trace.threads[t];
        std::size_t last_driving = no_warmup_op;
        for (std::size_t k = 0; k < interval_count; ++k) {
            warmup_ops[t][k] = last_driving;
            const std::size_t begin = k == 0 ? 0 : trace.barrier_points[k - 1];
            for (std::size_t n = begin; n < trace.barrier_points[k]; ++n) {
                if (tap.drives_stage(trace.ops[n])) {
                    last_driving = n;
                }
            }
        }
    });

    if (!config_.batched) {
        // Scalar reference walk: every (thread, interval) cell is
        // independent (see characterize_interval) and lands in its
        // pre-assigned slot, so the merge order is deterministic
        // regardless of schedule.
        util::for_each_index(parallel, thread_count * interval_count,
                             [&](std::size_t cell) {
                                 cancel.throw_if_cancelled();
                                 const std::size_t t = cell / interval_count;
                                 const std::size_t k = cell % interval_count;
                                 const obs::monitored_timer timer(
                                     cell_ns, slow_cells, [stage, t, k] {
                                         return std::string("stage=") +
                                                circuit::pipe_stage_name(stage) +
                                                " thread=" + std::to_string(t) +
                                                " interval=" + std::to_string(k);
                                     });
                                 result.threads[t][k] = characterize_interval(
                                     stage_nl, tap, tables, program.trace.threads[t], k,
                                     warmup_ops[t][k]);
                                 cells_counter.add(1);
                                 vectors_counter.add(result.threads[t][k].vector_count);
                             });
        return result;
    }

    // Batched mode: the task grain is a contiguous run of intervals of one
    // thread. Within a chunk the simulator CHAINS -- the carried state
    // entering interval k is the settled last driving vector before k,
    // exactly what the scalar path's warm-up replay reconstructs -- so
    // chunking eliminates all warm-up work except one step at chunk entry.
    // Chunk count scales with the worker pool: enough chunks to load every
    // worker (with slack for imbalance), never more. At one worker this is
    // ONE chunk per thread, i.e. the plain serial walk with zero replay.
    std::size_t workers = worker_hint;
    if (workers == 0) {
        workers = parallel ? std::max<std::size_t>(std::thread::hardware_concurrency(), 1)
                           : 1;
    }
    std::size_t chunks_per_thread = 1;
    if (workers > 1 && thread_count > 0 && interval_count > 0) {
        // Aim for ~4 chunks per worker across all threads so the tail of an
        // uneven schedule still has work to steal.
        const std::size_t target_chunks = 4 * workers;
        chunks_per_thread = (target_chunks + thread_count - 1) / thread_count;
        chunks_per_thread = std::clamp<std::size_t>(chunks_per_thread, 1, interval_count);
    }

    struct chunk {
        std::size_t thread = 0;
        std::size_t begin_interval = 0;
        std::size_t end_interval = 0;
    };
    std::vector<chunk> chunks;
    chunks.reserve(thread_count * chunks_per_thread);
    for (std::size_t t = 0; t < thread_count; ++t) {
        for (std::size_t i = 0; i < chunks_per_thread; ++i) {
            const std::size_t begin = interval_count * i / chunks_per_thread;
            const std::size_t end = interval_count * (i + 1) / chunks_per_thread;
            if (begin < end) {
                chunks.push_back(chunk{t, begin, end});
            }
        }
    }

    const std::size_t corner_count = tables->vdd.size();
    const std::vector<double>& tnom_ps = tables->nominal_period_ps;
    constexpr std::size_t lanes_max = circuit::dynamic_timing_simulator::max_batch_lanes;

    util::for_each_index(parallel, chunks.size(), [&](std::size_t ci) {
        cancel.throw_if_cancelled(); // chunk entry
        const chunk& ch = chunks[ci];
        const arch::thread_trace& trace = program.trace.threads[ch.thread];

        circuit::dynamic_timing_simulator sim(stage_nl.nl, tables);
        std::vector<std::uint64_t> lane_words(tap.width());
        std::array<std::uint32_t, lanes_max> lane_op_index{};
        std::vector<double> lane_delays(corner_count * lanes_max);

        // Chunk entry: replay the last driving vector of the preceding
        // history (delays discarded), reproducing the carried state a
        // serial walk would bring here.
        const std::size_t warmup_op = warmup_ops[ch.thread][ch.begin_interval];
        if (warmup_op != no_warmup_op) {
            const auto bits_storage = std::make_unique<bool[]>(tap.width());
            const std::span<bool> bits(bits_storage.get(), tap.width());
            if (!tap.extract(trace.ops[warmup_op], bits)) {
                throw std::logic_error(
                    "characterizer: warm-up op does not drive the stage");
            }
            std::vector<double> discard(corner_count);
            sim.step(std::span<const bool>(bits_storage.get(), tap.width()), discard);
        }

        for (std::size_t k = ch.begin_interval; k < ch.end_interval; ++k) {
            // Per-interval poll: bounds cancel latency by one interval of
            // simulation even when a chunk spans the whole trace (the
            // 1-worker degenerate partition).
            cancel.throw_if_cancelled();
            const obs::monitored_timer timer(
                cell_ns, slow_cells, [stage, &ch, k] {
                    return std::string("stage=") + circuit::pipe_stage_name(stage) +
                           " thread=" + std::to_string(ch.thread) +
                           " interval=" + std::to_string(k);
                });
            const auto ops = trace.interval(k);

            interval_characterization data;
            data.delay_histograms.reserve(corner_count);
            for (std::size_t c = 0; c < corner_count; ++c) {
                data.delay_histograms.emplace_back(
                    0.0, tnom_ps[c] * config_.histogram_headroom, config_.histogram_bins);
            }
            data.instruction_count = ops.size();

            std::size_t offset = 0;
            while (offset < ops.size()) {
                const arch::stage_tap::batch_result batch = tap.extract_batch(
                    ops.subspan(offset), lane_words,
                    std::span<std::uint32_t>(lane_op_index.data(), lanes_max));
                if (batch.lanes > 0) {
                    const std::size_t lanes = batch.lanes;
                    const std::span<double> delays(lane_delays.data(),
                                                   corner_count * lanes);
                    sim.step_batch(lane_words, lanes, delays);

                    data.vector_count += lanes;
                    for (std::size_t c = 0; c < corner_count; ++c) {
                        // Corner-major delay layout: one contiguous bulk
                        // insert per corner.
                        data.delay_histograms[c].add(delays.subspan(c * lanes, lanes));
                    }
                    if (config_.keep_sampling_trace) {
                        for (std::size_t j = 0; j < lanes; ++j) {
                            data.sampling_delays_ps.push_back(
                                static_cast<float>(lane_delays[j]));
                            data.sampling_instr_index.push_back(
                                static_cast<std::uint32_t>(offset + lane_op_index[j]));
                        }
                    }
                }
                offset += batch.ops_consumed;
            }

            cells_counter.add(1);
            vectors_counter.add(data.vector_count);
            result.threads[ch.thread][k] = std::move(data);
        }
    });
    return result;
}

stage_characterization characterizer::characterize(const arch::program_trace& program,
                                                   circuit::pipe_stage stage) const
{
    const program_characterizer profiler(config_.core);
    return characterize(profiler.characterize_trace(program), stage);
}

} // namespace synts::core
