#include "core/milp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace synts::core {

namespace {
thread_local branch_and_bound_stats tls_bnb_stats;
} // namespace

milp_model milp_model::build(const solver_input& input)
{
    input.validate();
    const config_space& space = *input.space;

    milp_model model;
    model.m_ = input.thread_count();
    model.q_ = space.voltage_count();
    model.s_ = space.tsr_count();
    model.theta_ = input.theta;
    model.energy_.resize(model.m_ * model.q_ * model.s_);
    model.time_.resize(model.m_ * model.q_ * model.s_);

    for (std::size_t i = 0; i < model.m_; ++i) {
        for (std::size_t j = 0; j < model.q_; ++j) {
            for (std::size_t k = 0; k < model.s_; ++k) {
                const thread_metrics metric =
                    evaluate_thread(space, input.workloads[i], *input.error_models[i],
                                    thread_assignment{j, k}, input.params);
                model.energy_[model.index(i, j, k)] = metric.energy;
                model.time_[model.index(i, j, k)] = metric.time_ps;
            }
        }
    }
    return model;
}

double milp_model::objective(std::span<const thread_assignment> assignments) const
{
    double energy = 0.0;
    double texec = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t idx = index(i, assignments[i].voltage_index,
                                      assignments[i].tsr_index);
        energy += energy_[idx];
        texec = std::max(texec, time_[idx]);
    }
    return energy + theta_ * texec;
}

bool milp_model::is_feasible(std::span<const thread_assignment> assignments) const
{
    if (assignments.size() != m_) {
        return false;
    }
    for (const thread_assignment& a : assignments) {
        if (a.voltage_index >= q_ || a.tsr_index >= s_) {
            return false;
        }
    }
    return true;
}

std::string milp_model::to_lp_string() const
{
    std::ostringstream lp;
    lp << "\\ SynTS-MILP (Eqs. 4.5-4.10): M=" << m_ << " Q=" << q_ << " S=" << s_ << "\n";
    lp << "Minimize\n obj: ";
    bool first = true;
    for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t j = 0; j < q_; ++j) {
            for (std::size_t k = 0; k < s_; ++k) {
                const double c = energy_[index(i, j, k)];
                if (!first) {
                    lp << " + ";
                }
                lp << c << " x_" << i << "_" << j << "_" << k;
                first = false;
            }
        }
    }
    lp << " + " << theta_ << " t_exec\n";

    lp << "Subject To\n";
    // Eq. 4.6: t_exec >= sum_jk time_ijk x_ijk  for each thread.
    for (std::size_t i = 0; i < m_; ++i) {
        lp << " texec_bound_" << i << ": t_exec";
        for (std::size_t j = 0; j < q_; ++j) {
            for (std::size_t k = 0; k < s_; ++k) {
                lp << " - " << time_[index(i, j, k)] << " x_" << i << "_" << j << "_" << k;
            }
        }
        lp << " >= 0\n";
    }
    // Eq. 4.10: one-hot assignment per thread.
    for (std::size_t i = 0; i < m_; ++i) {
        lp << " onehot_" << i << ":";
        bool first_term = true;
        for (std::size_t j = 0; j < q_; ++j) {
            for (std::size_t k = 0; k < s_; ++k) {
                lp << (first_term ? " " : " + ") << "x_" << i << "_" << j << "_" << k;
                first_term = false;
            }
        }
        lp << " = 1\n";
    }

    lp << "Bounds\n t_exec >= 0\n";
    lp << "Binaries\n";
    for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t j = 0; j < q_; ++j) {
            for (std::size_t k = 0; k < s_; ++k) {
                lp << " x_" << i << "_" << j << "_" << k;
            }
        }
    }
    lp << "\nEnd\n";
    return lp.str();
}

interval_solution solve_branch_and_bound(const solver_input& input)
{
    const milp_model model = milp_model::build(input);
    const std::size_t m = model.thread_count();
    const std::size_t q = model.voltage_count();
    const std::size_t s = model.tsr_count();
    tls_bnb_stats = branch_and_bound_stats{};

    // Per-thread minima used by the admissible lower bound.
    std::vector<double> min_energy(m, std::numeric_limits<double>::infinity());
    std::vector<double> min_time(m, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < q; ++j) {
            for (std::size_t k = 0; k < s; ++k) {
                min_energy[i] = std::min(min_energy[i], model.energy_coeff(i, j, k));
                min_time[i] = std::min(min_time[i], model.time_coeff(i, j, k));
            }
        }
    }
    // Suffix sums/maxima over threads i..M-1 for O(1) bound queries.
    std::vector<double> suffix_min_energy(m + 1, 0.0);
    std::vector<double> suffix_min_time(m + 1, 0.0);
    for (std::size_t i = m; i-- > 0;) {
        suffix_min_energy[i] = suffix_min_energy[i + 1] + min_energy[i];
        suffix_min_time[i] = std::max(suffix_min_time[i + 1], min_time[i]);
    }

    std::vector<thread_assignment> current(m);
    std::vector<thread_assignment> best(m, input.space->nominal_assignment());
    double best_cost = model.objective(best);

    // Iterative DFS with explicit recursion (thread, accumulated energy,
    // accumulated max time).
    struct frame {
        std::size_t thread;
        std::size_t next_flat; // next (j, k) flat index to try
        double energy_so_far;
        double time_so_far;
    };
    std::vector<frame> stack;
    stack.push_back({0, 0, 0.0, 0.0});

    const std::size_t per_thread = q * s;
    while (!stack.empty()) {
        frame& top = stack.back();
        if (top.thread == m) {
            const double cost = top.energy_so_far + model.theta() * top.time_so_far;
            if (cost < best_cost) {
                best_cost = cost;
                best = current;
            }
            stack.pop_back();
            continue;
        }
        if (top.next_flat >= per_thread) {
            stack.pop_back();
            continue;
        }
        const std::size_t flat = top.next_flat++;
        const std::size_t j = flat / s;
        const std::size_t k = flat % s;
        ++tls_bnb_stats.nodes_expanded;

        const double energy =
            top.energy_so_far + model.energy_coeff(top.thread, j, k);
        const double time = std::max(top.time_so_far, model.time_coeff(top.thread, j, k));
        const double bound = energy + suffix_min_energy[top.thread + 1] +
                             model.theta() *
                                 std::max(time, suffix_min_time[top.thread + 1]);
        if (bound >= best_cost) {
            ++tls_bnb_stats.nodes_pruned;
            continue;
        }
        current[top.thread] = thread_assignment{j, k};
        stack.push_back({top.thread + 1, 0, energy, time});
    }

    return evaluate_assignment(input, best);
}

branch_and_bound_stats last_branch_and_bound_stats() noexcept
{
    return tls_bnb_stats;
}

} // namespace synts::core
