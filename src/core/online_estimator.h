// online_estimator.h -- the sampling-based online error estimation of
// Section 4.3 (Fig. 4.7).
//
// At the start of each barrier interval every thread spends its first
// N_samp instructions in a sampling phase: all threads run at a fixed
// voltage V_samp while sweeping the S TSR levels, N_samp / S instructions
// each. Razor error counters give an estimate of err_i at each swept level;
// the error at any other voltage V is extrapolated as err~(t_clk/t_nom(V))
// -- i.e. the estimate depends on the TSR only, which is exact under
// uniform voltage scaling and approximate under our per-cell-class spread.
// The sampling phase's own time/energy (run at sub-optimal V/F, with real
// errors and replays) is charged to the interval; that cost plus the
// estimation noise is what separates SynTS-online from SynTS-offline in
// Fig. 6.18.

#pragma once

#include <cstdint>
#include <vector>

#include "core/characterization.h"
#include "core/config_space.h"
#include "core/error_model.h"
#include "energy/energy_model.h"

namespace synts::core {

/// Estimated error curve: err~ at the swept TSR levels, linearly
/// interpolated in r and independent of voltage (the paper's
/// single-voltage extrapolation).
class estimated_error_curve final : public error_curve {
public:
    /// `tsr_levels` ascending; `err_at_tsr` the per-instruction estimates.
    estimated_error_curve(std::vector<double> tsr_levels, std::vector<double> err_at_tsr);

    [[nodiscard]] double error_probability(std::size_t voltage_index,
                                           double tsr) const override;

    /// The raw per-level estimates.
    [[nodiscard]] std::span<const double> level_estimates() const noexcept
    {
        return err_at_tsr_;
    }

private:
    std::vector<double> tsr_levels_;
    std::vector<double> err_at_tsr_;
};

/// Knobs of the online scheme (Section 4.3 / 6.2).
struct sampling_config {
    /// N_samp as a fraction of the interval's instructions (paper: 10%).
    double sample_fraction = 0.10;
    /// Voltage level index used while sampling (paper: nominal chip V).
    std::size_t sample_voltage_index = 0;
    /// Lower bound on N_samp so tiny intervals still estimate something.
    std::uint64_t min_sample_instructions = 600;
};

/// Outcome of sampling one thread's interval.
struct sampling_result {
    std::vector<double> err_estimates;        ///< per TSR level (per instruction)
    std::vector<std::uint64_t> errors;        ///< Razor counter per level
    std::vector<std::uint64_t> instructions;  ///< instructions spent per level
    std::uint64_t sampled_instructions = 0;   ///< N_samp actually used
    double sampling_time_ps = 0.0;            ///< wall time of the phase
    double sampling_energy = 0.0;             ///< energy of the phase

    /// Builds the estimator's error curve.
    [[nodiscard]] estimated_error_curve
    make_curve(const config_space& space) const;
};

/// Replays the sampling phase against the characterized delay trace.
class online_estimator {
public:
    explicit online_estimator(sampling_config config = {});

    /// Samples the first N_samp instructions of `data` (one thread, one
    /// interval): level k of the sweep covers instructions
    /// [k, k+1) * N_samp / S and counts vectors whose sampling-corner delay
    /// exceeds r_k * t_nom(V_samp). `cpi_base` prices the phase's time and
    /// energy.
    [[nodiscard]] sampling_result sample_interval(const config_space& space,
                                                  const interval_characterization& data,
                                                  double cpi_base,
                                                  const energy::energy_params& params) const;

    /// The configured knobs.
    [[nodiscard]] const sampling_config& config() const noexcept { return config_; }

private:
    sampling_config config_;
};

} // namespace synts::core
