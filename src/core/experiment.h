// experiment.h -- benchmark-level experiment driver.
//
// Ties the whole reproduction together: generate the SPLASH-2 program
// trace, run the cross-layer characterization for a pipe stage, build the
// config space from the stage's per-voltage nominal periods, and evaluate
// any policy over all barrier intervals. This is the entry point used by
// the examples and by every figure bench.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/netlist_builder.h"
#include "circuit/voltage_model.h"
#include "core/characterization.h"
#include "core/program_artifacts.h"
#include "core/workload_predictor.h"
#include "core/config_space.h"
#include "core/policies.h"
#include "util/parallel.h"
#include "workload/splash2.h"

namespace synts::core {

/// Experiment-wide knobs.
struct experiment_config {
    std::size_t thread_count = 4;     ///< M (the paper's CMP study uses 4)
    std::uint64_t seed = 42;          ///< workload generation seed
    sampling_config sampling{};       ///< SynTS-online knobs
    characterization_config characterization{};
    energy::energy_params params{};
    double voltage_class_spread = 0.04; ///< see voltage_model (0 = uniform)

    /// Stable 64-bit digest over the fields that determine the
    /// stage-INDEPENDENT program artifacts (trace + architectural
    /// profiles): thread_count, seed, and every core-model knob. Two
    /// configs with equal workload digests generate identical
    /// program_artifacts, so the runtime's program-tier cache may share one
    /// artifact set between them -- across all pipe stages and across
    /// configs differing only in sampling/histogram/energy/voltage knobs.
    [[nodiscard]] std::uint64_t workload_digest() const noexcept;

    /// Stable 64-bit digest over every result-affecting field; composes
    /// workload_digest() with the stage-characterization and evaluation
    /// knobs. Two configs with equal digests characterize identically, so
    /// the runtime's experiment cache may serve one in place of the other.
    /// Any new knob added above MUST be folded into digest() (or, when it
    /// changes the trace or architectural profiles, into
    /// workload_digest()); tests/test_core_experiment_api.cpp perturbs
    /// every field and fails on a forgotten one.
    [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// A fully characterized (benchmark, stage) experiment, ready to evaluate
/// policies at any theta.
class benchmark_experiment {
public:
    /// Generates the workload, profiles the cores and characterizes the
    /// stage. Heavyweight: run once and reuse. Prefer the artifact
    /// constructor below when several stages (or configs differing only in
    /// evaluation knobs) share one workload -- this overload rebuilds the
    /// stage-independent artifacts every time. The workload is resolved
    /// through workload_registry::global(); benchmark_id call sites convert
    /// implicitly (the built-in ten are always registered), and an
    /// unregistered key throws std::out_of_range.
    benchmark_experiment(const workload::workload_key& workload,
                         circuit::pipe_stage stage,
                         const experiment_config& config = {});

    /// Staged-pipeline constructor: consumes pre-built stage-independent
    /// artifacts (trace + architectural profiles) instead of regenerating
    /// them, and keeps them alive for the experiment's lifetime. Throws
    /// std::invalid_argument when `artifacts` is null or its provenance
    /// (thread count, and the stamped workload digest covering seed and
    /// core model) disagrees with `config`. `parallel` fans the
    /// per-(thread, interval) stage characterization out; results are
    /// bit-identical for any executor. `cancel` (inert by default) is
    /// polled throughout the characterization walk (see
    /// characterizer::characterize); a cancelled construction unwinds as
    /// util::operation_cancelled and no experiment object exists.
    benchmark_experiment(std::shared_ptr<const program_artifacts> artifacts,
                         circuit::pipe_stage stage, const experiment_config& config = {},
                         const util::parallel_for_fn& parallel = {},
                         const util::cancel_token& cancel = {});

    /// The shared stage-independent artifacts this experiment was built on.
    [[nodiscard]] const std::shared_ptr<const program_artifacts>&
    artifacts() const noexcept
    {
        return artifacts_;
    }

    /// The workload's registry identity.
    [[nodiscard]] const workload::workload_key& workload() const noexcept
    {
        return workload_;
    }
    /// The analyzed stage.
    [[nodiscard]] circuit::pipe_stage stage() const noexcept { return stage_; }
    /// Number of barrier intervals.
    [[nodiscard]] std::size_t interval_count() const noexcept;
    /// Number of threads.
    [[nodiscard]] std::size_t thread_count() const noexcept;
    /// The (V, r) grid with this stage's nominal periods.
    [[nodiscard]] const config_space& space() const noexcept { return space_; }
    /// The raw characterization (delay histograms etc.).
    [[nodiscard]] const stage_characterization& characterization() const noexcept
    {
        return characterization_;
    }
    /// True error model of (thread, interval).
    [[nodiscard]] const empirical_error_model& error_model(std::size_t thread,
                                                           std::size_t interval) const
    {
        return error_models_.at(thread).at(interval);
    }

    /// Solver input (true curves, full workloads) for interval `k`.
    [[nodiscard]] solver_input make_solver_input(std::size_t interval, double theta) const;

    /// theta equalizing total nominal energy and execution time across all
    /// intervals (Fig. 6.18's "weights energy and execution time equally").
    [[nodiscard]] double equal_weight_theta() const;

    /// Aggregated policy result over all intervals.
    struct totals {
        double energy = 0.0;
        double time_ps = 0.0;
        [[nodiscard]] double edp() const noexcept { return energy * time_ps; }
    };

    /// Per-interval outcomes plus the aggregate.
    struct policy_run {
        policy_kind kind = policy_kind::nominal;
        std::vector<interval_outcome> intervals;
        totals sum;
    };

    /// Runs one policy at `theta` over every interval.
    ///
    /// Thread safety: this and every other const member (make_solver_input,
    /// equal_weight_theta, run_all_policies, run_synts_online_predicted, and
    /// the free pareto_sweep below) may be called concurrently on one
    /// instance. The evaluation path holds no hidden mutable state -- the
    /// policy_engine, solvers and estimators are pure const code, and the
    /// MILP's instrumentation counters are thread_local. The runtime's
    /// experiment_cache relies on this to share one instance across all
    /// sweep workers; tests/test_runtime_sweep.cpp pins the contract.
    [[nodiscard]] policy_run run_policy(policy_kind kind, double theta) const;

    /// Convenience: runs all five policies at `theta`.
    [[nodiscard]] std::vector<policy_run> run_all_policies(double theta) const;

    /// SynTS-online with *predicted* workloads: interval 0 is bootstrapped
    /// by the characterized workloads (the paper's offline-knowledge
    /// assumption), then an EWMA workload predictor replaces it -- the
    /// fully-online operating mode the paper's citations [8, 15, 16] hint
    /// at. `smoothing` is the predictor's EWMA weight.
    [[nodiscard]] policy_run run_synts_online_predicted(double theta,
                                                        double smoothing = 0.6) const;

private:
    workload::workload_key workload_;
    circuit::pipe_stage stage_;
    experiment_config config_;
    std::shared_ptr<const program_artifacts> artifacts_;
    circuit::cell_library lib_;
    circuit::voltage_model vm_;
    stage_characterization characterization_;
    config_space space_{{1.0}, {1.0}, {1.0}};
    std::vector<std::vector<empirical_error_model>> error_models_; ///< [thread][interval]
    policy_engine engine_;
};

/// Builds the stage-independent program artifacts of (workload, config):
/// phase one of the staged pipeline. Only config.thread_count, config.seed
/// and config.characterization.core participate (== workload_digest());
/// the workload key selects WHICH registered program is generated.
/// `cancel` as on program_characterizer::characterize.
[[nodiscard]] std::shared_ptr<const program_artifacts>
make_program_artifacts(const workload::workload_key& workload,
                       const experiment_config& config = {},
                       const util::parallel_for_fn& parallel = {},
                       const util::cancel_token& cancel = {});

/// One point of a Pareto sweep (Figs. 6.11-6.16).
struct pareto_point {
    double theta = 0.0;
    double energy = 0.0;  ///< normalized to Nominal
    double time = 0.0;    ///< normalized to Nominal
};

/// Sweeps theta over `theta_multipliers` x equal_weight_theta() and returns
/// (energy, time) of `kind` normalized to the Nominal baseline.
[[nodiscard]] std::vector<pareto_point>
pareto_sweep(const benchmark_experiment& experiment, policy_kind kind,
             std::span<const double> theta_multipliers);

/// Same sweep with the shared per-experiment inputs precomputed:
/// `theta_eq` must be experiment.equal_weight_theta() and
/// `nominal_baseline` its Nominal run at theta_eq. The two-argument
/// overload above delegates here, so results are bit-identical; the runtime
/// scheduler uses this form to compute the baseline once per
/// (benchmark, stage) pair instead of once per policy cell.
[[nodiscard]] std::vector<pareto_point>
pareto_sweep(const benchmark_experiment& experiment, policy_kind kind,
             std::span<const double> theta_multipliers, double theta_eq,
             const benchmark_experiment::policy_run& nominal_baseline);

/// Default multiplier ladder for Pareto sweeps (log-spaced around 1).
[[nodiscard]] std::vector<double> default_theta_multipliers();

} // namespace synts::core
