#include "core/error_model.h"

#include <cmath>
#include <stdexcept>

namespace synts::core {

empirical_error_model::empirical_error_model(std::vector<util::histogram> per_corner_delays,
                                             std::vector<double> tnom_ps,
                                             double drive_fraction)
    : histograms_(std::move(per_corner_delays)), tnom_ps_(std::move(tnom_ps)),
      drive_fraction_(drive_fraction)
{
    if (histograms_.empty() || histograms_.size() != tnom_ps_.size()) {
        throw std::invalid_argument("empirical_error_model: corner arrays mismatch");
    }
    if (drive_fraction_ < 0.0 || drive_fraction_ > 1.0) {
        throw std::invalid_argument("empirical_error_model: drive_fraction out of range");
    }
}

double empirical_error_model::vector_error_probability(std::size_t voltage_index,
                                                       double tsr) const
{
    if (voltage_index >= histograms_.size()) {
        throw std::out_of_range("empirical_error_model: voltage index");
    }
    const double threshold = tsr * tnom_ps_[voltage_index];
    return histograms_[voltage_index].exceedance(threshold);
}

double empirical_error_model::error_probability(std::size_t voltage_index, double tsr) const
{
    return vector_error_probability(voltage_index, tsr) * drive_fraction_;
}

synthetic_error_curve::synthetic_error_curve(double onset, double floor_tsr, double scale,
                                             double power, double cap)
    : onset_(onset), floor_tsr_(floor_tsr), scale_(scale), power_(power), cap_(cap)
{
    if (!(floor_tsr < onset)) {
        throw std::invalid_argument("synthetic_error_curve: floor must precede onset");
    }
    if (scale < 0.0 || cap < 0.0 || power <= 0.0) {
        throw std::invalid_argument("synthetic_error_curve: bad shape parameters");
    }
}

double synthetic_error_curve::error_probability(std::size_t /*voltage_index*/,
                                                double tsr) const
{
    if (tsr >= onset_) {
        return 0.0;
    }
    const double normalized = (onset_ - tsr) / (onset_ - floor_tsr_);
    const double err = scale_ * std::pow(normalized, power_);
    return std::min(err, cap_);
}

} // namespace synts::core
