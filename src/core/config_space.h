// config_space.h -- the discrete voltage x timing-speculation-ratio grid.
//
// Section 4.1: core i picks voltage V_i from Q discrete levels and TSR r_i
// from S discrete levels (R_S = 1); its clock period is
// t_clk = r_i * t_nom(V_i). t_nom depends on the analyzed pipe stage (its
// critical path) as well as the voltage, so a config_space is built per
// stage from the stage's per-corner STA periods.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace synts::core {

/// One (voltage level, TSR level) choice for a thread.
struct thread_assignment {
    std::size_t voltage_index = 0; ///< j in [0, Q)
    std::size_t tsr_index = 0;     ///< k in [0, S)

    friend bool operator==(const thread_assignment&, const thread_assignment&) = default;
};

/// The discrete V x R grid plus the per-voltage nominal periods.
class config_space {
public:
    /// Builds a space; `tnom_ps[j]` is the stage's error-free clock period
    /// at `voltages[j]`. tsr levels must be ascending with last == 1.
    /// Throws std::invalid_argument on inconsistent inputs.
    config_space(std::vector<double> voltages, std::vector<double> tsr_levels,
                 std::vector<double> tnom_ps);

    /// The paper's default grid: Table 5.1 voltages and six TSR levels
    /// spanning [0.64, 1.0] (Section 6.2). `tnom_ps` must align with
    /// circuit::paper_voltage_levels().
    [[nodiscard]] static config_space paper_grid(std::span<const double> tnom_ps);

    /// Six evenly spaced ratios 0.64 .. 1.0 (Section 6.2: "six clock
    /// periods that are a fraction r in [0.64, 1] of the nominal").
    [[nodiscard]] static std::vector<double> default_tsr_levels();

    /// Q -- number of voltage levels.
    [[nodiscard]] std::size_t voltage_count() const noexcept { return voltages_.size(); }
    /// S -- number of TSR levels.
    [[nodiscard]] std::size_t tsr_count() const noexcept { return tsr_levels_.size(); }
    /// Voltage of level j, volts.
    [[nodiscard]] double voltage(std::size_t j) const noexcept { return voltages_[j]; }
    /// TSR of level k.
    [[nodiscard]] double tsr(std::size_t k) const noexcept { return tsr_levels_[k]; }
    /// Nominal (error-free) period at voltage level j, ps.
    [[nodiscard]] double tnom_ps(std::size_t j) const noexcept { return tnom_ps_[j]; }
    /// Speculative clock period of an assignment: r_k * t_nom(V_j), ps.
    [[nodiscard]] double clock_period_ps(const thread_assignment& a) const noexcept
    {
        return tsr_levels_[a.tsr_index] * tnom_ps_[a.voltage_index];
    }

    /// Index of the nominal operating point: highest voltage, r = 1.
    [[nodiscard]] thread_assignment nominal_assignment() const noexcept;

    /// All voltages / TSRs / periods as spans (for reports).
    [[nodiscard]] std::span<const double> voltages() const noexcept { return voltages_; }
    [[nodiscard]] std::span<const double> tsr_levels() const noexcept { return tsr_levels_; }
    [[nodiscard]] std::span<const double> tnom_levels_ps() const noexcept { return tnom_ps_; }

private:
    std::vector<double> voltages_;
    std::vector<double> tsr_levels_;
    std::vector<double> tnom_ps_;
};

} // namespace synts::core
