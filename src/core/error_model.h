// error_model.h -- per-thread timing-error probability functions err_i(r).
//
// Section 4.1: "for a given r_i, the error probability is p_err = err_i(r_i);
// err_i is a decreasing function of r_i ... the error probability function
// can vary from one thread to another". Here err is represented per
// *instruction* (vectors that do not exercise the analyzed stage cannot
// error in it), as a function of both the voltage level and the TSR --
// under perfectly uniform voltage scaling the voltage dependence vanishes,
// which is exactly the approximation the online estimator relies on.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/histogram.h"

namespace synts::core {

/// Abstract per-thread error-probability function.
class error_curve {
public:
    virtual ~error_curve() = default;

    /// Per-instruction timing-error probability when running at voltage
    /// level `voltage_index` with timing-speculation ratio `tsr`.
    [[nodiscard]] virtual double error_probability(std::size_t voltage_index,
                                                   double tsr) const = 0;
};

/// Empirical error model built from the cross-layer characterization: one
/// sensitized-delay histogram per voltage corner plus the fraction of
/// instructions that drive the stage.
class empirical_error_model final : public error_curve {
public:
    /// `per_corner_delays[j]` holds the delay distribution at voltage level
    /// j; `tnom_ps[j]` is the stage's nominal period there. `drive_fraction`
    /// in [0, 1]. Throws std::invalid_argument on size mismatch.
    empirical_error_model(std::vector<util::histogram> per_corner_delays,
                          std::vector<double> tnom_ps, double drive_fraction);

    [[nodiscard]] double error_probability(std::size_t voltage_index,
                                           double tsr) const override;

    /// Per-vector exceedance (without the drive-fraction factor).
    [[nodiscard]] double vector_error_probability(std::size_t voltage_index,
                                                  double tsr) const;

    /// Fraction of instructions exercising the stage.
    [[nodiscard]] double drive_fraction() const noexcept { return drive_fraction_; }

    /// Number of voltage corners.
    [[nodiscard]] std::size_t corner_count() const noexcept { return histograms_.size(); }

    /// Delay histogram at a corner (plots / tests).
    [[nodiscard]] const util::histogram& corner_histogram(std::size_t j) const
    {
        return histograms_[j];
    }

private:
    std::vector<util::histogram> histograms_;
    std::vector<double> tnom_ps_;
    double drive_fraction_;
};

/// Parametric error curve for unit tests, solver property tests, and the
/// conceptual Fig. 1.2 bench:
///   err(r) = min(cap, scale * ((onset - r) / (onset - floor))^power)
/// for r < onset, else 0; independent of voltage (uniform scaling).
class synthetic_error_curve final : public error_curve {
public:
    /// `onset` is the largest TSR with nonzero error; `floor_tsr` anchors
    /// the normalization; `scale` is err at floor_tsr; `power` shapes the
    /// curve; `cap` bounds the probability.
    synthetic_error_curve(double onset, double floor_tsr, double scale, double power,
                          double cap = 1.0);

    [[nodiscard]] double error_probability(std::size_t voltage_index,
                                           double tsr) const override;

private:
    double onset_;
    double floor_tsr_;
    double scale_;
    double power_;
    double cap_;
};

} // namespace synts::core
