#include "core/program_artifacts.h"

#include <stdexcept>

#include "util/hashing.h"

namespace synts::core {

std::uint64_t workload_digest(std::size_t thread_count, std::uint64_t seed,
                              const arch::core_config& core) noexcept
{
    util::digest_builder h;
    h.value(thread_count);
    h.value(seed);
    h.value(core.dcache.size_bytes);
    h.value(core.dcache.line_bytes);
    h.value(core.dcache.ways);
    h.value(core.dcache.hit_latency_cycles);
    h.value(core.dcache.miss_penalty_cycles);
    h.value(core.branch_mispredict_penalty);
    h.value(core.mul_latency_cycles);
    h.value(core.fp_latency_cycles);
    h.value(core.predictor_index_bits);
    return h.digest();
}

void program_artifacts::validate() const
{
    trace.validate();
    if (arch_profiles.size() != trace.thread_count()) {
        throw std::logic_error("program_artifacts: profile/trace thread count mismatch");
    }
    for (const arch::thread_profile& profile : arch_profiles) {
        if (profile.size() != trace.interval_count()) {
            throw std::logic_error("program_artifacts: profile/trace interval mismatch");
        }
    }
}

bool program_artifacts::provenance_matches(
    const workload::workload_key& expected_workload, std::size_t expected_thread_count,
    std::uint64_t expected_workload_digest) const noexcept
{
    return workload == expected_workload && thread_count == expected_thread_count &&
           workload_digest == expected_workload_digest &&
           trace.thread_count() == expected_thread_count;
}

program_characterizer::program_characterizer(arch::core_config core) : core_(core) {}

program_artifacts program_characterizer::characterize(
    const workload::workload_key& key, std::size_t thread_count, std::uint64_t seed,
    const util::parallel_for_fn& parallel, const util::cancel_token& cancel) const
{
    cancel.throw_if_cancelled();
    const workload::benchmark_profile profile =
        workload::workload_registry::global().make_profile(key, thread_count);

    program_artifacts artifacts;
    artifacts.workload = key;
    artifacts.thread_count = thread_count;
    artifacts.seed = seed;
    artifacts.workload_digest = core::workload_digest(thread_count, seed, core_);
    artifacts.trace = workload::generate_program_trace(profile, seed, parallel);

    cancel.throw_if_cancelled(); // phase boundary: generation -> profiling
    arch::multicore_profiler profiler(core_);
    artifacts.arch_profiles = profiler.profile(artifacts.trace, parallel);
    return artifacts;
}

program_artifacts
program_characterizer::characterize_trace(arch::program_trace trace,
                                          const util::parallel_for_fn& parallel) const
{
    program_artifacts artifacts;
    artifacts.thread_count = trace.thread_count();
    artifacts.trace = std::move(trace);

    arch::multicore_profiler profiler(core_);
    artifacts.arch_profiles = profiler.profile(artifacts.trace, parallel);
    return artifacts;
}

} // namespace synts::core
