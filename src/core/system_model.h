// system_model.h -- evaluation of a joint (V, r) assignment (Eqs. 4.1-4.4).
//
// Given per-thread workloads (N_i, CPI_base_i), per-thread error curves, a
// config space and an assignment, this module computes every thread's clock
// period, error probability, execution time and energy, the barrier
// execution time (max over threads), and the weighted cost
// sum_i en_i + theta * t_exec that all optimizers minimize.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config_space.h"
#include "core/error_model.h"
#include "energy/energy_model.h"

namespace synts::core {

/// Architectural workload of one thread in one barrier interval.
struct thread_workload {
    std::uint64_t instructions = 0; ///< N_i
    double cpi_base = 1.0;          ///< CPI_base_i
};

/// Fully evaluated operating point of one thread.
struct thread_metrics {
    double vdd = 0.0;
    double tsr = 0.0;
    double clock_period_ps = 0.0;
    double error_probability = 0.0;
    double time_ps = 0.0; ///< N_i * t_clk * (p C + CPI)
    double energy = 0.0;  ///< alpha V^2 N (p C + CPI)
};

/// A complete evaluated solution for one barrier interval.
struct interval_solution {
    std::vector<thread_assignment> assignments;
    std::vector<thread_metrics> metrics;
    double exec_time_ps = 0.0;    ///< Eq. 4.2
    double total_energy = 0.0;    ///< sum of en_i
    double weighted_cost = 0.0;   ///< total_energy + theta * exec_time_ps

    /// Energy-delay product of the interval.
    [[nodiscard]] double edp() const noexcept { return total_energy * exec_time_ps; }
};

/// Everything an optimizer needs for one barrier interval.
struct solver_input {
    const config_space* space = nullptr;
    std::vector<thread_workload> workloads;          ///< size M
    std::vector<const error_curve*> error_models;    ///< size M
    energy::energy_params params{};
    double theta = 1.0; ///< weight of execution time vs energy (Eq. 4.4)

    /// M -- thread count.
    [[nodiscard]] std::size_t thread_count() const noexcept { return workloads.size(); }

    /// Throws std::invalid_argument when arrays are inconsistent.
    void validate() const;
};

/// Evaluates one thread at one assignment.
[[nodiscard]] thread_metrics evaluate_thread(const config_space& space,
                                             const thread_workload& workload,
                                             const error_curve& errors,
                                             const thread_assignment& assignment,
                                             const energy::energy_params& params);

/// Evaluates a full assignment vector (size M) under `input`.
[[nodiscard]] interval_solution evaluate_assignment(const solver_input& input,
                                                    std::span<const thread_assignment>
                                                        assignments);

/// The theta that weights energy and execution time equally at the nominal
/// operating point: theta_eq = nominal_energy / nominal_exec_time, so that
/// theta_eq * t_exec and the energy term have the same magnitude (used by
/// Fig. 6.18: "a fixed value of theta that weights energy and execution
/// time equally").
[[nodiscard]] double equal_weight_theta(const solver_input& input);

} // namespace synts::core
