#include "core/workload_predictor.h"

#include <cmath>
#include <stdexcept>

namespace synts::core {

workload_predictor::workload_predictor(std::size_t thread_count, double smoothing)
    : state_(thread_count), smoothing_(smoothing)
{
    if (thread_count == 0) {
        throw std::invalid_argument("workload_predictor: need at least one thread");
    }
    if (smoothing <= 0.0 || smoothing > 1.0) {
        throw std::invalid_argument("workload_predictor: smoothing must be in (0, 1]");
    }
}

void workload_predictor::observe(std::span<const thread_workload> actual)
{
    if (actual.size() != state_.size()) {
        throw std::invalid_argument("workload_predictor: thread count mismatch");
    }

    // Score the prediction we made for this interval, if any.
    if (!last_prediction_.empty()) {
        double total = 0.0;
        for (std::size_t i = 0; i < actual.size(); ++i) {
            const double truth = static_cast<double>(actual[i].instructions);
            const double predicted =
                static_cast<double>(last_prediction_[i].instructions);
            if (truth > 0.0) {
                total += std::abs(predicted - truth) / truth;
            }
        }
        last_error_ = total / static_cast<double>(actual.size());
    }

    for (std::size_t i = 0; i < actual.size(); ++i) {
        const auto n = static_cast<double>(actual[i].instructions);
        if (!has_history_) {
            state_[i].instructions = n;
            state_[i].cpi = actual[i].cpi_base;
        } else {
            state_[i].instructions =
                smoothing_ * n + (1.0 - smoothing_) * state_[i].instructions;
            state_[i].cpi =
                smoothing_ * actual[i].cpi_base + (1.0 - smoothing_) * state_[i].cpi;
        }
    }
    has_history_ = true;
}

std::vector<thread_workload>
workload_predictor::predict(std::span<const thread_workload> fallback)
{
    std::vector<thread_workload> prediction;
    prediction.reserve(state_.size());
    if (!has_history_) {
        prediction.assign(fallback.begin(), fallback.end());
    } else {
        for (const auto& s : state_) {
            prediction.push_back(thread_workload{
                static_cast<std::uint64_t>(std::llround(s.instructions)), s.cpi});
        }
    }
    last_prediction_ = prediction;
    return prediction;
}

} // namespace synts::core
