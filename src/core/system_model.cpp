#include "core/system_model.h"

#include <stdexcept>

namespace synts::core {

void solver_input::validate() const
{
    if (space == nullptr) {
        throw std::invalid_argument("solver_input: null config space");
    }
    if (workloads.empty() || workloads.size() != error_models.size()) {
        throw std::invalid_argument("solver_input: workloads/error_models mismatch");
    }
    for (const error_curve* curve : error_models) {
        if (curve == nullptr) {
            throw std::invalid_argument("solver_input: null error curve");
        }
    }
    if (theta < 0.0) {
        throw std::invalid_argument("solver_input: theta must be non-negative");
    }
}

thread_metrics evaluate_thread(const config_space& space, const thread_workload& workload,
                               const error_curve& errors,
                               const thread_assignment& assignment,
                               const energy::energy_params& params)
{
    thread_metrics m;
    m.vdd = space.voltage(assignment.voltage_index);
    m.tsr = space.tsr(assignment.tsr_index);
    m.clock_period_ps = space.clock_period_ps(assignment);
    m.error_probability = errors.error_probability(assignment.voltage_index, m.tsr);
    m.time_ps = energy::thread_execution_time(workload.instructions, m.clock_period_ps,
                                              m.error_probability, workload.cpi_base,
                                              params.error_penalty_cycles);
    m.energy = energy::thread_energy(params, m.vdd, workload.instructions,
                                     m.error_probability, workload.cpi_base) +
               energy::thread_leakage_energy(params, m.vdd, m.time_ps);
    return m;
}

interval_solution evaluate_assignment(const solver_input& input,
                                      std::span<const thread_assignment> assignments)
{
    input.validate();
    if (assignments.size() != input.thread_count()) {
        throw std::invalid_argument("evaluate_assignment: assignment count mismatch");
    }

    interval_solution solution;
    solution.assignments.assign(assignments.begin(), assignments.end());
    solution.metrics.reserve(assignments.size());

    for (std::size_t i = 0; i < assignments.size(); ++i) {
        const thread_metrics m =
            evaluate_thread(*input.space, input.workloads[i], *input.error_models[i],
                            assignments[i], input.params);
        solution.exec_time_ps = std::max(solution.exec_time_ps, m.time_ps);
        solution.total_energy += m.energy;
        solution.metrics.push_back(m);
    }
    solution.weighted_cost = solution.total_energy + input.theta * solution.exec_time_ps;
    return solution;
}

double equal_weight_theta(const solver_input& input)
{
    input.validate();
    const thread_assignment nominal = input.space->nominal_assignment();
    std::vector<thread_assignment> assignments(input.thread_count(), nominal);
    const interval_solution at_nominal = evaluate_assignment(input, assignments);
    if (at_nominal.exec_time_ps <= 0.0) {
        throw std::invalid_argument("equal_weight_theta: degenerate nominal time");
    }
    return at_nominal.total_energy / at_nominal.exec_time_ps;
}

} // namespace synts::core
