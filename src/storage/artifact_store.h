// artifact_store.h -- the on-disk third cache tier.
//
// A content-addressed blob store for serialized artifacts, shared by every
// process pointed at the same root directory. Layout:
//
//   root/v<format_version>/<bucket>/<hh>/<16-hex-digest>.bin
//
// where <bucket> groups payload kinds ("program" for program_artifacts,
// "cell" for finished sweep cells), <hh> is the digest's top byte in hex
// (256-way directory sharding, so huge stores never degenerate into one
// flat directory), and the file is a self-verifying storage::serialize
// frame. The format version is part of the PATH: bumping it makes every
// old file invisible instead of rejected one by one.
//
// Concurrency contract: writers stage into a per-store tmp/ directory and
// publish with an atomic rename, so a reader (same process or another
// runner sharing the directory) either sees a complete frame or no file --
// never a torn one. Duplicate concurrent writers of one key are benign:
// both frames are identical by construction (deterministic pipeline), and
// rename-over-existing simply replaces like with like. The store itself is
// dumb on purpose -- it moves bytes and never decodes them; typed
// validation (checksum, provenance digests) lives with the callers, which
// treat every failure as a miss and rebuild.
//
// All filesystem errors are absorbed into "miss" (load) or "false" (store):
// a read-only or vanished directory degrades the disk tier to a no-op
// rather than failing the sweep.

#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace synts::obs {
class counter;
class latency_histogram;
} // namespace synts::obs

namespace synts::storage {

/// Bucket names used by the runtime (kept here so every writer/reader pair
/// agrees; the store accepts any bucket token).
inline constexpr std::string_view program_bucket = "program";
inline constexpr std::string_view cell_bucket = "cell";
/// Shard-layout and per-shard completion manifests of sharded sweeps
/// (runtime::shard_manifest frames).
inline constexpr std::string_view manifest_bucket = "manifest";

class artifact_store {
public:
    /// Opens (and creates, if needed) the store rooted at `root`. Throws
    /// std::runtime_error when the versioned root cannot be created at all
    /// -- a store that can never work is a configuration error, unlike the
    /// transient I/O failures absorbed by load/store.
    explicit artifact_store(std::filesystem::path root);

    artifact_store(const artifact_store&) = delete;
    artifact_store& operator=(const artifact_store&) = delete;

    /// The directory given at construction (not the versioned subdir).
    [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

    /// Full path of (bucket, digest) -- exposed for tests and diagnostics.
    [[nodiscard]] std::filesystem::path entry_path(std::string_view bucket,
                                                   std::uint64_t digest) const;

    /// The raw frame of (bucket, digest), or nullopt when absent or
    /// unreadable. Returned bytes are NOT validated -- decode them.
    [[nodiscard]] std::optional<std::string> load(std::string_view bucket,
                                                  std::uint64_t digest) const;

    /// True when an entry file exists (says nothing about validity).
    [[nodiscard]] bool contains(std::string_view bucket, std::uint64_t digest) const;

    /// Nanoseconds since (bucket, digest)'s file was last written, or
    /// nullopt when absent/unreadable. Publishes are atomic renames, so
    /// the mtime is the instant the current frame became visible -- this
    /// is what --watch ages shard_progress frames by to call a shard
    /// STALLED without touching its process. Clamped to 0 for files whose
    /// mtime sits ahead of now (clock skew on shared filesystems).
    [[nodiscard]] std::optional<std::uint64_t>
    entry_age_ns(std::string_view bucket, std::uint64_t digest) const;

    /// Atomically publishes `frame` as (bucket, digest): temp file in the
    /// store's tmp/ dir, then rename over the final path. Returns false
    /// (leaving no partial file behind) on any I/O failure.
    bool store(std::string_view bucket, std::uint64_t digest,
               std::string_view frame) const;

    /// Removes the entry if present (used to invalidate a checkpoint).
    void erase(std::string_view bucket, std::uint64_t digest) const;

    /// Digests of every entry currently published in `bucket`, sorted
    /// ascending (deterministic output for the --status fleet view).
    /// Non-entry files are skipped; I/O errors yield an empty/partial list
    /// -- like every other read path, degraded, never throwing.
    [[nodiscard]] std::vector<std::uint64_t> list(std::string_view bucket) const;

    /// Lifetime I/O counters (loads that returned bytes / came up empty,
    /// successful stores, absorbed store failures).
    [[nodiscard]] std::uint64_t load_hit_count() const noexcept
    {
        return load_hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t load_miss_count() const noexcept
    {
        return load_misses_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t store_count() const noexcept
    {
        return stores_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t store_failure_count() const noexcept
    {
        return store_failures_.load(std::memory_order_relaxed);
    }

private:
    std::filesystem::path root_;
    std::filesystem::path versioned_root_;
    std::filesystem::path tmp_dir_;
    mutable std::atomic<std::uint64_t> load_hits_{0};
    mutable std::atomic<std::uint64_t> load_misses_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
    mutable std::atomic<std::uint64_t> store_failures_{0};

    // Registry instruments (store.* taxonomy), resolved once at
    // construction; counters aggregate every store instance in the
    // process, the latency histograms are gated on obs::enabled().
    obs::counter* obs_load_hits_;
    obs::counter* obs_load_misses_;
    obs::counter* obs_stores_;
    obs::counter* obs_store_failures_;
    obs::counter* obs_bytes_read_;
    obs::counter* obs_bytes_written_;
    obs::latency_histogram* obs_load_ns_;
    obs::latency_histogram* obs_store_ns_;
};

} // namespace synts::storage
