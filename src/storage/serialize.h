// serialize.h -- versioned binary serialization for persistent artifacts.
//
// The artifact store persists the expensive products of the
// characterization pipeline -- core::program_artifacts (generated trace +
// architectural profiles) and finished runtime::sweep_cells -- across
// process lifetimes. Everything here is explicit about bytes, because the
// files outlive any one build of the code:
//
//   * all integers are written little-endian, regardless of host order;
//     doubles go through their IEEE-754 bit pattern (bit-exactness is the
//     whole point: a warm run must reproduce a cold run bit for bit);
//   * every frame starts with an 8-byte magic, the format version and a
//     payload kind, and ends with a trailing FNV-1a checksum over
//     everything before it -- so truncation, bit flips, version skew and
//     mislabeled payloads are all detected at decode time;
//   * decoders never trust a length field: each read is bounds-checked
//     against the remaining bytes and enum values are range-checked, so a
//     corrupt file raises serialize_error instead of undefined behavior.
//
// format_version MUST be bumped for any change to a serialized struct's
// fields or their order, AND for any result-affecting change to the
// pipeline that produces them (trace generation, the architectural
// profiler, policy evaluation): stored frames are adopted verbatim, so a
// behavioral change behind an unchanged layout would otherwise let a warm
// store keep serving pre-change results. The store keys its directory
// layout on the version, so a bump makes every old file invisible rather
// than misread. (CI additionally keys its persistent store on a hash of
// src/, catching a forgotten bump before it can taint a green build.)
// tests/test_storage_serialize.cpp perturbs every serialized field (encoded
// bytes must change) and pins the current frame bytes of a golden artifact,
// so silent drift fails the suite.
//
// Version history:
//   v1  workload identity = benchmark_id ordinal (u8) -- the closed ten.
//   v2  workload identity = workload_key (u64 registry digest + name), so
//       frames can carry any registered workload, including parametric
//       scenario instances. Encoders always write the current version;
//       decoders still accept v1 FRAMES (the ordinal maps onto the
//       built-in key). Note the scope: this is frame-level compatibility
//       for anything holding v1 bytes (exports, fixtures, external
//       tooling). The artifact_store itself does NOT serve v1 entries --
//       its paths embed the version, and the registry rekeyed the cache
//       digests anyway, so a v2 store deliberately starts cold rather
//       than probe old directories.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/program_artifacts.h"
#include "runtime/sweep.h"

namespace synts::storage {

/// Bumped on ANY change to the framing or a serialized struct layout.
inline constexpr std::uint32_t format_version = 2;

/// Oldest frame version decoders still accept (see version history above).
inline constexpr std::uint32_t min_format_version = 1;

/// First 8 bytes of every frame.
inline constexpr std::string_view frame_magic = "SYNTSTOR";

/// Raised by decoders on truncation, checksum/magic/version/kind mismatch,
/// out-of-range enum values, or trailing bytes. Callers treat it as "this
/// file is not a usable artifact" (a cache miss), never as fatal.
class serialize_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// What a frame contains (encoded in the header, checked on decode).
/// Adding a kind does not change any existing frame's bytes, so it needs
/// no format_version bump -- old frames stay valid, and an old binary
/// rejects the new kind as a payload-kind mismatch.
enum class payload_kind : std::uint32_t {
    program_artifacts = 1,
    sweep_cell = 2,
    shard_manifest = 3,
    shard_progress = 4,
};

/// Appends explicitly little-endian primitives to a byte buffer.
class binary_writer {
public:
    void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// std::size_t is serialized as u64 so 32- and 64-bit hosts agree.
    void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
    /// IEEE-754 bit pattern (bit-exact round trip, including -0.0 / NaN).
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    /// Length-prefixed byte string (u64 length + raw bytes).
    void str(std::string_view s);

    [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
    [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }

private:
    std::string buffer_;
};

/// Bounds-checked little-endian reads over a byte view. Throws
/// serialize_error on underflow; never reads past the view.
class binary_reader {
public:
    explicit binary_reader(std::string_view data) noexcept : data_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    /// u64 narrowed to size_t; throws serialize_error if it does not fit.
    [[nodiscard]] std::size_t size();
    [[nodiscard]] double f64();
    [[nodiscard]] bool boolean();
    /// Length-prefixed byte string; the length is bounds-checked against
    /// the remaining bytes, so a hostile length cannot force an allocation
    /// larger than the frame itself.
    [[nodiscard]] std::string str();

    [[nodiscard]] std::size_t remaining() const noexcept
    {
        // Invariant: every advance bounds-checks, so offset_ <= size().
        return data_.size() - offset_; // synts-lint: allow(unchecked-size)
    }
    [[nodiscard]] bool at_end() const noexcept { return offset_ == data_.size(); }

private:
    std::string_view data_;
    std::size_t offset_ = 0;
};

// -- struct codecs (payload only, no framing) -------------------------------
// write/read pairs must mirror each other exactly; the drift tests guard
// every field. Readers range-check enums and validate invariants cheap
// enough to check inline (deep structural validation is the caller's call).

void write(binary_writer& out, const workload::workload_key& key);
/// `version` selects the layout: v1 frames stored a benchmark_id ordinal
/// (mapped onto the built-in key), v2+ the full key.
[[nodiscard]] workload::workload_key read_workload_key(binary_reader& in,
                                                       std::uint32_t version);

void write(binary_writer& out, const arch::micro_op& op);
[[nodiscard]] arch::micro_op read_micro_op(binary_reader& in);

void write(binary_writer& out, const arch::thread_trace& trace);
[[nodiscard]] arch::thread_trace read_thread_trace(binary_reader& in);

void write(binary_writer& out, const arch::program_trace& trace);
[[nodiscard]] arch::program_trace read_program_trace(binary_reader& in);

void write(binary_writer& out, const arch::interval_profile& profile);
[[nodiscard]] arch::interval_profile read_interval_profile(binary_reader& in);

void write(binary_writer& out, const core::program_artifacts& artifacts);
[[nodiscard]] core::program_artifacts
read_program_artifacts(binary_reader& in, std::uint32_t version = format_version);

void write(binary_writer& out, const core::pareto_point& point);
[[nodiscard]] core::pareto_point read_pareto_point(binary_reader& in);

void write(binary_writer& out, const core::interval_outcome& outcome);
[[nodiscard]] core::interval_outcome read_interval_outcome(binary_reader& in);

void write(binary_writer& out, const core::benchmark_experiment::policy_run& run);
[[nodiscard]] core::benchmark_experiment::policy_run
read_policy_run(binary_reader& in);

void write(binary_writer& out, const runtime::sweep_cell& cell);
[[nodiscard]] runtime::sweep_cell read_sweep_cell(binary_reader& in,
                                                  std::uint32_t version = format_version);

void write(binary_writer& out, const runtime::shard_manifest& manifest);
[[nodiscard]] runtime::shard_manifest read_shard_manifest(binary_reader& in);

void write(binary_writer& out, const runtime::shard_progress& progress);
[[nodiscard]] runtime::shard_progress read_shard_progress(binary_reader& in);

// -- framed envelopes -------------------------------------------------------
// encode_* produce a complete self-verifying frame (always the current
// format_version):
//   magic(8) | format_version(u32) | payload_kind(u32) | payload |
//   checksum(u64, FNV-1a over everything before it)
// decode_* verify magic, version (any in [min_format_version,
// format_version]), kind and checksum, parse the payload under the frame's
// own version, and require the frame to end exactly at the checksum (no
// trailing bytes).

[[nodiscard]] std::string encode(const core::program_artifacts& artifacts);
[[nodiscard]] core::program_artifacts decode_program_artifacts(std::string_view frame);

[[nodiscard]] std::string encode(const runtime::sweep_cell& cell);
[[nodiscard]] runtime::sweep_cell decode_sweep_cell(std::string_view frame);

[[nodiscard]] std::string encode(const runtime::shard_manifest& manifest);
[[nodiscard]] runtime::shard_manifest decode_shard_manifest(std::string_view frame);

[[nodiscard]] std::string encode(const runtime::shard_progress& progress);
[[nodiscard]] runtime::shard_progress decode_shard_progress(std::string_view frame);

} // namespace synts::storage
