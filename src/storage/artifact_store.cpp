#include "storage/artifact_store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <unistd.h>

#include "obs/metrics.h"
#include "storage/serialize.h"

namespace synts::storage {

namespace fs = std::filesystem;

namespace {

/// 16 lowercase hex digits, fixed width (file names sort and shard stably).
std::string hex16(std::uint64_t v)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/// Reaps staging files orphaned by killed writers. A tmp name embeds its
/// writer's pid (<hex16>.<pid>.<n>.tmp); files whose pid is no longer
/// alive on this machine, or that cannot be parsed, are dead weight --
/// multi-megabyte artifact frames a kill -9 mid-publish left behind, which
/// nothing else ever deletes. Files of live pids are kept. (A writer on
/// ANOTHER machine sharing the store could lose its staging file to a
/// pid-number coincidence in the other direction only -- we KEEP anything
/// that looks alive -- and losing a tmp file merely fails that writer's
/// rename, which is absorbed as a store failure; published entries are
/// never touched.)
void reap_stale_tmp_files(const fs::path& tmp_dir)
{
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(tmp_dir, ec)) {
        if (!entry.is_regular_file(ec)) {
            continue;
        }
        const std::string name = entry.path().filename().string();
        // <hex16> '.' <pid> '.' <counter> ".tmp"
        bool alive = false;
        const std::size_t pid_begin = name.find('.');
        if (pid_begin != std::string::npos) {
            const std::size_t pid_end = name.find('.', pid_begin + 1);
            if (pid_end != std::string::npos) {
                try {
                    const int pid =
                        std::stoi(name.substr(pid_begin + 1, pid_end - pid_begin - 1));
                    alive = pid > 0 && (::kill(pid, 0) == 0 || errno != ESRCH);
                } catch (const std::exception&) {
                    alive = false; // unparseable == not one of ours, reap
                }
            }
        }
        if (!alive) {
            fs::remove(entry.path(), ec);
        }
    }
}

} // namespace

artifact_store::artifact_store(fs::path root)
    : root_(std::move(root)),
      obs_load_hits_(&obs::metrics_registry::global().counter_at("store.load_hits")),
      obs_load_misses_(&obs::metrics_registry::global().counter_at("store.load_misses")),
      obs_stores_(&obs::metrics_registry::global().counter_at("store.stores")),
      obs_store_failures_(
          &obs::metrics_registry::global().counter_at("store.store_failures")),
      obs_bytes_read_(&obs::metrics_registry::global().counter_at("store.bytes_read")),
      obs_bytes_written_(
          &obs::metrics_registry::global().counter_at("store.bytes_written")),
      obs_load_ns_(&obs::metrics_registry::global().histogram_at("store.load_ns")),
      obs_store_ns_(&obs::metrics_registry::global().histogram_at("store.store_ns"))
{
    std::string version_dir = "v";
    version_dir += std::to_string(format_version);
    versioned_root_ = root_ / version_dir;
    tmp_dir_ = versioned_root_ / "tmp";
    std::error_code ec;
    fs::create_directories(tmp_dir_, ec);
    if (ec || !fs::is_directory(tmp_dir_)) {
        throw std::runtime_error("artifact_store: cannot create store at " +
                                 root_.string() + ": " + ec.message());
    }
    reap_stale_tmp_files(tmp_dir_);
}

fs::path artifact_store::entry_path(std::string_view bucket, std::uint64_t digest) const
{
    const std::string name = hex16(digest);
    return versioned_root_ / std::string(bucket) / name.substr(0, 2) /
           (name + ".bin");
}

std::optional<std::string> artifact_store::load(std::string_view bucket,
                                                std::uint64_t digest) const
{
    // One sized block read: frames are multi-megabyte and this is the
    // warm-hit path the store exists to make fast. A frame swapped by a
    // concurrent publish between the stat and the read just comes up short
    // or long -- the decoder's checksum treats either as a miss.
    const obs::scoped_timer timer(*obs_load_ns_);
    const fs::path path = entry_path(bucket, digest);
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    std::ifstream in(path, std::ios::binary);
    if (ec || !in) {
        load_misses_.fetch_add(1, std::memory_order_relaxed);
        obs_load_misses_->add(1);
        return std::nullopt;
    }
    std::string frame(static_cast<std::size_t>(size), '\0');
    in.read(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (in.gcount() != static_cast<std::streamsize>(frame.size()) || in.bad()) {
        load_misses_.fetch_add(1, std::memory_order_relaxed);
        obs_load_misses_->add(1);
        return std::nullopt;
    }
    load_hits_.fetch_add(1, std::memory_order_relaxed);
    obs_load_hits_->add(1);
    obs_bytes_read_->add(frame.size());
    return frame;
}

bool artifact_store::contains(std::string_view bucket, std::uint64_t digest) const
{
    std::error_code ec;
    return fs::is_regular_file(entry_path(bucket, digest), ec);
}

std::optional<std::uint64_t> artifact_store::entry_age_ns(std::string_view bucket,
                                                          std::uint64_t digest) const
{
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(entry_path(bucket, digest), ec);
    if (ec) {
        return std::nullopt;
    }
    const auto age = fs::file_time_type::clock::now() - mtime;
    if (age.count() < 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(age).count());
}

bool artifact_store::store(std::string_view bucket, std::uint64_t digest,
                           std::string_view frame) const
{
    const obs::scoped_timer timer(*obs_store_ns_);
    const fs::path target = entry_path(bucket, digest);
    // Temp name unique per (process, call): the counter is process-wide,
    // not per-instance, so even two store instances opened on one root in
    // one process (two caches sharing a directory) never collide on the
    // staging file. Cross-process uniqueness comes from the pid.
    static std::atomic<std::uint64_t> tmp_counter{0};
    const fs::path tmp =
        tmp_dir_ / (hex16(digest) + "." + std::to_string(::getpid()) + "." +
                    std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed)) +
                    ".tmp");
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
        store_failures_.fetch_add(1, std::memory_order_relaxed);
        obs_store_failures_->add(1);
        return false;
    }
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.write(frame.data(), static_cast<std::streamsize>(frame.size())) ||
            !out.flush()) {
            out.close();
            fs::remove(tmp, ec);
            store_failures_.fetch_add(1, std::memory_order_relaxed);
            obs_store_failures_->add(1);
            return false;
        }
    }
    // POSIX rename: atomic publish; replaces an existing entry whole.
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        store_failures_.fetch_add(1, std::memory_order_relaxed);
        obs_store_failures_->add(1);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    obs_stores_->add(1);
    obs_bytes_written_->add(frame.size());
    return true;
}

void artifact_store::erase(std::string_view bucket, std::uint64_t digest) const
{
    std::error_code ec;
    fs::remove(entry_path(bucket, digest), ec);
}

std::vector<std::uint64_t> artifact_store::list(std::string_view bucket) const
{
    std::vector<std::uint64_t> digests;
    std::error_code ec;
    const fs::path bucket_dir = versioned_root_ / std::string(bucket);
    for (const auto& shard_dir : fs::directory_iterator(bucket_dir, ec)) {
        if (!shard_dir.is_directory(ec)) {
            continue;
        }
        std::error_code inner_ec;
        for (const auto& entry : fs::directory_iterator(shard_dir.path(), inner_ec)) {
            if (!entry.is_regular_file(inner_ec)) {
                continue;
            }
            // Entry names are exactly <16 lowercase hex>.bin; anything else
            // (editor droppings, foreign files) is not an entry.
            const std::string name = entry.path().filename().string();
            if (name.size() != 20 || name.substr(16) != ".bin") {
                continue;
            }
            std::uint64_t digest = 0;
            bool valid = true;
            for (std::size_t i = 0; i < 16; ++i) {
                const char c = name[i];
                std::uint64_t nibble = 0;
                if (c >= '0' && c <= '9') {
                    nibble = static_cast<std::uint64_t>(c - '0');
                } else if (c >= 'a' && c <= 'f') {
                    nibble = static_cast<std::uint64_t>(c - 'a') + 10;
                } else {
                    valid = false;
                    break;
                }
                digest = (digest << 4) | nibble;
            }
            if (valid) {
                digests.push_back(digest);
            }
        }
    }
    std::sort(digests.begin(), digests.end());
    return digests;
}

} // namespace synts::storage
