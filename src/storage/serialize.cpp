#include "storage/serialize.h"

#include <bit>
#include <limits>
#include <utility>

#include "util/hashing.h"

namespace synts::storage {

namespace {

/// FNV-1a over a byte range -- the trailing frame checksum. Uses the same
/// primitive as util::digest_builder so the constant lives in one place.
std::uint64_t checksum_bytes(std::string_view bytes)
{
    util::digest_builder h;
    for (const char c : bytes) {
        h.byte(static_cast<std::uint8_t>(c));
    }
    return h.digest();
}

[[noreturn]] void fail(const char* what)
{
    throw serialize_error(std::string("storage frame: ") + what);
}

/// Range-checks a stored enum ordinal before casting.
template <typename Enum>
Enum checked_enum(std::uint64_t raw, std::uint64_t count, const char* what)
{
    if (raw >= count) {
        fail(what);
    }
    return static_cast<Enum>(raw);
}

} // namespace

// -- primitives -------------------------------------------------------------

void binary_writer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void binary_writer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void binary_writer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void binary_writer::str(std::string_view s)
{
    size(s.size());
    buffer_.append(s);
}

std::uint8_t binary_reader::u8()
{
    if (offset_ >= data_.size()) {
        fail("truncated (u8 past end)");
    }
    return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t binary_reader::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
}

std::uint64_t binary_reader::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
}

std::size_t binary_reader::size()
{
    const std::uint64_t v = u64();
    if (v > std::numeric_limits<std::size_t>::max()) {
        fail("size field exceeds host size_t");
    }
    return static_cast<std::size_t>(v);
}

double binary_reader::f64()
{
    return std::bit_cast<double>(u64());
}

bool binary_reader::boolean()
{
    const std::uint8_t v = u8();
    if (v > 1) {
        fail("boolean field is neither 0 nor 1");
    }
    return v == 1;
}

std::string binary_reader::str()
{
    const std::size_t length = size();
    if (length > remaining()) {
        fail("string length exceeds frame size");
    }
    std::string s(data_.substr(offset_, length));
    offset_ += length;
    return s;
}

// -- workload identity ------------------------------------------------------

void write(binary_writer& out, const workload::workload_key& key)
{
    out.u64(key.id);
    out.str(key.name);
}

workload::workload_key read_workload_key(binary_reader& in, std::uint32_t version)
{
    if (version < 2) {
        // v1 frames predate the registry: the identity is a benchmark_id
        // ordinal, which maps 1:1 onto the built-in key.
        return workload::builtin_key(checked_enum<workload::benchmark_id>(
            in.u8(), workload::benchmark_count, "benchmark_id out of range"));
    }
    workload::workload_key key;
    key.id = in.u64();
    key.name = in.str();
    if (key.name.empty()) {
        fail("empty workload name");
    }
    return key;
}

// -- arch types -------------------------------------------------------------

void write(binary_writer& out, const arch::micro_op& op)
{
    out.u8(static_cast<std::uint8_t>(op.cls));
    out.u32(op.encoding);
    out.u64(op.operand_a);
    out.u64(op.operand_b);
    out.u64(op.address);
    out.boolean(op.branch_taken);
}

arch::micro_op read_micro_op(binary_reader& in)
{
    arch::micro_op op;
    op.cls = checked_enum<arch::op_class>(in.u8(), arch::op_class_count,
                                          "op_class out of range");
    op.encoding = in.u32();
    op.operand_a = in.u64();
    op.operand_b = in.u64();
    op.address = in.u64();
    op.branch_taken = in.boolean();
    return op;
}

void write(binary_writer& out, const arch::thread_trace& trace)
{
    out.size(trace.ops.size());
    for (const arch::micro_op& op : trace.ops) {
        write(out, op);
    }
    out.size(trace.barrier_points.size());
    for (const std::size_t point : trace.barrier_points) {
        out.size(point);
    }
}

arch::thread_trace read_thread_trace(binary_reader& in)
{
    arch::thread_trace trace;
    const std::size_t op_count = in.size();
    // A micro_op occupies >= 30 payload bytes, so `remaining` bounds the
    // plausible count: a corrupt length cannot force a huge allocation.
    if (op_count > in.remaining()) {
        throw serialize_error("storage frame: op count exceeds frame size");
    }
    trace.ops.reserve(op_count);
    for (std::size_t i = 0; i < op_count; ++i) {
        trace.ops.push_back(read_micro_op(in));
    }
    const std::size_t barrier_count = in.size();
    if (barrier_count > in.remaining()) {
        throw serialize_error("storage frame: barrier count exceeds frame size");
    }
    trace.barrier_points.reserve(barrier_count);
    for (std::size_t i = 0; i < barrier_count; ++i) {
        trace.barrier_points.push_back(in.size());
    }
    return trace;
}

void write(binary_writer& out, const arch::program_trace& trace)
{
    out.size(trace.threads.size());
    for (const arch::thread_trace& thread : trace.threads) {
        write(out, thread);
    }
}

arch::program_trace read_program_trace(binary_reader& in)
{
    arch::program_trace trace;
    const std::size_t thread_count = in.size();
    if (thread_count > in.remaining()) {
        throw serialize_error("storage frame: thread count exceeds frame size");
    }
    trace.threads.reserve(thread_count);
    for (std::size_t i = 0; i < thread_count; ++i) {
        trace.threads.push_back(read_thread_trace(in));
    }
    return trace;
}

void write(binary_writer& out, const arch::interval_profile& profile)
{
    out.u64(profile.instruction_count);
    out.u64(profile.base_cycles);
    out.f64(profile.cpi_base);
    out.f64(profile.dcache_miss_rate);
    out.f64(profile.branch_misprediction_rate);
}

arch::interval_profile read_interval_profile(binary_reader& in)
{
    arch::interval_profile profile;
    profile.instruction_count = in.u64();
    profile.base_cycles = in.u64();
    profile.cpi_base = in.f64();
    profile.dcache_miss_rate = in.f64();
    profile.branch_misprediction_rate = in.f64();
    return profile;
}

// -- core types -------------------------------------------------------------

void write(binary_writer& out, const core::program_artifacts& artifacts)
{
    write(out, artifacts.workload);
    out.size(artifacts.thread_count);
    out.u64(artifacts.seed);
    out.u64(artifacts.workload_digest);
    write(out, artifacts.trace);
    out.size(artifacts.arch_profiles.size());
    for (const arch::thread_profile& thread : artifacts.arch_profiles) {
        out.size(thread.size());
        for (const arch::interval_profile& interval : thread) {
            write(out, interval);
        }
    }
}

core::program_artifacts read_program_artifacts(binary_reader& in, std::uint32_t version)
{
    core::program_artifacts artifacts;
    artifacts.workload = read_workload_key(in, version);
    artifacts.thread_count = in.size();
    artifacts.seed = in.u64();
    artifacts.workload_digest = in.u64();
    artifacts.trace = read_program_trace(in);
    const std::size_t profile_threads = in.size();
    if (profile_threads > in.remaining()) {
        throw serialize_error("storage frame: profile count exceeds frame size");
    }
    artifacts.arch_profiles.reserve(profile_threads);
    for (std::size_t t = 0; t < profile_threads; ++t) {
        const std::size_t interval_count = in.size();
        if (interval_count > in.remaining()) {
            throw serialize_error("storage frame: interval count exceeds frame size");
        }
        arch::thread_profile thread;
        thread.reserve(interval_count);
        for (std::size_t k = 0; k < interval_count; ++k) {
            thread.push_back(read_interval_profile(in));
        }
        artifacts.arch_profiles.push_back(std::move(thread));
    }
    return artifacts;
}

void write(binary_writer& out, const core::pareto_point& point)
{
    out.f64(point.theta);
    out.f64(point.energy);
    out.f64(point.time);
}

core::pareto_point read_pareto_point(binary_reader& in)
{
    core::pareto_point point;
    point.theta = in.f64();
    point.energy = in.f64();
    point.time = in.f64();
    return point;
}

void write(binary_writer& out, const core::interval_outcome& outcome)
{
    const core::interval_solution& solution = outcome.solution;
    out.size(solution.assignments.size());
    for (const core::thread_assignment& a : solution.assignments) {
        out.size(a.voltage_index);
        out.size(a.tsr_index);
    }
    out.size(solution.metrics.size());
    for (const core::thread_metrics& m : solution.metrics) {
        out.f64(m.vdd);
        out.f64(m.tsr);
        out.f64(m.clock_period_ps);
        out.f64(m.error_probability);
        out.f64(m.time_ps);
        out.f64(m.energy);
    }
    out.f64(solution.exec_time_ps);
    out.f64(solution.total_energy);
    out.f64(solution.weighted_cost);
    out.f64(outcome.sampling_energy);
    out.f64(outcome.sampling_time_ps);
    out.f64(outcome.energy);
    out.f64(outcome.time_ps);
}

core::interval_outcome read_interval_outcome(binary_reader& in)
{
    core::interval_outcome outcome;
    const std::size_t assignment_count = in.size();
    if (assignment_count > in.remaining()) {
        throw serialize_error("storage frame: assignment count exceeds frame size");
    }
    outcome.solution.assignments.reserve(assignment_count);
    for (std::size_t i = 0; i < assignment_count; ++i) {
        core::thread_assignment a;
        a.voltage_index = in.size();
        a.tsr_index = in.size();
        outcome.solution.assignments.push_back(a);
    }
    const std::size_t metric_count = in.size();
    if (metric_count > in.remaining()) {
        throw serialize_error("storage frame: metric count exceeds frame size");
    }
    outcome.solution.metrics.reserve(metric_count);
    for (std::size_t i = 0; i < metric_count; ++i) {
        core::thread_metrics m;
        m.vdd = in.f64();
        m.tsr = in.f64();
        m.clock_period_ps = in.f64();
        m.error_probability = in.f64();
        m.time_ps = in.f64();
        m.energy = in.f64();
        outcome.solution.metrics.push_back(m);
    }
    outcome.solution.exec_time_ps = in.f64();
    outcome.solution.total_energy = in.f64();
    outcome.solution.weighted_cost = in.f64();
    outcome.sampling_energy = in.f64();
    outcome.sampling_time_ps = in.f64();
    outcome.energy = in.f64();
    outcome.time_ps = in.f64();
    return outcome;
}

void write(binary_writer& out, const core::benchmark_experiment::policy_run& run)
{
    out.u8(static_cast<std::uint8_t>(run.kind));
    out.size(run.intervals.size());
    for (const core::interval_outcome& outcome : run.intervals) {
        write(out, outcome);
    }
    out.f64(run.sum.energy);
    out.f64(run.sum.time_ps);
}

core::benchmark_experiment::policy_run read_policy_run(binary_reader& in)
{
    core::benchmark_experiment::policy_run run;
    run.kind = checked_enum<core::policy_kind>(in.u8(), core::policy_count,
                                               "policy_kind out of range");
    const std::size_t interval_count = in.size();
    if (interval_count > in.remaining()) {
        throw serialize_error("storage frame: interval count exceeds frame size");
    }
    run.intervals.reserve(interval_count);
    for (std::size_t i = 0; i < interval_count; ++i) {
        run.intervals.push_back(read_interval_outcome(in));
    }
    run.sum.energy = in.f64();
    run.sum.time_ps = in.f64();
    return run;
}

// -- runtime types ----------------------------------------------------------

void write(binary_writer& out, const runtime::sweep_cell& cell)
{
    write(out, cell.workload);
    out.u8(static_cast<std::uint8_t>(cell.stage));
    out.u8(static_cast<std::uint8_t>(cell.policy));
    out.f64(cell.theta_eq);
    out.u64(cell.task_seed);
    write(out, cell.equal_weight);
    out.size(cell.pareto.size());
    for (const core::pareto_point& point : cell.pareto) {
        write(out, point);
    }
}

runtime::sweep_cell read_sweep_cell(binary_reader& in, std::uint32_t version)
{
    runtime::sweep_cell cell;
    cell.workload = read_workload_key(in, version);
    cell.stage = checked_enum<circuit::pipe_stage>(in.u8(), circuit::pipe_stage_count,
                                                   "pipe_stage out of range");
    cell.policy = checked_enum<core::policy_kind>(in.u8(), core::policy_count,
                                                  "policy_kind out of range");
    cell.theta_eq = in.f64();
    cell.task_seed = in.u64();
    cell.equal_weight = read_policy_run(in);
    const std::size_t pareto_count = in.size();
    if (pareto_count > in.remaining()) {
        throw serialize_error("storage frame: pareto count exceeds frame size");
    }
    cell.pareto.reserve(pareto_count);
    for (std::size_t i = 0; i < pareto_count; ++i) {
        cell.pareto.push_back(read_pareto_point(in));
    }
    return cell;
}

void write(binary_writer& out, const runtime::shard_manifest& manifest)
{
    out.u64(manifest.spec_digest);
    out.u32(manifest.shard_count);
    out.u32(manifest.shard_index);
    out.u64(manifest.cell_count);
}

runtime::shard_manifest read_shard_manifest(binary_reader& in)
{
    runtime::shard_manifest manifest;
    manifest.spec_digest = in.u64();
    manifest.shard_count = in.u32();
    manifest.shard_index = in.u32();
    manifest.cell_count = in.u64();
    if (manifest.shard_count == 0) {
        throw serialize_error("shard manifest: shard count must be >= 1");
    }
    // shard_index == shard_count is the layout-frame sentinel; anything
    // beyond is malformed.
    if (manifest.shard_index > manifest.shard_count) {
        throw serialize_error("shard manifest: shard index out of range");
    }
    return manifest;
}

void write(binary_writer& out, const runtime::shard_progress& progress)
{
    out.u64(progress.spec_digest);
    out.u32(progress.shard_count);
    out.u32(progress.shard_index);
    out.u64(progress.cells_owned);
    out.u64(progress.cells_done);
}

runtime::shard_progress read_shard_progress(binary_reader& in)
{
    runtime::shard_progress progress;
    progress.spec_digest = in.u64();
    progress.shard_count = in.u32();
    progress.shard_index = in.u32();
    progress.cells_owned = in.u64();
    progress.cells_done = in.u64();
    if (progress.shard_count == 0) {
        throw serialize_error("shard progress: shard count must be >= 1");
    }
    // Unlike the manifest, a progress frame is always a REAL shard's --
    // there is no layout sentinel, so index must be strictly in range.
    if (progress.shard_index >= progress.shard_count) {
        throw serialize_error("shard progress: shard index out of range");
    }
    if (progress.cells_done > progress.cells_owned) {
        throw serialize_error("shard progress: done exceeds owned");
    }
    return progress;
}

// -- framing ----------------------------------------------------------------

namespace {

template <typename Payload>
std::string encode_frame(payload_kind kind, const Payload& payload)
{
    binary_writer out;
    for (const char c : frame_magic) {
        out.u8(static_cast<std::uint8_t>(c));
    }
    out.u32(format_version);
    out.u32(static_cast<std::uint32_t>(kind));
    write(out, payload);
    std::string frame = out.take();
    binary_writer trailer;
    trailer.u64(checksum_bytes(frame));
    frame += trailer.bytes();
    return frame;
}

/// Verifies framing and returns a reader positioned at the payload, plus
/// the frame's own format version (decoders accept every version in
/// [min_format_version, format_version] and parse the payload under the
/// frame's version). The checksum is verified FIRST: a frame that fails it
/// is corrupt, and no other field of it can be trusted (including the
/// version word).
struct opened_frame {
    binary_reader in;
    std::uint32_t version;
};

opened_frame open_frame(std::string_view frame, payload_kind expected)
{
    constexpr std::size_t header_size = 8 + 4 + 4;
    constexpr std::size_t checksum_size = 8;
    if (frame.size() < header_size + checksum_size) {
        fail("shorter than header + checksum");
    }
    // Guarded: the header+checksum length check above rejects short frames.
    const std::size_t body_size = frame.size() - checksum_size; // synts-lint: allow(unchecked-size)
    const std::string_view body = frame.substr(0, body_size);
    binary_reader trailer(frame.substr(body_size));
    if (trailer.u64() != checksum_bytes(body)) {
        fail("checksum mismatch");
    }
    binary_reader in(body);
    for (const char c : frame_magic) {
        if (in.u8() != static_cast<std::uint8_t>(c)) {
            fail("bad magic");
        }
    }
    const std::uint32_t version = in.u32();
    if (version < min_format_version || version > format_version) {
        fail("format version mismatch");
    }
    if (in.u32() != static_cast<std::uint32_t>(expected)) {
        fail("payload kind mismatch");
    }
    return {in, version};
}

template <typename Payload, typename Read>
Payload decode_frame(std::string_view frame, payload_kind kind, Read&& read)
{
    opened_frame opened = open_frame(frame, kind);
    Payload payload = read(opened.in, opened.version);
    if (!opened.in.at_end()) {
        fail("trailing bytes after payload");
    }
    return payload;
}

} // namespace

std::string encode(const core::program_artifacts& artifacts)
{
    return encode_frame(payload_kind::program_artifacts, artifacts);
}

core::program_artifacts decode_program_artifacts(std::string_view frame)
{
    return decode_frame<core::program_artifacts>(
        frame, payload_kind::program_artifacts,
        [](binary_reader& in, std::uint32_t version) {
            return read_program_artifacts(in, version);
        });
}

std::string encode(const runtime::sweep_cell& cell)
{
    return encode_frame(payload_kind::sweep_cell, cell);
}

runtime::sweep_cell decode_sweep_cell(std::string_view frame)
{
    return decode_frame<runtime::sweep_cell>(
        frame, payload_kind::sweep_cell,
        [](binary_reader& in, std::uint32_t version) {
            return read_sweep_cell(in, version);
        });
}

std::string encode(const runtime::shard_manifest& manifest)
{
    return encode_frame(payload_kind::shard_manifest, manifest);
}

runtime::shard_manifest decode_shard_manifest(std::string_view frame)
{
    return decode_frame<runtime::shard_manifest>(
        frame, payload_kind::shard_manifest,
        [](binary_reader& in, std::uint32_t) { return read_shard_manifest(in); });
}

std::string encode(const runtime::shard_progress& progress)
{
    return encode_frame(payload_kind::shard_progress, progress);
}

runtime::shard_progress decode_shard_progress(std::string_view frame)
{
    return decode_frame<runtime::shard_progress>(
        frame, payload_kind::shard_progress,
        [](binary_reader& in, std::uint32_t) { return read_shard_progress(in); });
}

} // namespace synts::storage
