#include "gpgpu/hamming.h"

#include <bit>

#include "util/statistics.h"

namespace synts::gpgpu {

std::uint32_t hamming_distance(std::uint32_t a, std::uint32_t b) noexcept
{
    return static_cast<std::uint32_t>(std::popcount(a ^ b));
}

util::integer_histogram hamming_histogram(const valu_trace& trace)
{
    util::integer_histogram hist(32);
    for (std::size_t i = 1; i < trace.instructions.size(); ++i) {
        hist.add(hamming_distance(trace.instructions[i - 1].result,
                                  trace.instructions[i].result));
    }
    return hist;
}

homogeneity_report analyze_homogeneity(std::span<const valu_trace> traces)
{
    homogeneity_report report;
    report.valu_count = traces.size();
    report.pairwise_tvd.assign(traces.size() * traces.size(), 0.0);

    std::vector<std::vector<double>> masses;
    masses.reserve(traces.size());
    for (const auto& trace : traces) {
        masses.push_back(hamming_histogram(trace).normalized());
    }

    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        for (std::size_t j = i + 1; j < traces.size(); ++j) {
            const double tvd = util::total_variation_distance(masses[i], masses[j]);
            report.pairwise_tvd[i * traces.size() + j] = tvd;
            report.pairwise_tvd[j * traces.size() + i] = tvd;
            report.max_tvd = std::max(report.max_tvd, tvd);
            total += tvd;
            ++pairs;
        }
    }
    report.mean_tvd = pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
    return report;
}

} // namespace synts::gpgpu
