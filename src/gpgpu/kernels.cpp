#include "gpgpu/kernels.h"

#include <array>
#include <stdexcept>

#include "util/rng.h"

namespace synts::gpgpu {

namespace {

/// Work-item context: the per-kernel bodies below emit VALU instructions
/// into the trace of the VALU the work-item was scheduled on.
struct work_item {
    valu_trace& trace;
    util::xoshiro256& rng;

    std::uint32_t exec(valu_op op, std::uint32_t a, std::uint32_t b)
    {
        trace.execute(op, a, b);
        return trace.instructions.back().result;
    }

    [[nodiscard]] std::uint32_t rand32() { return static_cast<std::uint32_t>(rng()); }
    [[nodiscard]] std::uint32_t rand_below(std::uint32_t n)
    {
        return static_cast<std::uint32_t>(rng.uniform_below(n));
    }
};

// Q16.16 fixed-point multiply via the 32-bit VALU (matching how integer
// GPUs emulate fixed point: full multiply then shift).
std::uint32_t fx_mul(work_item& wi, std::uint32_t a, std::uint32_t b)
{
    const std::uint32_t product = wi.exec(valu_op::mul, a, b);
    return wi.exec(valu_op::shift_right, product, 16);
}

// --- kernel bodies -------------------------------------------------------

/// Black-Scholes: polynomial approximation of the normal CDF evaluated on a
/// random moneyness input (Horner chain of fixed-point mul/add).
void body_blackscholes(work_item& wi)
{
    static constexpr std::array<std::uint32_t, 5> coeff = {
        0x0000497B, 0x00013355, 0x00024916, 0x0001D638, 0x00009E3B};
    std::uint32_t x = wi.rand_below(0x0004'0000); // [0, 4.0) in Q16.16
    std::uint32_t acc = coeff[0];
    for (std::size_t i = 1; i < coeff.size(); ++i) {
        acc = fx_mul(wi, acc, x);
        acc = wi.exec(valu_op::add, acc, coeff[i]);
    }
    // Discounted payoff: spot * cdf - strike * cdf'.
    const std::uint32_t spot = wi.rand_below(0x0064'0000);
    const std::uint32_t strike = wi.rand_below(0x0064'0000);
    const std::uint32_t call = fx_mul(wi, spot, acc);
    const std::uint32_t put = fx_mul(wi, strike, acc);
    (void)wi.exec(valu_op::sub, call, put);
}

/// EigenValue: bisection on a Gershgorin interval -- compare/halve loop.
void body_eigenvalue(work_item& wi)
{
    std::uint32_t lo = wi.rand_below(1u << 20);
    std::uint32_t hi = lo + 1 + wi.rand_below(1u << 20);
    const std::uint32_t target = lo + wi.rand_below(hi - lo);
    for (int iter = 0; iter < 12; ++iter) {
        const std::uint32_t sum = wi.exec(valu_op::add, lo, hi);
        const std::uint32_t mid = wi.exec(valu_op::shift_right, sum, 1);
        const std::uint32_t diff = wi.exec(valu_op::abs_diff, mid, target);
        if ((diff & 1u) == 0) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
}

/// MatrixMult: 8-term dot product (mul + accumulate).
void body_matrixmult(work_item& wi)
{
    std::uint32_t acc = 0;
    for (int k = 0; k < 8; ++k) {
        const std::uint32_t a = wi.rand_below(1u << 16);
        const std::uint32_t b = wi.rand_below(1u << 16);
        const std::uint32_t prod = wi.exec(valu_op::mul, a, b);
        acc = wi.exec(valu_op::add, acc, prod);
    }
}

/// FFT: radix-2 butterflies with fixed-point twiddle multiplies.
void body_fft(work_item& wi)
{
    std::uint32_t re = wi.rand_below(1u << 18);
    std::uint32_t im = wi.rand_below(1u << 18);
    for (int s = 0; s < 4; ++s) {
        const std::uint32_t tw = 0x0000B504; // ~cos(45 deg) in Q16.16
        const std::uint32_t rot_re = fx_mul(wi, re, tw);
        const std::uint32_t rot_im = fx_mul(wi, im, tw);
        const std::uint32_t sum = wi.exec(valu_op::add, rot_re, rot_im);
        const std::uint32_t diff = wi.exec(valu_op::sub, rot_re, rot_im);
        re = sum;
        im = diff;
    }
}

/// BinarySearch: index halving and key compares over a sorted region.
void body_binarysearch(work_item& wi)
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 1u << 16;
    const std::uint32_t key = wi.rand_below(1u << 16);
    for (int iter = 0; iter < 10; ++iter) {
        const std::uint32_t sum = wi.exec(valu_op::add, lo, hi);
        const std::uint32_t mid = wi.exec(valu_op::shift_right, sum, 1);
        // Synthetic array value at mid: value = mid * 3 (sorted).
        const std::uint32_t value = wi.exec(valu_op::mul, mid, 3);
        const std::uint32_t cmp = wi.exec(valu_op::min_u32, value, key);
        if (cmp == value) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
}

/// Raytrace: ray-sphere intersection discriminant (dot products).
void body_raytrace(work_item& wi)
{
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    for (int axis = 0; axis < 3; ++axis) {
        const std::uint32_t dir = wi.rand_below(1u << 16);
        const std::uint32_t oc = wi.rand_below(1u << 16);
        const std::uint32_t d_oc = wi.exec(valu_op::mul, dir, oc);
        b = wi.exec(valu_op::add, b, d_oc);
        const std::uint32_t oc2 = wi.exec(valu_op::mul, oc, oc);
        c = wi.exec(valu_op::add, c, oc2);
    }
    const std::uint32_t b2 = wi.exec(valu_op::mul, b >> 8, b >> 8);
    (void)wi.exec(valu_op::sub, b2, c);
}

/// StreamCluster: squared Euclidean distance accumulation.
void body_streamcluster(work_item& wi)
{
    std::uint32_t acc = 0;
    for (int dim = 0; dim < 6; ++dim) {
        const std::uint32_t p = wi.rand_below(1u << 14);
        const std::uint32_t q = wi.rand_below(1u << 14);
        const std::uint32_t diff = wi.exec(valu_op::abs_diff, p, q);
        const std::uint32_t sq = wi.exec(valu_op::mul, diff, diff);
        acc = wi.exec(valu_op::add, acc, sq);
    }
}

/// Swaptions: HJM-style path step -- drift + diffusion accumulate.
void body_swaptions(work_item& wi)
{
    std::uint32_t rate = 0x0000'8000 + wi.rand_below(1u << 14);
    for (int step = 0; step < 6; ++step) {
        const std::uint32_t drift = fx_mul(wi, rate, 0x0000'0290);
        const std::uint32_t shock = wi.rand_below(1u << 10);
        const std::uint32_t up = wi.exec(valu_op::add, rate, drift);
        rate = wi.exec(valu_op::add, up, shock);
    }
}

/// X264: 8-pixel sum of absolute differences (motion estimation).
void body_x264(work_item& wi)
{
    std::uint32_t sad = 0;
    for (int px = 0; px < 8; ++px) {
        const std::uint32_t cur = wi.rand_below(256);
        const std::uint32_t ref = wi.rand_below(256);
        const std::uint32_t diff = wi.exec(valu_op::abs_diff, cur, ref);
        sad = wi.exec(valu_op::add, sad, diff);
    }
}

using kernel_body = void (*)(work_item&);

[[nodiscard]] kernel_body body_of(gpgpu_kernel kernel)
{
    switch (kernel) {
    case gpgpu_kernel::blackscholes:
        return body_blackscholes;
    case gpgpu_kernel::eigenvalue:
        return body_eigenvalue;
    case gpgpu_kernel::matrixmult:
        return body_matrixmult;
    case gpgpu_kernel::fft:
        return body_fft;
    case gpgpu_kernel::binarysearch:
        return body_binarysearch;
    case gpgpu_kernel::raytrace:
        return body_raytrace;
    case gpgpu_kernel::streamcluster:
        return body_streamcluster;
    case gpgpu_kernel::swaptions:
        return body_swaptions;
    case gpgpu_kernel::x264:
        return body_x264;
    }
    throw std::invalid_argument("body_of: unknown kernel");
}

} // namespace

std::string_view gpgpu_kernel_name(gpgpu_kernel kernel) noexcept
{
    switch (kernel) {
    case gpgpu_kernel::blackscholes:
        return "BlackScholes";
    case gpgpu_kernel::eigenvalue:
        return "EigenValue";
    case gpgpu_kernel::matrixmult:
        return "MatrixMult";
    case gpgpu_kernel::fft:
        return "FFT";
    case gpgpu_kernel::binarysearch:
        return "BinarySearch";
    case gpgpu_kernel::raytrace:
        return "Raytrace";
    case gpgpu_kernel::streamcluster:
        return "StreamCluster";
    case gpgpu_kernel::swaptions:
        return "Swaptions";
    case gpgpu_kernel::x264:
        return "X264";
    }
    return "?";
}

std::span<const gpgpu_kernel> all_gpgpu_kernels() noexcept
{
    static constexpr std::array<gpgpu_kernel, gpgpu_kernel_count> all = {
        gpgpu_kernel::blackscholes, gpgpu_kernel::eigenvalue,
        gpgpu_kernel::matrixmult,   gpgpu_kernel::fft,
        gpgpu_kernel::binarysearch, gpgpu_kernel::raytrace,
        gpgpu_kernel::streamcluster, gpgpu_kernel::swaptions,
        gpgpu_kernel::x264,
    };
    return all;
}

std::vector<valu_trace> execute_kernel(gpgpu_kernel kernel, std::size_t valu_count,
                                       std::size_t instructions_per_valu,
                                       std::uint64_t seed)
{
    if (valu_count == 0) {
        throw std::invalid_argument("execute_kernel: valu_count must be >= 1");
    }
    const kernel_body body = body_of(kernel);

    std::vector<valu_trace> traces(valu_count);
    std::vector<util::xoshiro256> lane_rng;
    lane_rng.reserve(valu_count);
    util::xoshiro256 root(seed ^ (static_cast<std::uint64_t>(kernel) * 0x9E37'79B9u));
    for (std::size_t v = 0; v < valu_count; ++v) {
        lane_rng.push_back(root.split(v));
    }

    // Round-robin work-item dispatch until every VALU has enough dynamic
    // instructions.
    bool any_below = true;
    while (any_below) {
        any_below = false;
        for (std::size_t v = 0; v < valu_count; ++v) {
            if (traces[v].size() < instructions_per_valu) {
                work_item wi{traces[v], lane_rng[v]};
                body(wi);
                any_below = any_below || traces[v].size() < instructions_per_valu;
            }
        }
    }
    return traces;
}

} // namespace synts::gpgpu
