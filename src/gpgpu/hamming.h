// hamming.h -- output-activity analysis of the vector ALUs (Fig. 5.10).
//
// The paper concludes GPGPU homogeneity from "hamming distance bar graphs"
// of consecutive VALU output words: near-identical histograms across the 16
// VALUs imply similar switching activity, similar path sensitization, and
// hence homogeneous error probabilities -- so per-core timing speculation
// suffices on this architecture and the SynTS analysis focuses on CMPs.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpgpu/simd.h"
#include "util/histogram.h"

namespace synts::gpgpu {

/// Hamming distance (popcount of XOR) between two 32-bit words.
[[nodiscard]] std::uint32_t hamming_distance(std::uint32_t a, std::uint32_t b) noexcept;

/// Histogram of Hamming distances between consecutive result words of one
/// VALU trace (buckets 0..32).
[[nodiscard]] util::integer_histogram hamming_histogram(const valu_trace& trace);

/// Cross-VALU homogeneity report.
struct homogeneity_report {
    /// Pairwise total-variation distances between normalized histograms;
    /// entry [i * valu_count + j].
    std::vector<double> pairwise_tvd;
    std::size_t valu_count = 0;
    double max_tvd = 0.0;  ///< worst pair
    double mean_tvd = 0.0; ///< average over distinct pairs

    /// True when every pair of VALUs is within `threshold` total-variation
    /// distance -- the quantitative form of "the graphs are qualitatively
    /// similar".
    [[nodiscard]] bool is_homogeneous(double threshold = 0.08) const noexcept
    {
        return max_tvd <= threshold;
    }
};

/// Compares Hamming histograms across all VALUs of a kernel execution.
[[nodiscard]] homogeneity_report analyze_homogeneity(std::span<const valu_trace> traces);

} // namespace synts::gpgpu
