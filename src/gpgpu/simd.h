// simd.h -- Radeon HD 7970-style SIMD execution model.
//
// The paper's GPGPU case study (Sections 3.2, 5.5) runs Multi2Sim 4.2 with
// the MIAOW RTL of a Southern-Islands compute unit and asks whether the 16
// vector ALUs show heterogeneous timing-error behavior. We substitute a
// compact SIMD model: work-items are distributed round-robin over `valu_count`
// vector ALUs; each VALU executes its work-items' scalar instruction stream
// in lock-step and records, per dynamic instruction, the 32-bit result word
// (for the Hamming-distance analysis of Fig. 5.10) and the operand pair
// (so the same stream can drive the gate-level ALU netlist).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace synts::gpgpu {

/// Vector-ALU operation kinds (the subset the kernels below use).
enum class valu_op : std::uint8_t {
    add = 0,
    sub,
    mul,
    logic_and,
    logic_or,
    logic_xor,
    shift_right,
    min_u32,
    max_u32,
    abs_diff,
};

/// One dynamic VALU instruction: operands in, result word out.
struct valu_instruction {
    valu_op op = valu_op::add;
    std::uint32_t operand_a = 0;
    std::uint32_t operand_b = 0;
    std::uint32_t result = 0;
};

/// Execution trace of one vector ALU.
struct valu_trace {
    std::vector<valu_instruction> instructions;

    /// Appends `op(a, b)`; computes and stores the result word.
    void execute(valu_op op, std::uint32_t a, std::uint32_t b);

    /// Number of dynamic instructions.
    [[nodiscard]] std::size_t size() const noexcept { return instructions.size(); }
};

/// Functional evaluation of one VALU op.
[[nodiscard]] std::uint32_t evaluate_valu_op(valu_op op, std::uint32_t a,
                                             std::uint32_t b) noexcept;

/// Packs up to 64 VALU instructions into SimpleALU batch lane words for
/// dynamic_timing_simulator::step_batch. The layout matches
/// circuit::build_simple_alu's primary inputs exactly: words[0..31] carry
/// operand_a bits, words[32..63] operand_b bits, words[64] the subtract
/// select (op == valu_op::sub), words[65] and words[66] stay zero (no
/// logic-variant select on the VALU path). `lane_words` must have size 67
/// (the SimpleALU input width); it is fully rewritten. Returns the number
/// of lanes packed: min(instructions.size(), 64).
[[nodiscard]] std::size_t pack_valu_lanes(std::span<const valu_instruction> instructions,
                                          std::span<std::uint64_t> lane_words) noexcept;

/// The default HD 7970 configuration analyzed by the paper: 16 vector ALUs
/// per SIMD unit.
inline constexpr std::size_t hd7970_valu_count = 16;

} // namespace synts::gpgpu
