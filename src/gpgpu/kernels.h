// kernels.h -- synthetic GPGPU kernels for the HD 7970 case study.
//
// Section 5.5 characterizes BlackScholes, EigenValue, MatrixMult, FFT,
// BinarySearch, Raytrace, StreamCluster, Swaptions and X264. Each kernel
// below reproduces the inner-loop arithmetic of its namesake in 32-bit
// fixed point, dispatches work-items round-robin over the vector ALUs, and
// yields one valu_trace per VALU. The result-word streams feed the
// Hamming-distance analysis of Fig. 5.10; the operand streams can drive the
// gate-level ALU netlist for a direct error-probability comparison.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "gpgpu/simd.h"

namespace synts::gpgpu {

/// The nine characterized kernels.
enum class gpgpu_kernel : std::uint8_t {
    blackscholes = 0,
    eigenvalue,
    matrixmult,
    fft,
    binarysearch,
    raytrace,
    streamcluster,
    swaptions,
    x264,
};

/// Number of modeled kernels.
inline constexpr std::size_t gpgpu_kernel_count = 9;

/// Display name matching the paper's list.
[[nodiscard]] std::string_view gpgpu_kernel_name(gpgpu_kernel kernel) noexcept;

/// All nine kernels.
[[nodiscard]] std::span<const gpgpu_kernel> all_gpgpu_kernels() noexcept;

/// Executes `kernel` with work-items spread round-robin over `valu_count`
/// vector ALUs until every VALU has at least `instructions_per_valu` dynamic
/// instructions. Deterministic in `seed`.
[[nodiscard]] std::vector<valu_trace> execute_kernel(gpgpu_kernel kernel,
                                                     std::size_t valu_count,
                                                     std::size_t instructions_per_valu,
                                                     std::uint64_t seed);

} // namespace synts::gpgpu
