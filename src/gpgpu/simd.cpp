#include "gpgpu/simd.h"

#include <algorithm>

namespace synts::gpgpu {

std::uint32_t evaluate_valu_op(valu_op op, std::uint32_t a, std::uint32_t b) noexcept
{
    switch (op) {
    case valu_op::add:
        return a + b;
    case valu_op::sub:
        return a - b;
    case valu_op::mul:
        return a * b;
    case valu_op::logic_and:
        return a & b;
    case valu_op::logic_or:
        return a | b;
    case valu_op::logic_xor:
        return a ^ b;
    case valu_op::shift_right:
        return a >> (b & 31);
    case valu_op::min_u32:
        return std::min(a, b);
    case valu_op::max_u32:
        return std::max(a, b);
    case valu_op::abs_diff:
        return a > b ? a - b : b - a;
    }
    return 0;
}

void valu_trace::execute(valu_op op, std::uint32_t a, std::uint32_t b)
{
    valu_instruction insn;
    insn.op = op;
    insn.operand_a = a;
    insn.operand_b = b;
    insn.result = evaluate_valu_op(op, a, b);
    instructions.push_back(insn);
}

} // namespace synts::gpgpu
