#include "gpgpu/simd.h"

#include <algorithm>

namespace synts::gpgpu {

std::uint32_t evaluate_valu_op(valu_op op, std::uint32_t a, std::uint32_t b) noexcept
{
    switch (op) {
    case valu_op::add:
        return a + b;
    case valu_op::sub:
        return a - b;
    case valu_op::mul:
        return a * b;
    case valu_op::logic_and:
        return a & b;
    case valu_op::logic_or:
        return a | b;
    case valu_op::logic_xor:
        return a ^ b;
    case valu_op::shift_right:
        return a >> (b & 31);
    case valu_op::min_u32:
        return std::min(a, b);
    case valu_op::max_u32:
        return std::max(a, b);
    case valu_op::abs_diff:
        return a > b ? a - b : b - a;
    }
    return 0;
}

std::size_t pack_valu_lanes(std::span<const valu_instruction> instructions,
                            std::span<std::uint64_t> lane_words) noexcept
{
    if (lane_words.size() != 67) {
        return 0;
    }
    std::fill(lane_words.begin(), lane_words.end(), 0);
    const std::size_t lanes = std::min<std::size_t>(instructions.size(), 64);
    for (std::size_t j = 0; j < lanes; ++j) {
        const valu_instruction& insn = instructions[j];
        const std::uint64_t lane_bit = 1ull << j;
        for (std::size_t b = 0; b < 32; ++b) {
            if ((insn.operand_a >> b) & 1) {
                lane_words[b] |= lane_bit;
            }
            if ((insn.operand_b >> b) & 1) {
                lane_words[32 + b] |= lane_bit;
            }
        }
        if (insn.op == valu_op::sub) {
            lane_words[64] |= lane_bit;
        }
    }
    return lanes;
}

void valu_trace::execute(valu_op op, std::uint32_t a, std::uint32_t b)
{
    valu_instruction insn;
    insn.op = op;
    insn.operand_a = a;
    insn.operand_b = b;
    insn.result = evaluate_valu_op(op, a, b);
    instructions.push_back(insn);
}

} // namespace synts::gpgpu
