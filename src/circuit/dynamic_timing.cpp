#include "circuit/dynamic_timing.h"

#include <algorithm>
#include <stdexcept>

#include "circuit/sta.h"

namespace synts::circuit {

std::shared_ptr<const timing_corner_tables>
make_corner_tables(const netlist& nl, const cell_library& lib, const voltage_model& vm,
                   std::span<const double> vdd_levels)
{
    if (vdd_levels.empty()) {
        throw std::invalid_argument("make_corner_tables: need at least one corner");
    }
    const static_timing_analyzer sta(nl);
    const std::vector<double> nominal = sta.nominal_gate_delays(lib);
    const auto gates = nl.gates();

    auto tables = std::make_shared<timing_corner_tables>();
    tables->vdd.assign(vdd_levels.begin(), vdd_levels.end());
    tables->nominal_period_ps.reserve(vdd_levels.size());
    tables->gate_delay_ps.reserve(vdd_levels.size());
    for (const double vdd : vdd_levels) {
        std::vector<double> delays(gates.size());
        vm.scale_gate_delays(gates, nominal, delays, vdd);
        tables->nominal_period_ps.push_back(sta.analyze(delays).critical_delay_ps);
        tables->gate_delay_ps.push_back(std::move(delays));
    }
    return tables;
}

dynamic_timing_simulator::dynamic_timing_simulator(const netlist& nl, const cell_library& lib,
                                                   const voltage_model& vm,
                                                   std::span<const double> vdd_levels)
    : dynamic_timing_simulator(nl, make_corner_tables(nl, lib, vm, vdd_levels))
{
}

dynamic_timing_simulator::dynamic_timing_simulator(
    const netlist& nl, std::shared_ptr<const timing_corner_tables> tables)
    : nl_(nl), tables_(std::move(tables))
{
    if (!tables_ || tables_->vdd.empty()) {
        throw std::invalid_argument("dynamic_timing_simulator: need at least one corner");
    }
    values_.assign(nl_.net_count(), 0);
    changed_.assign(nl_.net_count(), 0);
    toggle_ps_.assign(tables_->vdd.size() * nl_.net_count(), 0.0);
}

void dynamic_timing_simulator::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(changed_.begin(), changed_.end(), 0);
    std::fill(toggle_ps_.begin(), toggle_ps_.end(), 0.0);
}

double dynamic_timing_simulator::step(std::span<const bool> inputs,
                                      std::span<double> out_delay_ps)
{
    const std::size_t input_count = nl_.input_count();
    const std::size_t net_count = nl_.net_count();
    const std::size_t corner_count_ = tables_->vdd.size();
    if (inputs.size() != input_count) {
        throw std::invalid_argument("dynamic_timing_simulator: input vector width mismatch");
    }
    if (out_delay_ps.size() != corner_count_) {
        throw std::invalid_argument("dynamic_timing_simulator: corner buffer mismatch");
    }

    // Primary inputs switch at the launching clock edge (time 0).
    for (std::size_t i = 0; i < input_count; ++i) {
        const std::uint8_t next = inputs[i] ? 1 : 0;
        changed_[i] = (next != values_[i]) ? 1 : 0;
        values_[i] = next;
        if (changed_[i]) {
            for (std::size_t c = 0; c < corner_count_; ++c) {
                toggle_ps_[c * net_count + i] = 0.0;
            }
        }
    }

    const auto gates = nl_.gates();
    const auto& gate_delays = tables_->gate_delay_ps;
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const gate& g = gates[gi];
        bool in_bits[3] = {false, false, false};
        for (std::size_t i = 0; i < g.input_count; ++i) {
            in_bits[i] = values_[g.inputs[i]] != 0;
        }
        const bool next =
            evaluate_cell(g.kind, std::span<const bool>(in_bits, g.input_count));
        const net_id out = g.output;
        const bool toggled = (next ? 1 : 0) != values_[out];
        values_[out] = next ? 1 : 0;
        changed_[out] = toggled ? 1 : 0;
        if (!toggled) {
            continue;
        }
        for (std::size_t c = 0; c < corner_count_; ++c) {
            double latest_input = 0.0;
            for (std::size_t i = 0; i < g.input_count; ++i) {
                const net_id in = g.inputs[i];
                if (changed_[in]) {
                    latest_input = std::max(latest_input, toggle_ps_[c * net_count + in]);
                }
            }
            toggle_ps_[c * net_count + out] = latest_input + gate_delays[c][gi];
        }
    }

    double worst = 0.0;
    for (std::size_t c = 0; c < corner_count_; ++c) {
        double latest = 0.0;
        for (const net_id out : nl_.output_nets()) {
            if (changed_[out]) {
                latest = std::max(latest, toggle_ps_[c * net_count + out]);
            }
        }
        out_delay_ps[c] = latest;
        worst = std::max(worst, latest);
    }
    return worst;
}

bool dynamic_timing_simulator::output_value(std::size_t i) const noexcept
{
    return values_[nl_.output_net(i)] != 0;
}

} // namespace synts::circuit
