#include "circuit/dynamic_timing.h"

#include <algorithm>
#include <stdexcept>

#include "circuit/sta.h"

namespace synts::circuit {

std::shared_ptr<const timing_corner_tables>
make_corner_tables(const netlist& nl, const cell_library& lib, const voltage_model& vm,
                   std::span<const double> vdd_levels)
{
    if (vdd_levels.empty()) {
        throw std::invalid_argument("make_corner_tables: need at least one corner");
    }
    const static_timing_analyzer sta(nl);
    const std::vector<double> nominal = sta.nominal_gate_delays(lib);
    const auto gates = nl.gates();
    const std::size_t corner_count = vdd_levels.size();

    auto tables = std::make_shared<timing_corner_tables>();
    tables->vdd.assign(vdd_levels.begin(), vdd_levels.end());
    tables->nominal_period_ps.reserve(corner_count);
    tables->gate_delay_ps.resize(gates.size() * corner_count);
    std::vector<double> delays(gates.size());
    for (std::size_t c = 0; c < corner_count; ++c) {
        vm.scale_gate_delays(gates, nominal, delays, vdd_levels[c]);
        tables->nominal_period_ps.push_back(sta.analyze(delays).critical_delay_ps);
        // Transpose into the corner-minor layout: one gate's corners are
        // contiguous so the simulators' inner corner loops stream.
        for (std::size_t g = 0; g < gates.size(); ++g) {
            tables->gate_delay_ps[g * corner_count + c] = delays[g];
        }
    }
    return tables;
}

dynamic_timing_simulator::dynamic_timing_simulator(const netlist& nl, const cell_library& lib,
                                                   const voltage_model& vm,
                                                   std::span<const double> vdd_levels)
    : dynamic_timing_simulator(nl, make_corner_tables(nl, lib, vm, vdd_levels))
{
}

dynamic_timing_simulator::dynamic_timing_simulator(
    const netlist& nl, std::shared_ptr<const timing_corner_tables> tables)
    : nl_(nl), tables_(std::move(tables))
{
    if (!tables_ || tables_->vdd.empty()) {
        throw std::invalid_argument("dynamic_timing_simulator: need at least one corner");
    }
    // Single initialization: vector value-init already zeroes every buffer,
    // which IS the reset-state contract. reset() re-establishes it for
    // reuse without repeating the toggle_ps_ fill (see reset()).
    values_.resize(nl_.net_count());
    changed_.resize(nl_.net_count());
    toggle_ps_.resize(nl_.net_count() * tables_->vdd.size());
    latest_ps_.resize(tables_->vdd.size());
}

void dynamic_timing_simulator::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(changed_.begin(), changed_.end(), 0);
    // toggle_ps_ is deliberately left as-is: every read of a net's settle
    // time is guarded by that net's toggle flag, and toggle flags plus
    // toggled nets' settle times are rewritten within each step before any
    // read. Primary-input slots are only ever zero (inputs switch at the
    // clock edge, time 0), so stale data is unreachable -- re-clearing the
    // corner x net doubles here was pure construction/reset waste.
}

double dynamic_timing_simulator::step(std::span<const bool> inputs,
                                      std::span<double> out_delay_ps)
{
    const std::size_t input_count = nl_.input_count();
    const std::size_t corner_count_ = tables_->vdd.size();
    if (inputs.size() != input_count) {
        throw std::invalid_argument("dynamic_timing_simulator: input vector width mismatch");
    }
    if (out_delay_ps.size() != corner_count_) {
        throw std::invalid_argument("dynamic_timing_simulator: corner buffer mismatch");
    }

    // Primary inputs switch at the launching clock edge (time 0). Their
    // toggle_ps_ slots stay 0.0 forever (never written otherwise), so no
    // per-corner store is needed here.
    for (std::size_t i = 0; i < input_count; ++i) {
        const std::uint8_t next = inputs[i] ? 1 : 0;
        changed_[i] = (next != values_[i]) ? 1 : 0;
        values_[i] = next;
    }

    const auto gates = nl_.gates();
    const double* const gate_delays = tables_->gate_delay_ps.data();
    double* const toggle = toggle_ps_.data();
    double* const latest = latest_ps_.data();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const gate& g = gates[gi];
        bool in_bits[3] = {false, false, false};
        for (std::size_t i = 0; i < g.input_count; ++i) {
            in_bits[i] = values_[g.inputs[i]] != 0;
        }
        const bool next =
            evaluate_cell(g.kind, std::span<const bool>(in_bits, g.input_count));
        const net_id out = g.output;
        const bool toggled = (next ? 1 : 0) != values_[out];
        values_[out] = next ? 1 : 0;
        changed_[out] = toggled ? 1 : 0;
        if (!toggled) {
            continue;
        }
        // Corner-minor sweeps: each changed input contributes one
        // contiguous max pass, the delay add is one contiguous pass. The
        // per-corner arithmetic order (inputs in pin order, then one add)
        // is exactly the historical corner-major loop's, so delays are
        // bit-identical across layouts.
        std::fill(latest, latest + corner_count_, 0.0);
        for (std::size_t i = 0; i < g.input_count; ++i) {
            const net_id in = g.inputs[i];
            if (!changed_[in]) {
                continue;
            }
            const double* const in_toggle = toggle + in * corner_count_;
            for (std::size_t c = 0; c < corner_count_; ++c) {
                latest[c] = std::max(latest[c], in_toggle[c]);
            }
        }
        double* const out_toggle = toggle + out * corner_count_;
        const double* const delays = gate_delays + gi * corner_count_;
        for (std::size_t c = 0; c < corner_count_; ++c) {
            out_toggle[c] = latest[c] + delays[c];
        }
    }

    std::fill(latest, latest + corner_count_, 0.0);
    for (const net_id out : nl_.output_nets()) {
        if (!changed_[out]) {
            continue;
        }
        const double* const out_toggle = toggle + out * corner_count_;
        for (std::size_t c = 0; c < corner_count_; ++c) {
            latest[c] = std::max(latest[c], out_toggle[c]);
        }
    }
    double worst = 0.0;
    for (std::size_t c = 0; c < corner_count_; ++c) {
        out_delay_ps[c] = latest[c];
        worst = std::max(worst, latest[c]);
    }
    return worst;
}

void dynamic_timing_simulator::step_batch(std::span<const std::uint64_t> input_words,
                                          std::size_t lane_count,
                                          std::span<double> out_delay_ps)
{
    const std::size_t input_count = nl_.input_count();
    const std::size_t net_count = nl_.net_count();
    const std::size_t corner_count_ = tables_->vdd.size();
    if (input_words.size() != input_count) {
        throw std::invalid_argument("dynamic_timing_simulator: input word span mismatch");
    }
    if (lane_count == 0 || lane_count > max_batch_lanes) {
        throw std::invalid_argument("dynamic_timing_simulator: lane count out of range");
    }
    if (out_delay_ps.size() != corner_count_ * lane_count) {
        throw std::invalid_argument("dynamic_timing_simulator: batch delay buffer mismatch");
    }
    if (value_words_.size() != net_count) {
        value_words_.resize(net_count);
        toggle_words_.resize(net_count);
    }

    // Functional pass, word-parallel: lane j of a net's word is its settled
    // value under input vector j. The toggle mask compares each lane with
    // its predecessor; lane 0's predecessor is the carried scalar state
    // (values_), which after reset() is the raw all-zero baseline -- the
    // exact comparison sequence of lane_count scalar step() calls.
    std::uint64_t* const words = value_words_.data();
    std::uint64_t* const toggles = toggle_words_.data();
    for (std::size_t i = 0; i < input_count; ++i) {
        const std::uint64_t w = input_words[i];
        words[i] = w;
        toggles[i] = w ^ ((w << 1) | static_cast<std::uint64_t>(values_[i]));
    }
    const auto gates = nl_.gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const gate& g = gates[gi];
        const std::uint64_t a = g.input_count > 0 ? words[g.inputs[0]] : 0;
        const std::uint64_t b = g.input_count > 1 ? words[g.inputs[1]] : 0;
        const std::uint64_t c = g.input_count > 2 ? words[g.inputs[2]] : 0;
        const std::uint64_t w = evaluate_cell_word(g.kind, a, b, c);
        const net_id out = g.output;
        words[out] = w;
        toggles[out] = w ^ ((w << 1) | static_cast<std::uint64_t>(values_[out]));
    }

    // Delay propagation per lane, visiting only toggled gates. Lanes share
    // toggle_ps_ sequentially exactly like consecutive scalar steps share
    // it: a lane only reads settle times its own pass wrote (reads guarded
    // by the lane's toggle bits), so no per-lane copy is needed and the
    // final toggle_ps_ contents equal the scalar walk's.
    const double* const gate_delays = tables_->gate_delay_ps.data();
    double* const toggle = toggle_ps_.data();
    double* const latest = latest_ps_.data();
    const auto output_nets = nl_.output_nets();
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
        const std::uint64_t lane_bit = 1ull << lane;
        for (std::size_t gi = 0; gi < gates.size(); ++gi) {
            const gate& g = gates[gi];
            if ((toggles[g.output] & lane_bit) == 0) {
                continue;
            }
            std::fill(latest, latest + corner_count_, 0.0);
            for (std::size_t i = 0; i < g.input_count; ++i) {
                const net_id in = g.inputs[i];
                if ((toggles[in] & lane_bit) == 0) {
                    continue;
                }
                const double* const in_toggle = toggle + in * corner_count_;
                for (std::size_t c = 0; c < corner_count_; ++c) {
                    latest[c] = std::max(latest[c], in_toggle[c]);
                }
            }
            double* const out_toggle = toggle + g.output * corner_count_;
            const double* const delays = gate_delays + gi * corner_count_;
            for (std::size_t c = 0; c < corner_count_; ++c) {
                out_toggle[c] = latest[c] + delays[c];
            }
        }
        std::fill(latest, latest + corner_count_, 0.0);
        for (const net_id out : output_nets) {
            if ((toggles[out] & lane_bit) == 0) {
                continue;
            }
            const double* const out_toggle = toggle + out * corner_count_;
            for (std::size_t c = 0; c < corner_count_; ++c) {
                latest[c] = std::max(latest[c], out_toggle[c]);
            }
        }
        for (std::size_t c = 0; c < corner_count_; ++c) {
            out_delay_ps[c * lane_count + lane] = latest[c];
        }
    }

    // Land the carried scalar state on the last lane, so scalar and batched
    // stepping interleave freely.
    const std::size_t last = lane_count - 1;
    for (std::size_t n = 0; n < net_count; ++n) {
        values_[n] = static_cast<std::uint8_t>((words[n] >> last) & 1);
        changed_[n] = static_cast<std::uint8_t>((toggles[n] >> last) & 1);
    }
}

bool dynamic_timing_simulator::output_value(std::size_t i) const noexcept
{
    return values_[nl_.output_net(i)] != 0;
}

} // namespace synts::circuit
