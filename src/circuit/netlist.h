// netlist.h -- gate-level combinational netlist.
//
// Netlists are built net-by-net: every gate's input nets must exist before
// the gate is added, so the gate array is in topological order by
// construction (verified by validate()). This makes single-pass functional
// simulation, static timing, and dynamic timing all linear-time.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/cell_library.h"

namespace synts::circuit {

/// Index of a net (wire). Net 0..input_count-1 are the primary inputs.
using net_id = std::uint32_t;

/// Index of a gate instance within a netlist.
using gate_id = std::uint32_t;

/// Sentinel for "no net".
inline constexpr net_id no_net = 0xFFFFFFFFu;

/// One gate instance: cell class, up to three input nets, one output net.
struct gate {
    cell_kind kind = cell_kind::buf;
    std::array<net_id, 3> inputs{no_net, no_net, no_net};
    std::uint8_t input_count = 0;
    net_id output = no_net;
};

/// A combinational gate-level netlist with named primary inputs/outputs.
class netlist {
public:
    /// Creates an empty netlist labeled `name` (reports only).
    explicit netlist(std::string name = "netlist");

    /// Adds a primary input and returns its net.
    net_id add_input(std::string name);

    /// Adds `width` inputs named `<base>[0..width-1]`, LSB first.
    std::vector<net_id> add_input_bus(const std::string& base, std::size_t width);

    /// Adds a gate driving a fresh net; `inputs` must all be existing nets.
    /// Throws std::invalid_argument on arity mismatch or undriven input.
    net_id add_gate(cell_kind kind, std::span<const net_id> inputs);

    /// Convenience arity-specific wrappers.
    net_id add_gate0(cell_kind kind);
    net_id add_gate1(cell_kind kind, net_id a);
    net_id add_gate2(cell_kind kind, net_id a, net_id b);
    net_id add_gate3(cell_kind kind, net_id a, net_id b, net_id c);

    /// Declares `net` a primary output named `name`.
    void mark_output(std::string name, net_id net);

    /// Declares nets as the output bus `<base>[i]`, LSB first.
    void mark_output_bus(const std::string& base, std::span<const net_id> nets);

    /// Name of the netlist.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    /// Number of primary inputs.
    [[nodiscard]] std::size_t input_count() const noexcept { return input_names_.size(); }
    /// Number of primary outputs.
    [[nodiscard]] std::size_t output_count() const noexcept { return output_nets_.size(); }
    /// Number of gate instances.
    [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }
    /// Total number of nets (inputs + gate outputs).
    [[nodiscard]] std::size_t net_count() const noexcept { return net_total_; }

    /// Gate table in topological order.
    [[nodiscard]] std::span<const gate> gates() const noexcept { return gates_; }
    /// Net driven by primary output `i`.
    [[nodiscard]] net_id output_net(std::size_t i) const noexcept { return output_nets_[i]; }
    /// All primary output nets.
    [[nodiscard]] std::span<const net_id> output_nets() const noexcept { return output_nets_; }
    /// Name of primary input `i`.
    [[nodiscard]] const std::string& input_name(std::size_t i) const noexcept
    {
        return input_names_[i];
    }
    /// Name of primary output `i`.
    [[nodiscard]] const std::string& output_name(std::size_t i) const noexcept
    {
        return output_names_[i];
    }

    /// Fanout endpoint count of each net (gate input pins plus primary
    /// outputs). Index by net_id.
    [[nodiscard]] std::span<const std::uint32_t> fanout_counts() const noexcept
    {
        return fanout_;
    }

    /// Gate driving `net`, or an id >= gate_count() when `net` is a primary
    /// input. The driver of net n (n >= input_count) is gate n - input_count.
    [[nodiscard]] gate_id driver_of(net_id net) const noexcept;

    /// Total cell area from `lib`.
    [[nodiscard]] double total_area_um2(const cell_library& lib) const noexcept;

    /// Total leakage power from `lib` (at nominal supply), in nW.
    [[nodiscard]] double total_leakage_nw(const cell_library& lib) const noexcept;

    /// Per-cell-class instance counts, indexed by cell_kind.
    [[nodiscard]] std::array<std::size_t, cell_kind_count> kind_histogram() const noexcept;

    /// Structural checks: every gate input precedes the gate (acyclic /
    /// topological), arities match, outputs exist. Throws std::logic_error
    /// with a description on violation; returns normally otherwise.
    void validate() const;

private:
    std::string name_;
    std::vector<std::string> input_names_;
    std::vector<gate> gates_;
    std::vector<std::string> output_names_;
    std::vector<net_id> output_nets_;
    std::vector<std::uint32_t> fanout_;
    std::size_t net_total_ = 0;
};

} // namespace synts::circuit
