// cell_library.h -- a small standard-cell library with 22 nm-flavored
// timing, area, and power parameters.
//
// This is the reproduction's stand-in for the synthesized IVM / MIAOW
// netlists' cell views. Delays are expressed in picoseconds at the nominal
// supply (1.0 V); the voltage dependence is handled by
// circuit/voltage_model.h via an alpha-power-law scale factor that is
// slightly cell-class specific (see DESIGN.md section 5.1).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace synts::circuit {

/// Combinational cell classes plus the sequential DFF (used only for
/// area/power roll-ups; stage netlists are purely combinational between
/// pipeline registers).
enum class cell_kind : std::uint8_t {
    const0,
    const1,
    buf,
    inv,
    and2,
    or2,
    nand2,
    nor2,
    xor2,
    xnor2,
    and3,
    or3,
    nand3,
    nor3,
    aoi21, ///< out = !((a & b) | c)
    oai21, ///< out = !((a | b) & c)
    mux2,  ///< out = s ? b : a   (inputs ordered a, b, s)
    dff,   ///< sequential; never instantiated in combinational netlists
};

/// Number of distinct cell kinds.
inline constexpr std::size_t cell_kind_count = 18;

/// Electrical/physical parameters of one cell class.
struct cell_params {
    double intrinsic_delay_ps; ///< pin-to-pin delay at 1.0 V, zero load
    double load_delay_ps;      ///< additional delay per fanout endpoint
    double area_um2;           ///< placement area
    double input_cap_ff;       ///< per-input-pin capacitance
    double leakage_nw;         ///< leakage power at 1.0 V
    double switch_energy_fj;   ///< dynamic energy per output toggle at 1.0 V
};

/// Number of input pins a cell kind reads.
[[nodiscard]] constexpr std::size_t cell_input_count(cell_kind kind) noexcept
{
    switch (kind) {
    case cell_kind::const0:
    case cell_kind::const1:
        return 0;
    case cell_kind::buf:
    case cell_kind::inv:
    case cell_kind::dff:
        return 1;
    case cell_kind::and2:
    case cell_kind::or2:
    case cell_kind::nand2:
    case cell_kind::nor2:
    case cell_kind::xor2:
    case cell_kind::xnor2:
        return 2;
    case cell_kind::and3:
    case cell_kind::or3:
    case cell_kind::nand3:
    case cell_kind::nor3:
    case cell_kind::aoi21:
    case cell_kind::oai21:
    case cell_kind::mux2:
        return 3;
    }
    return 0;
}

/// Human-readable cell class name (for reports and netlist dumps).
[[nodiscard]] std::string_view cell_kind_name(cell_kind kind) noexcept;

/// Boolean function of the cell evaluated on up to three input bits.
/// `inputs` must supply cell_input_count(kind) values; extra values are
/// ignored. DFF evaluates as a buffer (value transport; timing handled at
/// the architecture level).
[[nodiscard]] bool evaluate_cell(cell_kind kind, std::span<const bool> inputs) noexcept;

/// Word-parallel twin of evaluate_cell: evaluates the cell's Boolean
/// function on all 64 bit positions of the operand words at once (bit j of
/// the result is evaluate_cell applied to bit j of each operand). Unused
/// operands are ignored; const cells produce all-0 / all-1 words. This is
/// the lane engine of dynamic_timing_simulator::step_batch -- one bitwise
/// expression replaces 64 scalar cell evaluations.
[[nodiscard]] std::uint64_t evaluate_cell_word(cell_kind kind, std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t c) noexcept;

/// The standard-cell library: parameter lookup per cell class.
class cell_library {
public:
    /// The default 22 nm-flavored library used everywhere in this repo.
    /// Parameter values are representative (FO4-style ratios between cell
    /// classes), not foundry data; every experiment in the paper is
    /// normalized, so only ratios matter.
    [[nodiscard]] static cell_library standard_22nm();

    /// Parameters for a cell class.
    [[nodiscard]] const cell_params& params(cell_kind kind) const noexcept
    {
        return params_[static_cast<std::size_t>(kind)];
    }

    /// Mutable access for calibration/ablation experiments.
    [[nodiscard]] cell_params& params_mutable(cell_kind kind) noexcept
    {
        return params_[static_cast<std::size_t>(kind)];
    }

    /// Delay of `kind` driving `fanout` endpoints at the nominal supply.
    [[nodiscard]] double delay_ps(cell_kind kind, std::size_t fanout) const noexcept
    {
        const auto& p = params(kind);
        return p.intrinsic_delay_ps + p.load_delay_ps * static_cast<double>(fanout);
    }

private:
    std::array<cell_params, cell_kind_count> params_{};
};

} // namespace synts::circuit
