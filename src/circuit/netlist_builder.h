// netlist_builder.h -- structural generators for the pipe-stage netlists.
//
// The paper synthesizes the Illinois Verilog Model (IVM) Alpha pipeline with
// Synopsys Design Compiler and analyzes three stages: Decode, SimpleALU and
// ComplexALU. We substitute structural generators that produce circuits with
// the same *timing character*:
//
//   * decode_stage   -- opcode/register one-hot decoders plus synthesized
//                       random control logic (two-level PLA): shallow,
//                       wide, control-dominated paths.
//   * simple_alu     -- 32-bit ripple-carry adder/subtractor plus a bitwise
//                       logic unit: the carry chain gives strongly
//                       data-dependent sensitized delays (long chains are
//                       rare -- the empirical basis of timing speculation).
//   * complex_alu    -- 16x16 carry-save array multiplier: deep
//                       multi-row paths whose sensitization depends on
//                       operand magnitudes.
//
// All generators return both the netlist and an input-layout description so
// the architecture layer (arch/stage_taps) can drive them cycle by cycle.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.h"

namespace synts::circuit {

/// Sum/carry bundle returned by adder generators.
struct adder_result {
    std::vector<net_id> sum; ///< LSB-first sum bits
    net_id carry_out = no_net;
};

/// Appends a full adder (5 gates) and returns {sum, carry}.
struct full_adder_result {
    net_id sum = no_net;
    net_id carry = no_net;
};
full_adder_result add_full_adder(netlist& nl, net_id a, net_id b, net_id carry_in);

/// Appends a ripple-carry adder over LSB-first operand buses of equal width.
adder_result add_ripple_adder(netlist& nl, std::span<const net_id> a,
                              std::span<const net_id> b, net_id carry_in);

/// Appends a Kogge-Stone parallel-prefix adder (log-depth). Used for
/// structural variety and as a cross-check in tests.
adder_result add_kogge_stone_adder(netlist& nl, std::span<const net_id> a,
                                   std::span<const net_id> b, net_id carry_in);

/// Appends a full binary decoder: `select.size()` bits -> 2^n one-hot
/// outputs (LSB-first select).
std::vector<net_id> add_decoder(netlist& nl, std::span<const net_id> select);

/// Appends a balanced OR-reduction tree over `nets`; returns the root.
net_id add_or_tree(netlist& nl, std::span<const net_id> nets);

/// Appends a balanced AND-reduction tree over `nets`; returns the root.
net_id add_and_tree(netlist& nl, std::span<const net_id> nets);

/// Appends a deterministic pseudo-random two-level PLA: `output_count`
/// signals, each the OR of `terms_per_output` AND3 terms over randomly
/// chosen (possibly inverted) literals of `inputs`. Stands in for
/// synthesized control logic. The structure depends only on `seed`.
std::vector<net_id> add_control_pla(netlist& nl, std::span<const net_id> inputs,
                                    std::size_t output_count, std::size_t terms_per_output,
                                    std::uint64_t seed);

/// Input-bit layout of a generated pipe-stage netlist. Bits are consumed
/// LSB-first per field, fields in the order listed.
struct stage_input_layout {
    std::size_t instruction_bits = 0; ///< decode: instruction word width
    std::size_t operand_a_bits = 0;   ///< ALUs: first operand width
    std::size_t operand_b_bits = 0;   ///< ALUs: second operand width
    std::size_t opcode_bits = 0;      ///< ALUs: operation-select width
};

/// A pipe-stage circuit: netlist plus the input layout needed to drive it.
struct stage_netlist {
    netlist nl{"stage"};
    stage_input_layout layout{};
};

/// Builds the Decode stage: 32-bit instruction word in; opcode decoder
/// (6 -> 64), two register decoders (5 -> 32), 24 control signals from a
/// pseudo-random PLA over opcode/function bits, and sign-/zero-extended
/// immediate.
[[nodiscard]] stage_netlist build_decode_stage();

/// Builds the SimpleALU stage: 32-bit operands, 3-bit op select
/// {add, sub, and, or, xor, pass-b}; outputs result bus, carry-out and a
/// zero flag.
[[nodiscard]] stage_netlist build_simple_alu();

/// Builds the ComplexALU stage: 16x16 -> 32 array multiplier.
[[nodiscard]] stage_netlist build_complex_alu();

/// The three analyzed pipe stages, in the paper's order.
enum class pipe_stage : std::uint8_t {
    decode = 0,
    simple_alu = 1,
    complex_alu = 2,
};

/// Number of analyzed pipe stages.
inline constexpr std::size_t pipe_stage_count = 3;

/// Display name ("Decode", "SimpleALU", "ComplexALU").
[[nodiscard]] const char* pipe_stage_name(pipe_stage stage) noexcept;

/// Builds the netlist for `stage`.
[[nodiscard]] stage_netlist build_stage(pipe_stage stage);

} // namespace synts::circuit
