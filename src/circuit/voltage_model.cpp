#include "circuit/voltage_model.h"

#include <cmath>

#include "circuit/netlist.h"
#include "util/rng.h"

namespace synts::circuit {

namespace {

constexpr std::array<double, voltage_level_count> table_vdd = {1.0, 0.92, 0.86, 0.8,
                                                               0.72, 0.68, 0.65};
constexpr std::array<double, voltage_level_count> table_tnom = {1.0, 1.13, 1.27, 1.39,
                                                                1.63, 2.21, 2.63};

} // namespace

std::span<const double> paper_voltage_levels() noexcept
{
    return table_vdd;
}

std::span<const double> paper_tnom_multipliers() noexcept
{
    return table_tnom;
}

double alpha_power_scale(const alpha_power_fit& fit, double vdd) noexcept
{
    const auto law = [&fit](double v) {
        return v / std::pow(v - fit.vth, fit.alpha);
    };
    return law(vdd) / law(1.0);
}

alpha_power_fit fit_alpha_power_law()
{
    // Deterministic coarse-to-fine grid search minimizing the RMS error of
    // the normalized delay multipliers against Table 5.1.
    auto rms_for = [](double vth, double alpha) {
        const alpha_power_fit candidate{vth, alpha, 0.0};
        double total = 0.0;
        for (std::size_t i = 0; i < voltage_level_count; ++i) {
            const double predicted = alpha_power_scale(candidate, table_vdd[i]);
            const double diff = predicted - table_tnom[i];
            total += diff * diff;
        }
        return std::sqrt(total / static_cast<double>(voltage_level_count));
    };

    alpha_power_fit best{0.3, 1.3, 1e300};
    double vth_lo = 0.10;
    double vth_hi = 0.60;
    double alpha_lo = 0.8;
    double alpha_hi = 2.5;
    for (int round = 0; round < 5; ++round) {
        constexpr int steps = 40;
        for (int i = 0; i <= steps; ++i) {
            const double vth =
                vth_lo + (vth_hi - vth_lo) * static_cast<double>(i) / steps;
            if (vth >= 0.64) {
                continue; // keep V - Vth positive at the lowest table entry
            }
            for (int j = 0; j <= steps; ++j) {
                const double alpha =
                    alpha_lo + (alpha_hi - alpha_lo) * static_cast<double>(j) / steps;
                const double err = rms_for(vth, alpha);
                if (err < best.rms_error) {
                    best = {vth, alpha, err};
                }
            }
        }
        // Shrink the search box around the best point.
        const double vth_span = (vth_hi - vth_lo) * 0.2;
        const double alpha_span = (alpha_hi - alpha_lo) * 0.2;
        vth_lo = std::max(0.05, best.vth - vth_span);
        vth_hi = std::min(0.63, best.vth + vth_span);
        alpha_lo = std::max(0.5, best.alpha - alpha_span);
        alpha_hi = best.alpha + alpha_span;
    }
    return best;
}

voltage_model::voltage_model(double class_spread)
    : spread_magnitude_(class_spread)
{
    // Deterministic per-class spread in [-class_spread, +class_spread],
    // derived from the cell-kind index so experiments are reproducible.
    util::xoshiro256 rng(0xC1A55C0DEull);
    for (std::size_t k = 0; k < cell_kind_count; ++k) {
        spread_[k] = rng.uniform(-1.0, 1.0) * class_spread;
    }
    // Keep the mean deviation at zero so the aggregate tracks Table 5.1.
    double mean = 0.0;
    for (const double s : spread_) {
        mean += s;
    }
    mean /= static_cast<double>(cell_kind_count);
    for (double& s : spread_) {
        s -= mean;
    }
    if (class_spread == 0.0) {
        spread_.fill(0.0);
    }
}

double voltage_model::tnom_multiplier(double vdd) const noexcept
{
    if (vdd >= table_vdd.front()) {
        return table_tnom.front();
    }
    if (vdd <= table_vdd.back()) {
        return table_tnom.back();
    }
    for (std::size_t i = 1; i < voltage_level_count; ++i) {
        if (vdd >= table_vdd[i]) {
            const double hi_v = table_vdd[i - 1];
            const double lo_v = table_vdd[i];
            const double t = (vdd - lo_v) / (hi_v - lo_v);
            return table_tnom[i] * (1.0 - t) + table_tnom[i - 1] * t;
        }
    }
    return table_tnom.back();
}

double voltage_model::cell_scale(cell_kind kind, double vdd) const noexcept
{
    const double base = tnom_multiplier(vdd);
    const double deviation = spread_[static_cast<std::size_t>(kind)] * (1.0 - vdd);
    return base * (1.0 + deviation);
}

double voltage_model::class_spread_of(cell_kind kind) const noexcept
{
    return spread_[static_cast<std::size_t>(kind)];
}

void voltage_model::scale_gate_delays(std::span<const gate> gates,
                                      std::span<const double> nominal,
                                      std::span<double> scaled, double vdd) const
{
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        scaled[gi] = nominal[gi] * cell_scale(gates[gi].kind, vdd) /
                     cell_scale(gates[gi].kind, 1.0);
    }
}

} // namespace synts::circuit
