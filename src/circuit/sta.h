// sta.h -- static timing analysis over the combinational netlists.
//
// STA computes the topological worst-case arrival time at every net, giving
// the stage's critical-path delay. That delay *is* the nominal clock period
// t_nom of the stage at the analyzed supply: the period at which the core is
// guaranteed error-free (Section 4.1 of the paper). Timing speculation then
// runs at t_clk = r * t_nom with r < 1.

#pragma once

#include <span>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/netlist.h"

namespace synts::circuit {

/// Result of one STA run.
struct timing_report {
    double critical_delay_ps = 0.0;      ///< worst arrival over primary outputs
    std::vector<double> arrival_ps;      ///< per-net arrival, indexed by net_id
    std::vector<gate_id> critical_path;  ///< gate chain from inputs to the worst output
    net_id critical_output = no_net;     ///< primary output net with worst arrival
};

/// Static timing analyzer. Per-gate delays are supplied by the caller so the
/// same engine serves nominal analysis, voltage-scaled analysis, and
/// what-if experiments.
class static_timing_analyzer {
public:
    /// Binds the analyzer to a netlist; the netlist must outlive it.
    explicit static_timing_analyzer(const netlist& nl);

    /// Computes per-gate delays from `lib` (fanout-loaded, nominal supply).
    [[nodiscard]] std::vector<double> nominal_gate_delays(const cell_library& lib) const;

    /// Runs STA with the given per-gate delay table (one entry per gate, in
    /// gate order). Throws std::invalid_argument if sizes mismatch.
    [[nodiscard]] timing_report analyze(std::span<const double> gate_delays_ps) const;

    /// Convenience: nominal-supply STA straight from a library.
    [[nodiscard]] timing_report analyze_nominal(const cell_library& lib) const;

private:
    const netlist& nl_;
};

} // namespace synts::circuit
