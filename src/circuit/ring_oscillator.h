// ring_oscillator.h -- regenerates Table 5.1 from first principles.
//
// The paper obtains the voltage -> nominal-clock-period table by simulating
// 22 nm ring oscillators in HSPICE. We substitute an odd-length inverter
// ring whose stage delay follows the alpha-power law fitted to the published
// table; bench_table5_1 prints the regenerated multipliers next to the
// paper's values.

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/voltage_model.h"

namespace synts::circuit {

/// One measured point of the ring-oscillator sweep.
struct ring_oscillator_point {
    double vdd = 0.0;               ///< supply, volts
    double period_ps = 0.0;         ///< oscillation period at this supply
    double normalized_period = 0.0; ///< period / period(1.0 V)
};

/// Odd-stage inverter ring with alpha-power-law stage delay.
class ring_oscillator {
public:
    /// Creates a ring with `stages` inverters (must be odd and >= 3) using
    /// the given fitted delay law. Throws std::invalid_argument otherwise.
    explicit ring_oscillator(std::size_t stages, alpha_power_fit fit);

    /// Oscillation period at supply `vdd`: 2 * stages * stage_delay(vdd).
    [[nodiscard]] double period_ps(double vdd) const noexcept;

    /// Sweeps the supplied voltage levels and returns normalized periods.
    [[nodiscard]] std::vector<ring_oscillator_point>
    sweep(std::span<const double> vdd_levels) const;

    /// Number of inverter stages.
    [[nodiscard]] std::size_t stages() const noexcept { return stages_; }

private:
    std::size_t stages_;
    alpha_power_fit fit_;
    double stage_delay_nominal_ps_;
};

} // namespace synts::circuit
