#include "circuit/ring_oscillator.h"

#include <stdexcept>

namespace synts::circuit {

namespace {
// Stage delay of a 22 nm-flavored inverter driving its ring neighbor.
constexpr double inverter_stage_delay_ps = 6.9;
} // namespace

ring_oscillator::ring_oscillator(std::size_t stages, alpha_power_fit fit)
    : stages_(stages), fit_(fit), stage_delay_nominal_ps_(inverter_stage_delay_ps)
{
    if (stages < 3 || stages % 2 == 0) {
        throw std::invalid_argument("ring_oscillator: stages must be odd and >= 3");
    }
}

double ring_oscillator::period_ps(double vdd) const noexcept
{
    // A full oscillation traverses the ring twice (rise + fall).
    return 2.0 * static_cast<double>(stages_) * stage_delay_nominal_ps_ *
           alpha_power_scale(fit_, vdd);
}

std::vector<ring_oscillator_point> ring_oscillator::sweep(
    std::span<const double> vdd_levels) const
{
    std::vector<ring_oscillator_point> points;
    points.reserve(vdd_levels.size());
    const double reference = period_ps(1.0);
    for (const double vdd : vdd_levels) {
        ring_oscillator_point p;
        p.vdd = vdd;
        p.period_ps = period_ps(vdd);
        p.normalized_period = p.period_ps / reference;
        points.push_back(p);
    }
    return points;
}

} // namespace synts::circuit
