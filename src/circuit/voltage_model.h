// voltage_model.h -- supply-voltage dependence of circuit delay.
//
// The paper takes two artifacts from HSPICE + PTM 22 nm:
//   1. Table 5.1 -- nominal clock period multiplier t_nom(V) for the seven
//      supported supply levels, and
//   2. the (approximately uniform) scaling of sensitized path delays with V.
//
// This module carries the exact Table 5.1 data, an alpha-power-law fit to it
// (used by the ring-oscillator regeneration in ring_oscillator.h), and a
// per-cell-class delay scale. The per-class scale deliberately deviates from
// perfectly uniform scaling by a small spread so that the online estimator's
// single-voltage extrapolation (Section 4.3) is realistically approximate;
// set `uniform_scaling` for the ablation that removes the spread.

#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "circuit/cell_library.h"

namespace synts::circuit {

/// Number of discrete supply levels (Q in the paper's notation).
inline constexpr std::size_t voltage_level_count = 7;

/// Table 5.1: supported Vdd levels, volts, descending.
[[nodiscard]] std::span<const double> paper_voltage_levels() noexcept;

/// Table 5.1: nominal clock period multiplier at each level (1.0 at 1.0 V).
[[nodiscard]] std::span<const double> paper_tnom_multipliers() noexcept;

/// Alpha-power-law parameters d(V) proportional to V / (V - Vth)^alpha.
struct alpha_power_fit {
    double vth = 0.0;      ///< threshold voltage, volts
    double alpha = 0.0;    ///< velocity-saturation exponent
    double rms_error = 0.0;///< fit residual against Table 5.1 multipliers
};

/// Least-squares fit of the alpha-power law to Table 5.1 (grid search with
/// local refinement; deterministic).
[[nodiscard]] alpha_power_fit fit_alpha_power_law();

/// Delay multiplier of the fitted alpha-power law at supply `vdd`,
/// normalized to 1.0 at 1.0 V.
[[nodiscard]] double alpha_power_scale(const alpha_power_fit& fit, double vdd) noexcept;

/// Voltage model used by timing simulation: maps (cell class, Vdd) to a
/// delay multiplier. The average multiplier across classes tracks Table 5.1
/// exactly (piecewise-linear in V between table points); each class carries
/// a small deterministic deviation growing as (1 - V).
class voltage_model {
public:
    /// `class_spread` is the maximum relative per-class deviation at the
    /// lowest supply (default 4%); pass 0 for perfectly uniform scaling.
    explicit voltage_model(double class_spread = 0.04);

    /// Table 5.1 multiplier at `vdd` (piecewise-linear interpolation;
    /// clamped at the table ends).
    [[nodiscard]] double tnom_multiplier(double vdd) const noexcept;

    /// Delay multiplier for `kind` at `vdd`, equal to
    /// tnom_multiplier(vdd) * (1 + spread_k * (1 - vdd)).
    [[nodiscard]] double cell_scale(cell_kind kind, double vdd) const noexcept;

    /// Per-class relative spread coefficients (for reports/tests).
    [[nodiscard]] double class_spread_of(cell_kind kind) const noexcept;

    /// True when constructed with zero spread (uniform-scaling ablation).
    [[nodiscard]] bool is_uniform() const noexcept { return spread_magnitude_ == 0.0; }

    /// Scales a per-gate nominal delay table to supply `vdd` for the given
    /// netlist gates. `nominal` and `scaled` must both have one entry per
    /// gate.
    void scale_gate_delays(std::span<const struct gate> gates,
                           std::span<const double> nominal,
                           std::span<double> scaled, double vdd) const;

private:
    double spread_magnitude_;
    std::array<double, cell_kind_count> spread_{};
};

} // namespace synts::circuit
