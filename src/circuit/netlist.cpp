#include "circuit/netlist.h"

#include <stdexcept>

namespace synts::circuit {

netlist::netlist(std::string name)
    : name_(std::move(name))
{
}

net_id netlist::add_input(std::string name)
{
    if (!gates_.empty()) {
        throw std::logic_error("netlist: all inputs must be added before gates");
    }
    input_names_.push_back(std::move(name));
    fanout_.push_back(0);
    return static_cast<net_id>(net_total_++);
}

std::vector<net_id> netlist::add_input_bus(const std::string& base, std::size_t width)
{
    std::vector<net_id> nets;
    nets.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        nets.push_back(add_input(base + "[" + std::to_string(i) + "]"));
    }
    return nets;
}

net_id netlist::add_gate(cell_kind kind, std::span<const net_id> inputs)
{
    const std::size_t arity = cell_input_count(kind);
    if (inputs.size() != arity) {
        throw std::invalid_argument("netlist: arity mismatch for cell " +
                                    std::string(cell_kind_name(kind)));
    }
    if (kind == cell_kind::dff) {
        throw std::invalid_argument("netlist: DFF cells are not allowed in "
                                    "combinational netlists");
    }
    gate g;
    g.kind = kind;
    g.input_count = static_cast<std::uint8_t>(arity);
    for (std::size_t i = 0; i < arity; ++i) {
        if (inputs[i] >= net_total_) {
            throw std::invalid_argument("netlist: gate input references nonexistent net");
        }
        g.inputs[i] = inputs[i];
        ++fanout_[inputs[i]];
    }
    g.output = static_cast<net_id>(net_total_++);
    fanout_.push_back(0);
    gates_.push_back(g);
    return g.output;
}

net_id netlist::add_gate0(cell_kind kind)
{
    return add_gate(kind, {});
}

net_id netlist::add_gate1(cell_kind kind, net_id a)
{
    const std::array<net_id, 1> in{a};
    return add_gate(kind, in);
}

net_id netlist::add_gate2(cell_kind kind, net_id a, net_id b)
{
    const std::array<net_id, 2> in{a, b};
    return add_gate(kind, in);
}

net_id netlist::add_gate3(cell_kind kind, net_id a, net_id b, net_id c)
{
    const std::array<net_id, 3> in{a, b, c};
    return add_gate(kind, in);
}

void netlist::mark_output(std::string name, net_id net)
{
    if (net >= net_total_) {
        throw std::invalid_argument("netlist: output references nonexistent net");
    }
    output_names_.push_back(std::move(name));
    output_nets_.push_back(net);
    ++fanout_[net];
}

void netlist::mark_output_bus(const std::string& base, std::span<const net_id> nets)
{
    for (std::size_t i = 0; i < nets.size(); ++i) {
        mark_output(base + "[" + std::to_string(i) + "]", nets[i]);
    }
}

gate_id netlist::driver_of(net_id net) const noexcept
{
    if (net < input_names_.size()) {
        return static_cast<gate_id>(gates_.size()); // sentinel: primary input
    }
    return static_cast<gate_id>(net - input_names_.size());
}

double netlist::total_area_um2(const cell_library& lib) const noexcept
{
    double area = 0.0;
    for (const auto& g : gates_) {
        area += lib.params(g.kind).area_um2;
    }
    return area;
}

double netlist::total_leakage_nw(const cell_library& lib) const noexcept
{
    double leak = 0.0;
    for (const auto& g : gates_) {
        leak += lib.params(g.kind).leakage_nw;
    }
    return leak;
}

std::array<std::size_t, cell_kind_count> netlist::kind_histogram() const noexcept
{
    std::array<std::size_t, cell_kind_count> counts{};
    for (const auto& g : gates_) {
        ++counts[static_cast<std::size_t>(g.kind)];
    }
    return counts;
}

void netlist::validate() const
{
    const std::size_t inputs = input_names_.size();
    for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
        const gate& g = gates_[gi];
        const net_id own = static_cast<net_id>(inputs + gi);
        if (g.output != own) {
            throw std::logic_error("netlist: gate output net out of sequence");
        }
        if (g.input_count != cell_input_count(g.kind)) {
            throw std::logic_error("netlist: stored arity mismatch");
        }
        for (std::size_t i = 0; i < g.input_count; ++i) {
            if (g.inputs[i] >= own) {
                throw std::logic_error("netlist: gate reads a net it precedes "
                                       "(not topological)");
            }
        }
    }
    for (const net_id net : output_nets_) {
        if (net >= net_total_) {
            throw std::logic_error("netlist: dangling primary output");
        }
    }
}

} // namespace synts::circuit
