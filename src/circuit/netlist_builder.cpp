#include "circuit/netlist_builder.h"

#include <stdexcept>

#include "util/rng.h"

namespace synts::circuit {

full_adder_result add_full_adder(netlist& nl, net_id a, net_id b, net_id carry_in)
{
    const net_id propagate = nl.add_gate2(cell_kind::xor2, a, b);
    const net_id sum = nl.add_gate2(cell_kind::xor2, propagate, carry_in);
    const net_id generate = nl.add_gate2(cell_kind::and2, a, b);
    const net_id chain = nl.add_gate2(cell_kind::and2, propagate, carry_in);
    const net_id carry = nl.add_gate2(cell_kind::or2, generate, chain);
    return {sum, carry};
}

adder_result add_ripple_adder(netlist& nl, std::span<const net_id> a,
                              std::span<const net_id> b, net_id carry_in)
{
    if (a.size() != b.size() || a.empty()) {
        throw std::invalid_argument("add_ripple_adder: operand width mismatch");
    }
    adder_result result;
    result.sum.reserve(a.size());
    net_id carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto fa = add_full_adder(nl, a[i], b[i], carry);
        result.sum.push_back(fa.sum);
        carry = fa.carry;
    }
    result.carry_out = carry;
    return result;
}

adder_result add_kogge_stone_adder(netlist& nl, std::span<const net_id> a,
                                   std::span<const net_id> b, net_id carry_in)
{
    if (a.size() != b.size() || a.empty()) {
        throw std::invalid_argument("add_kogge_stone_adder: operand width mismatch");
    }
    const std::size_t width = a.size();

    std::vector<net_id> propagate(width);
    std::vector<net_id> generate(width);
    for (std::size_t i = 0; i < width; ++i) {
        propagate[i] = nl.add_gate2(cell_kind::xor2, a[i], b[i]);
        generate[i] = nl.add_gate2(cell_kind::and2, a[i], b[i]);
    }

    // Fold carry_in into bit 0's generate: g0' = g0 | (p0 & cin).
    const net_id cin_chain = nl.add_gate2(cell_kind::and2, propagate[0], carry_in);
    generate[0] = nl.add_gate2(cell_kind::or2, generate[0], cin_chain);

    std::vector<net_id> group_p = propagate;
    std::vector<net_id> group_g = generate;
    for (std::size_t distance = 1; distance < width; distance *= 2) {
        std::vector<net_id> next_p = group_p;
        std::vector<net_id> next_g = group_g;
        for (std::size_t i = distance; i < width; ++i) {
            const net_id carried = nl.add_gate2(cell_kind::and2, group_p[i],
                                                group_g[i - distance]);
            next_g[i] = nl.add_gate2(cell_kind::or2, group_g[i], carried);
            next_p[i] = nl.add_gate2(cell_kind::and2, group_p[i], group_p[i - distance]);
        }
        group_p = std::move(next_p);
        group_g = std::move(next_g);
    }

    adder_result result;
    result.sum.reserve(width);
    result.sum.push_back(nl.add_gate2(cell_kind::xor2, propagate[0], carry_in));
    for (std::size_t i = 1; i < width; ++i) {
        result.sum.push_back(nl.add_gate2(cell_kind::xor2, propagate[i], group_g[i - 1]));
    }
    result.carry_out = group_g[width - 1];
    return result;
}

std::vector<net_id> add_decoder(netlist& nl, std::span<const net_id> select)
{
    if (select.empty() || select.size() > 8) {
        throw std::invalid_argument("add_decoder: select width must be 1..8");
    }
    std::vector<net_id> inverted(select.size());
    for (std::size_t i = 0; i < select.size(); ++i) {
        inverted[i] = nl.add_gate1(cell_kind::inv, select[i]);
    }

    // Literal pairs: for each adjacent bit pair, pre-AND the four minterm
    // combinations; outputs then AND one product per pair (plus a literal
    // when the width is odd).
    struct pair_products {
        std::array<net_id, 4> product{}; // index = (hi_bit << 1) | lo_bit
    };
    std::vector<pair_products> pairs;
    for (std::size_t i = 0; i + 1 < select.size(); i += 2) {
        pair_products pp;
        for (int combo = 0; combo < 4; ++combo) {
            const net_id lo = (combo & 1) ? select[i] : inverted[i];
            const net_id hi = (combo & 2) ? select[i + 1] : inverted[i + 1];
            pp.product[static_cast<std::size_t>(combo)] =
                nl.add_gate2(cell_kind::and2, lo, hi);
        }
        pairs.push_back(pp);
    }
    const bool odd = (select.size() % 2) != 0;

    const std::size_t outputs = std::size_t{1} << select.size();
    std::vector<net_id> one_hot;
    one_hot.reserve(outputs);
    for (std::size_t code = 0; code < outputs; ++code) {
        std::vector<net_id> terms;
        for (std::size_t p = 0; p < pairs.size(); ++p) {
            const std::size_t combo = (code >> (2 * p)) & 3;
            terms.push_back(pairs[p].product[combo]);
        }
        if (odd) {
            const std::size_t top = select.size() - 1;
            terms.push_back((code >> top) & 1 ? select[top] : inverted[top]);
        }
        one_hot.push_back(add_and_tree(nl, terms));
    }
    return one_hot;
}

namespace {

net_id add_reduction_tree(netlist& nl, std::span<const net_id> nets, cell_kind two_in,
                          cell_kind three_in)
{
    if (nets.empty()) {
        throw std::invalid_argument("reduction tree: empty input");
    }
    std::vector<net_id> level(nets.begin(), nets.end());
    while (level.size() > 1) {
        std::vector<net_id> next;
        std::size_t i = 0;
        while (i < level.size()) {
            const std::size_t remaining = level.size() - i;
            if (remaining == 3 || (remaining > 3 && remaining % 2 == 1)) {
                next.push_back(nl.add_gate3(three_in, level[i], level[i + 1], level[i + 2]));
                i += 3;
            } else if (remaining >= 2) {
                next.push_back(nl.add_gate2(two_in, level[i], level[i + 1]));
                i += 2;
            } else {
                next.push_back(level[i]);
                i += 1;
            }
        }
        level = std::move(next);
    }
    return level.front();
}

} // namespace

net_id add_or_tree(netlist& nl, std::span<const net_id> nets)
{
    return add_reduction_tree(nl, nets, cell_kind::or2, cell_kind::or3);
}

net_id add_and_tree(netlist& nl, std::span<const net_id> nets)
{
    return add_reduction_tree(nl, nets, cell_kind::and2, cell_kind::and3);
}

std::vector<net_id> add_control_pla(netlist& nl, std::span<const net_id> inputs,
                                    std::size_t output_count, std::size_t terms_per_output,
                                    std::uint64_t seed)
{
    if (inputs.size() < 3) {
        throw std::invalid_argument("add_control_pla: need at least 3 inputs");
    }
    util::xoshiro256 rng(seed);

    std::vector<net_id> inverted(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        inverted[i] = nl.add_gate1(cell_kind::inv, inputs[i]);
    }

    std::vector<net_id> outputs;
    outputs.reserve(output_count);
    for (std::size_t o = 0; o < output_count; ++o) {
        std::vector<net_id> terms;
        terms.reserve(terms_per_output);
        for (std::size_t t = 0; t < terms_per_output; ++t) {
            const auto picks = util::sample_without_replacement(rng, inputs.size(), 3);
            std::array<net_id, 3> literals{};
            for (std::size_t l = 0; l < 3; ++l) {
                const bool positive = rng.bernoulli(0.5);
                literals[l] = positive ? inputs[picks[l]] : inverted[picks[l]];
            }
            terms.push_back(nl.add_gate3(cell_kind::and3, literals[0], literals[1],
                                         literals[2]));
        }
        outputs.push_back(add_or_tree(nl, terms));
    }
    return outputs;
}

stage_netlist build_decode_stage()
{
    stage_netlist stage;
    stage.nl = netlist("decode");
    stage.layout.instruction_bits = 32;

    netlist& nl = stage.nl;
    const std::vector<net_id> word = nl.add_input_bus("insn", 32);

    // Field split mirrors a classic RISC encoding: opcode = word[26..31],
    // rs = word[21..25], rt = word[16..20], imm = word[0..15].
    const std::vector<net_id> opcode(word.begin() + 26, word.end());
    const std::vector<net_id> rs(word.begin() + 21, word.begin() + 26);
    const std::vector<net_id> rt(word.begin() + 16, word.begin() + 21);
    const std::vector<net_id> imm(word.begin(), word.begin() + 16);

    const std::vector<net_id> opcode_one_hot = add_decoder(nl, opcode);
    const std::vector<net_id> rs_one_hot = add_decoder(nl, rs);
    const std::vector<net_id> rt_one_hot = add_decoder(nl, rt);

    // Synthesized control logic over opcode and low function bits.
    std::vector<net_id> pla_inputs(opcode);
    pla_inputs.insert(pla_inputs.end(), imm.begin(), imm.begin() + 6);
    const std::vector<net_id> controls =
        add_control_pla(nl, pla_inputs, /*output_count=*/24, /*terms_per_output=*/4,
                        /*seed=*/0x5EED0DECull);

    // Immediate extension: upper halfword = sign ? imm[15] : 0, selected by
    // the first control signal (sign- vs zero-extend).
    const net_id zero = nl.add_gate0(cell_kind::const0);
    const net_id sign = imm[15];
    std::vector<net_id> imm_ext;
    imm_ext.reserve(32);
    for (std::size_t i = 0; i < 16; ++i) {
        imm_ext.push_back(nl.add_gate1(cell_kind::buf, imm[i]));
    }
    for (std::size_t i = 16; i < 32; ++i) {
        imm_ext.push_back(nl.add_gate3(cell_kind::mux2, zero, sign, controls[0]));
    }

    // Hazard detection: rs one-hot AND rt one-hot, reduced by a *linear*
    // OR chain (the way a synthesizer maps a wide priority/bypass network
    // under area pressure). The chain is the stage's critical path, and it
    // is rarely sensitized: a toggle enters at the colliding register's
    // position and ripples to the end, so low-numbered register collisions
    // sensitize the deepest paths. This produces the gradually rising,
    // thread-dependent Decode error curves of Figs. 6.13/6.14.
    std::vector<net_id> match_bits;
    match_bits.reserve(32);
    for (std::size_t i = 0; i < 32; ++i) {
        match_bits.push_back(nl.add_gate2(cell_kind::and2, rs_one_hot[i], rt_one_hot[i]));
    }
    net_id same_register = match_bits[0];
    for (std::size_t i = 1; i < 32; ++i) {
        same_register = nl.add_gate2(cell_kind::or2, same_register, match_bits[i]);
    }

    // Operand-forwarding enables gated by the hazard flag: extends the
    // rare deep path by one level and fans it out to visible outputs.
    std::vector<net_id> forward_enable;
    forward_enable.reserve(16);
    for (std::size_t i = 0; i < 16; ++i) {
        forward_enable.push_back(nl.add_gate2(cell_kind::and2, same_register, imm[i]));
    }

    nl.mark_output_bus("opcode_1h", opcode_one_hot);
    nl.mark_output_bus("rs_1h", rs_one_hot);
    nl.mark_output_bus("rt_1h", rt_one_hot);
    nl.mark_output_bus("ctl", controls);
    nl.mark_output_bus("imm_ext", imm_ext);
    nl.mark_output_bus("fwd_en", forward_enable);
    nl.mark_output("same_register", same_register);

    nl.validate();
    return stage;
}

stage_netlist build_simple_alu()
{
    stage_netlist stage;
    stage.nl = netlist("simple_alu");
    stage.layout.operand_a_bits = 32;
    stage.layout.operand_b_bits = 32;
    stage.layout.opcode_bits = 3;

    netlist& nl = stage.nl;
    const std::vector<net_id> a = nl.add_input_bus("a", 32);
    const std::vector<net_id> b = nl.add_input_bus("b", 32);
    const std::vector<net_id> op = nl.add_input_bus("op", 3);

    // op encoding: op[0] = subtract, op[1..2] select {arith, and, or, xor}.
    const net_id subtract = op[0];

    // Adder operand: b ^ subtract, carry-in = subtract.
    std::vector<net_id> b_adj;
    b_adj.reserve(32);
    for (std::size_t i = 0; i < 32; ++i) {
        b_adj.push_back(nl.add_gate2(cell_kind::xor2, b[i], subtract));
    }
    const adder_result adder = add_ripple_adder(nl, a, b_adj, subtract);

    std::vector<net_id> result;
    result.reserve(32);
    for (std::size_t i = 0; i < 32; ++i) {
        const net_id bit_and = nl.add_gate2(cell_kind::and2, a[i], b[i]);
        const net_id bit_or = nl.add_gate2(cell_kind::or2, a[i], b[i]);
        const net_id bit_xor = nl.add_gate2(cell_kind::xor2, a[i], b[i]);
        // 4:1 select via three mux2 gates: ((arith, and), (or, xor)).
        const net_id lo = nl.add_gate3(cell_kind::mux2, adder.sum[i], bit_and, op[1]);
        const net_id hi = nl.add_gate3(cell_kind::mux2, bit_or, bit_xor, op[1]);
        result.push_back(nl.add_gate3(cell_kind::mux2, lo, hi, op[2]));
    }

    // Zero flag: NOR-reduction of the result.
    const net_id any_set = add_or_tree(nl, result);
    const net_id zero_flag = nl.add_gate1(cell_kind::inv, any_set);

    nl.mark_output_bus("result", result);
    nl.mark_output("carry_out", adder.carry_out);
    nl.mark_output("zero", zero_flag);

    nl.validate();
    return stage;
}

stage_netlist build_complex_alu()
{
    stage_netlist stage;
    stage.nl = netlist("complex_alu");
    stage.layout.operand_a_bits = 16;
    stage.layout.operand_b_bits = 16;

    netlist& nl = stage.nl;
    const std::vector<net_id> a = nl.add_input_bus("a", 16);
    const std::vector<net_id> b = nl.add_input_bus("b", 16);
    constexpr std::size_t width = 16;

    // Partial products.
    std::vector<std::vector<net_id>> pp(width, std::vector<net_id>(width));
    for (std::size_t i = 0; i < width; ++i) {
        for (std::size_t j = 0; j < width; ++j) {
            pp[j][i] = nl.add_gate2(cell_kind::and2, a[i], b[j]);
        }
    }

    // Carry-save array: row r adds pp[r] into the running sum.
    const net_id zero = nl.add_gate0(cell_kind::const0);
    std::vector<net_id> product;
    product.reserve(2 * width);

    std::vector<net_id> row_sum(pp[0]);   // current partial sums, bits i..i+width-1
    std::vector<net_id> row_carry(width, zero);

    product.push_back(row_sum[0]);
    for (std::size_t r = 1; r < width; ++r) {
        std::vector<net_id> next_sum(width);
        std::vector<net_id> next_carry(width);
        for (std::size_t i = 0; i < width; ++i) {
            const net_id sum_in = (i + 1 < width) ? row_sum[i + 1] : zero;
            const auto fa = add_full_adder(nl, sum_in, pp[r][i], row_carry[i]);
            next_sum[i] = fa.sum;
            next_carry[i] = fa.carry;
        }
        row_sum = std::move(next_sum);
        row_carry = std::move(next_carry);
        product.push_back(row_sum[0]);
    }

    // Final row: ripple the remaining sum/carry vectors together.
    std::vector<net_id> final_a(row_sum.begin() + 1, row_sum.end());
    final_a.push_back(zero);
    const adder_result top = add_ripple_adder(nl, final_a, row_carry, zero);
    for (const net_id bit : top.sum) {
        product.push_back(bit);
    }

    nl.mark_output_bus("product", product);

    nl.validate();
    return stage;
}

const char* pipe_stage_name(pipe_stage stage) noexcept
{
    switch (stage) {
    case pipe_stage::decode:
        return "Decode";
    case pipe_stage::simple_alu:
        return "SimpleALU";
    case pipe_stage::complex_alu:
        return "ComplexALU";
    }
    return "?";
}

stage_netlist build_stage(pipe_stage stage)
{
    switch (stage) {
    case pipe_stage::decode:
        return build_decode_stage();
    case pipe_stage::simple_alu:
        return build_simple_alu();
    case pipe_stage::complex_alu:
        return build_complex_alu();
    }
    throw std::invalid_argument("build_stage: unknown stage");
}

} // namespace synts::circuit
