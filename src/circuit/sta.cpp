#include "circuit/sta.h"

#include <algorithm>
#include <stdexcept>

namespace synts::circuit {

static_timing_analyzer::static_timing_analyzer(const netlist& nl)
    : nl_(nl)
{
}

std::vector<double> static_timing_analyzer::nominal_gate_delays(const cell_library& lib) const
{
    const auto gates = nl_.gates();
    const auto fanout = nl_.fanout_counts();
    std::vector<double> delays(gates.size(), 0.0);
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        delays[gi] = lib.delay_ps(gates[gi].kind, fanout[gates[gi].output]);
    }
    return delays;
}

timing_report static_timing_analyzer::analyze(std::span<const double> gate_delays_ps) const
{
    const auto gates = nl_.gates();
    if (gate_delays_ps.size() != gates.size()) {
        throw std::invalid_argument("static_timing_analyzer: delay table size mismatch");
    }

    timing_report report;
    report.arrival_ps.assign(nl_.net_count(), 0.0);
    // Track, per gate, which input pin determined the arrival (for path
    // recovery).
    std::vector<net_id> worst_input(gates.size(), no_net);

    const std::size_t input_count = nl_.input_count();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const gate& g = gates[gi];
        double worst = 0.0;
        net_id worst_net = no_net;
        for (std::size_t i = 0; i < g.input_count; ++i) {
            const double t = report.arrival_ps[g.inputs[i]];
            if (worst_net == no_net || t > worst) {
                worst = t;
                worst_net = g.inputs[i];
            }
        }
        worst_input[gi] = worst_net;
        report.arrival_ps[g.output] = worst + gate_delays_ps[gi];
    }

    for (const net_id out : nl_.output_nets()) {
        if (report.critical_output == no_net ||
            report.arrival_ps[out] > report.critical_delay_ps) {
            report.critical_delay_ps = report.arrival_ps[out];
            report.critical_output = out;
        }
    }

    // Recover the critical path by walking worst inputs back to a primary
    // input.
    net_id cursor = report.critical_output;
    while (cursor != no_net && cursor >= input_count) {
        const gate_id gi = static_cast<gate_id>(cursor - input_count);
        report.critical_path.push_back(gi);
        cursor = worst_input[gi];
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
    return report;
}

timing_report static_timing_analyzer::analyze_nominal(const cell_library& lib) const
{
    const auto delays = nominal_gate_delays(lib);
    return analyze(delays);
}

} // namespace synts::circuit
