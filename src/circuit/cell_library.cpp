#include "circuit/cell_library.h"

namespace synts::circuit {

std::string_view cell_kind_name(cell_kind kind) noexcept
{
    switch (kind) {
    case cell_kind::const0:
        return "CONST0";
    case cell_kind::const1:
        return "CONST1";
    case cell_kind::buf:
        return "BUF";
    case cell_kind::inv:
        return "INV";
    case cell_kind::and2:
        return "AND2";
    case cell_kind::or2:
        return "OR2";
    case cell_kind::nand2:
        return "NAND2";
    case cell_kind::nor2:
        return "NOR2";
    case cell_kind::xor2:
        return "XOR2";
    case cell_kind::xnor2:
        return "XNOR2";
    case cell_kind::and3:
        return "AND3";
    case cell_kind::or3:
        return "OR3";
    case cell_kind::nand3:
        return "NAND3";
    case cell_kind::nor3:
        return "NOR3";
    case cell_kind::aoi21:
        return "AOI21";
    case cell_kind::oai21:
        return "OAI21";
    case cell_kind::mux2:
        return "MUX2";
    case cell_kind::dff:
        return "DFF";
    }
    return "?";
}

bool evaluate_cell(cell_kind kind, std::span<const bool> inputs) noexcept
{
    const bool a = !inputs.empty() && inputs[0];
    const bool b = inputs.size() > 1 && inputs[1];
    const bool c = inputs.size() > 2 && inputs[2];
    switch (kind) {
    case cell_kind::const0:
        return false;
    case cell_kind::const1:
        return true;
    case cell_kind::buf:
    case cell_kind::dff:
        return a;
    case cell_kind::inv:
        return !a;
    case cell_kind::and2:
        return a && b;
    case cell_kind::or2:
        return a || b;
    case cell_kind::nand2:
        return !(a && b);
    case cell_kind::nor2:
        return !(a || b);
    case cell_kind::xor2:
        return a != b;
    case cell_kind::xnor2:
        return a == b;
    case cell_kind::and3:
        return a && b && c;
    case cell_kind::or3:
        return a || b || c;
    case cell_kind::nand3:
        return !(a && b && c);
    case cell_kind::nor3:
        return !(a || b || c);
    case cell_kind::aoi21:
        return !((a && b) || c);
    case cell_kind::oai21:
        return !((a || b) && c);
    case cell_kind::mux2:
        return c ? b : a;
    }
    return false;
}

std::uint64_t evaluate_cell_word(cell_kind kind, std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) noexcept
{
    switch (kind) {
    case cell_kind::const0:
        return 0;
    case cell_kind::const1:
        return ~0ull;
    case cell_kind::buf:
    case cell_kind::dff:
        return a;
    case cell_kind::inv:
        return ~a;
    case cell_kind::and2:
        return a & b;
    case cell_kind::or2:
        return a | b;
    case cell_kind::nand2:
        return ~(a & b);
    case cell_kind::nor2:
        return ~(a | b);
    case cell_kind::xor2:
        return a ^ b;
    case cell_kind::xnor2:
        return ~(a ^ b);
    case cell_kind::and3:
        return a & b & c;
    case cell_kind::or3:
        return a | b | c;
    case cell_kind::nand3:
        return ~(a & b & c);
    case cell_kind::nor3:
        return ~(a | b | c);
    case cell_kind::aoi21:
        return ~((a & b) | c);
    case cell_kind::oai21:
        return ~((a | b) & c);
    case cell_kind::mux2:
        return (c & b) | (~c & a);
    }
    return 0;
}

cell_library cell_library::standard_22nm()
{
    cell_library lib;
    auto set = [&lib](cell_kind kind, double delay, double load, double area, double cap,
                      double leak, double energy) {
        lib.params_[static_cast<std::size_t>(kind)] =
            cell_params{delay, load, area, cap, leak, energy};
    };

    // Ratios follow familiar standard-cell scaling: inverter fastest,
    // XOR/MUX slowest among 2-input cells, 3-input cells slower than
    // 2-input, complex AOI/OAI between NAND and XOR.
    //            kind               delay  load  area   cap   leak  energy
    set(cell_kind::const0, /*ps*/ 0.0, 0.0, 0.00, 0.0, 0.0, 0.00);
    set(cell_kind::const1, /*ps*/ 0.0, 0.0, 0.00, 0.0, 0.0, 0.00);
    set(cell_kind::buf, /*    */ 9.0, 1.0, 0.29, 0.8, 1.1, 0.45);
    set(cell_kind::inv, /*    */ 6.0, 0.9, 0.20, 0.7, 1.0, 0.32);
    set(cell_kind::and2, /*   */ 13.0, 1.1, 0.39, 0.9, 1.6, 0.62);
    set(cell_kind::or2, /*    */ 13.5, 1.1, 0.39, 0.9, 1.6, 0.63);
    set(cell_kind::nand2, /*  */ 9.5, 1.0, 0.29, 0.9, 1.3, 0.50);
    set(cell_kind::nor2, /*   */ 10.5, 1.0, 0.29, 0.9, 1.3, 0.52);
    set(cell_kind::xor2, /*   */ 18.0, 1.3, 0.59, 1.2, 2.4, 0.95);
    set(cell_kind::xnor2, /*  */ 18.5, 1.3, 0.59, 1.2, 2.4, 0.96);
    set(cell_kind::and3, /*   */ 16.0, 1.2, 0.49, 1.0, 2.0, 0.78);
    set(cell_kind::or3, /*    */ 16.5, 1.2, 0.49, 1.0, 2.0, 0.80);
    set(cell_kind::nand3, /*  */ 12.5, 1.1, 0.39, 1.0, 1.7, 0.64);
    set(cell_kind::nor3, /*   */ 14.0, 1.1, 0.39, 1.0, 1.7, 0.66);
    set(cell_kind::aoi21, /*  */ 13.0, 1.1, 0.44, 1.0, 1.8, 0.68);
    set(cell_kind::oai21, /*  */ 13.5, 1.1, 0.44, 1.0, 1.8, 0.69);
    set(cell_kind::mux2, /*   */ 17.0, 1.3, 0.54, 1.1, 2.2, 0.90);
    set(cell_kind::dff, /*    */ 32.0, 1.2, 1.47, 1.4, 4.5, 2.40);
    return lib;
}

} // namespace synts::circuit
