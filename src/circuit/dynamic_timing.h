// dynamic_timing.h -- per-vector sensitized-path delay simulation.
//
// This is the reproduction's stand-in for gate-level dynamic timing analysis
// of the synthesized pipe stages: for every consecutive pair of input
// vectors, an event-driven pass computes when each toggling net settles, and
// the vector's *sensitized delay* is the settle time of the latest-toggling
// primary output. A timing error occurs at clock period t_clk when the
// sensitized delay exceeds t_clk -- exactly the err(r) = P(delay > r * t_nom)
// relation the paper characterizes (Fig. 3.5).
//
// The simulator evaluates all requested voltage corners in one topological
// pass so cross-voltage delay traces stay sample-aligned. Two stepping
// modes share one state:
//
//   * step()       -- the scalar reference walk: one input vector, one
//                     functional pass, delay propagation over toggled gates;
//   * step_batch() -- the vectorized hot path: up to 64 consecutive input
//                     vectors packed one bit-lane per vector into a
//                     std::uint64_t word per net. The functional pass and
//                     toggle derivation run word-parallel (one bitwise
//                     evaluate_cell_word per gate covers all lanes), then
//                     delay propagation visits, per lane, only the gates
//                     whose toggle bit is set. Per-corner arithmetic order
//                     is identical to step(), so results are bit-identical
//                     (pinned by tests/test_circuit_dynamic_timing_batch).
//
// Timing data is laid out corner-minor ("SoA"): gate delays as
// [gate][corner] and per-net toggle times as [net][corner], so the
// per-gate corner loop is one contiguous add/max sweep the compiler can
// auto-vectorize.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/netlist.h"
#include "circuit/voltage_model.h"

namespace synts::circuit {

/// Precomputed per-corner timing of one netlist: supply, STA critical-path
/// delay (the nominal period), and per-gate delays. Building the tables
/// runs the static timing analysis once per corner -- the expensive part of
/// simulator construction -- so callers that spin up many simulators over
/// the same netlist (the per-(thread, interval) characterization cells)
/// build one set and share it.
struct timing_corner_tables {
    std::vector<double> vdd;               ///< [corner]
    std::vector<double> nominal_period_ps; ///< [corner]
    /// Gate delays in corner-minor layout: [gate * corner_count() + corner].
    /// The transpose (vs the historical [corner][gate]) keeps one gate's
    /// corners contiguous -- the inner loop of both stepping modes.
    std::vector<double> gate_delay_ps;

    /// Number of voltage corners.
    [[nodiscard]] std::size_t corner_count() const noexcept { return vdd.size(); }

    /// Per-corner delays of gate `g` (contiguous, size corner_count()).
    [[nodiscard]] std::span<const double> gate_delays(gate_id g) const noexcept
    {
        return std::span<const double>(gate_delay_ps)
            .subspan(static_cast<std::size_t>(g) * vdd.size(), vdd.size());
    }
};

/// Runs the STA and builds the shared tables for every supply level in
/// `vdd_levels` (throws std::invalid_argument when empty).
[[nodiscard]] std::shared_ptr<const timing_corner_tables>
make_corner_tables(const netlist& nl, const cell_library& lib, const voltage_model& vm,
                   std::span<const double> vdd_levels);

/// Multi-corner dynamic timing simulator bound to one netlist.
class dynamic_timing_simulator {
public:
    /// Maximum number of input vectors one step_batch call evaluates (the
    /// lane width of the bit-parallel functional pass).
    static constexpr std::size_t max_batch_lanes = 64;

    /// Binds to `nl` (which must outlive the simulator) and prepares delay
    /// tables for every supply level in `vdd_levels`. Convenience overload:
    /// pays the per-corner STA; use the tables overload to amortize it.
    dynamic_timing_simulator(const netlist& nl, const cell_library& lib,
                             const voltage_model& vm, std::span<const double> vdd_levels);

    /// Binds to `nl` sharing precomputed tables (which must describe `nl`):
    /// no STA runs, so construction is cheap enough for one simulator per
    /// characterization chunk.
    dynamic_timing_simulator(const netlist& nl,
                             std::shared_ptr<const timing_corner_tables> tables);

    /// Number of voltage corners.
    [[nodiscard]] std::size_t corner_count() const noexcept
    {
        return tables_->vdd.size();
    }

    /// Supply of corner `c`.
    [[nodiscard]] double corner_vdd(std::size_t c) const noexcept
    {
        return tables_->vdd[c];
    }

    /// STA critical-path delay (the stage's nominal period t_nom) at
    /// corner `c`.
    [[nodiscard]] double nominal_period_ps(std::size_t c) const noexcept
    {
        return tables_->nominal_period_ps[c];
    }

    /// Clears all state to the all-zero vector. The first step after a
    /// reset measures the transition from that baseline. Construction
    /// leaves the simulator in exactly this state; reset() exists for
    /// reuse and owns the baseline contract (values and toggle flags zero;
    /// the per-net settle-time scratch is intentionally NOT re-cleared --
    /// stale entries are unreachable because every read is guarded by a
    /// toggle flag set in the same step).
    void reset();

    /// Applies the next input vector (size must equal input_count of the
    /// netlist) and writes the sensitized delay at every corner into
    /// `out_delay_ps` (size corner_count). Returns the worst corner delay.
    double step(std::span<const bool> inputs, std::span<double> out_delay_ps);

    /// Applies `lane_count` (1 .. max_batch_lanes) consecutive input
    /// vectors in one pass. `input_words` has one word per primary input
    /// (size input_count of the netlist); bit j of input_words[i] is input
    /// i of the j-th vector. Delays are written corner-major:
    /// out_delay_ps[c * lane_count + j] is the sensitized delay of vector
    /// j at corner c (size corner_count * lane_count), so each corner's
    /// lane run is contiguous for bulk histogram insertion. The simulator
    /// ends in exactly the state `lane_count` scalar step() calls would
    /// leave, and every delay is bit-identical to the scalar walk.
    void step_batch(std::span<const std::uint64_t> input_words, std::size_t lane_count,
                    std::span<double> out_delay_ps);

    /// Functional value of primary output `i` after the latest step.
    [[nodiscard]] bool output_value(std::size_t i) const noexcept;

    /// Functional values of all nets (for debugging/tests).
    [[nodiscard]] std::span<const std::uint8_t> net_values() const noexcept
    {
        return values_;
    }

private:
    const netlist& nl_;
    std::shared_ptr<const timing_corner_tables> tables_;
    std::vector<std::uint8_t> values_;  ///< per net, current value
    std::vector<std::uint8_t> changed_; ///< per net, toggled in current step
    std::vector<double> toggle_ps_;     ///< [net * corner_count + corner]
    std::vector<double> latest_ps_;     ///< per corner scratch (size corners)
    /// Batch-mode scratch, sized lazily on the first step_batch call so
    /// scalar-only simulators never pay for it.
    std::vector<std::uint64_t> value_words_;  ///< per net, lane values
    std::vector<std::uint64_t> toggle_words_; ///< per net, lane toggle masks
};

} // namespace synts::circuit
