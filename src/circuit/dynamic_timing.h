// dynamic_timing.h -- per-vector sensitized-path delay simulation.
//
// This is the reproduction's stand-in for gate-level dynamic timing analysis
// of the synthesized pipe stages: for every consecutive pair of input
// vectors, an event-driven pass computes when each toggling net settles, and
// the vector's *sensitized delay* is the settle time of the latest-toggling
// primary output. A timing error occurs at clock period t_clk when the
// sensitized delay exceeds t_clk -- exactly the err(r) = P(delay > r * t_nom)
// relation the paper characterizes (Fig. 3.5).
//
// The simulator evaluates all requested voltage corners in one topological
// pass so cross-voltage delay traces stay sample-aligned.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuit/cell_library.h"
#include "circuit/netlist.h"
#include "circuit/voltage_model.h"

namespace synts::circuit {

/// Precomputed per-corner timing of one netlist: supply, STA critical-path
/// delay (the nominal period), and per-gate delays. Building the tables
/// runs the static timing analysis once per corner -- the expensive part of
/// simulator construction -- so callers that spin up many simulators over
/// the same netlist (the per-(thread, interval) characterization cells)
/// build one set and share it.
struct timing_corner_tables {
    std::vector<double> vdd;                        ///< [corner]
    std::vector<double> nominal_period_ps;          ///< [corner]
    std::vector<std::vector<double>> gate_delay_ps; ///< [corner][gate]
};

/// Runs the STA and builds the shared tables for every supply level in
/// `vdd_levels` (throws std::invalid_argument when empty).
[[nodiscard]] std::shared_ptr<const timing_corner_tables>
make_corner_tables(const netlist& nl, const cell_library& lib, const voltage_model& vm,
                   std::span<const double> vdd_levels);

/// Multi-corner dynamic timing simulator bound to one netlist.
class dynamic_timing_simulator {
public:
    /// Binds to `nl` (which must outlive the simulator) and prepares delay
    /// tables for every supply level in `vdd_levels`. Convenience overload:
    /// pays the per-corner STA; use the tables overload to amortize it.
    dynamic_timing_simulator(const netlist& nl, const cell_library& lib,
                             const voltage_model& vm, std::span<const double> vdd_levels);

    /// Binds to `nl` sharing precomputed tables (which must describe `nl`):
    /// no STA runs, so construction is cheap enough for one simulator per
    /// (thread, interval) characterization cell.
    dynamic_timing_simulator(const netlist& nl,
                             std::shared_ptr<const timing_corner_tables> tables);

    /// Number of voltage corners.
    [[nodiscard]] std::size_t corner_count() const noexcept
    {
        return tables_->vdd.size();
    }

    /// Supply of corner `c`.
    [[nodiscard]] double corner_vdd(std::size_t c) const noexcept
    {
        return tables_->vdd[c];
    }

    /// STA critical-path delay (the stage's nominal period t_nom) at
    /// corner `c`.
    [[nodiscard]] double nominal_period_ps(std::size_t c) const noexcept
    {
        return tables_->nominal_period_ps[c];
    }

    /// Clears all state to the all-zero vector. The first step after a
    /// reset measures the transition from that baseline.
    void reset();

    /// Applies the next input vector (size must equal input_count of the
    /// netlist) and writes the sensitized delay at every corner into
    /// `out_delay_ps` (size corner_count). Returns the worst corner delay.
    double step(std::span<const bool> inputs, std::span<double> out_delay_ps);

    /// Functional value of primary output `i` after the latest step.
    [[nodiscard]] bool output_value(std::size_t i) const noexcept;

    /// Functional values of all nets (for debugging/tests).
    [[nodiscard]] std::span<const std::uint8_t> net_values() const noexcept
    {
        return values_;
    }

private:
    const netlist& nl_;
    std::shared_ptr<const timing_corner_tables> tables_;
    std::vector<std::uint8_t> values_;  ///< per net, current value
    std::vector<std::uint8_t> changed_; ///< per net, toggled in current step
    std::vector<double> toggle_ps_;     ///< [corner * net_count + net]
};

} // namespace synts::circuit
