#include "obs/health.h"

#include <ostream>

namespace synts::obs {

health_monitor::health_monitor(std::string metric, const latency_histogram& hist,
                               counter& outliers, options opts)
    : metric_(std::move(metric)), hist_(&hist), outliers_(&outliers), opts_(opts)
{
    if (opts_.refresh_interval == 0) {
        opts_.refresh_interval = 1;
    }
    if (opts_.capacity == 0) {
        opts_.capacity = 1;
    }
}

bool health_monitor::is_outlier(std::uint64_t value_ns) noexcept
{
    const std::uint64_t note = notes_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t threshold = threshold_.load(std::memory_order_relaxed);
    if (threshold == 0 || note % opts_.refresh_interval == 0) {
        // Refresh is racy by design: concurrent refreshers derive the same
        // (or an adjacent) threshold from the same histogram; last store
        // wins and every candidate is valid.
        if (hist_->total() >= opts_.min_samples) {
            threshold = static_cast<std::uint64_t>(
                opts_.k * static_cast<double>(hist_->percentile(0.99)));
            threshold_.store(threshold, std::memory_order_relaxed);
        }
    }
    return threshold != 0 && value_ns > threshold;
}

void health_monitor::log(std::uint64_t value_ns, std::string detail)
{
    outliers_->add(1);
    health_event event;
    event.t_ns = now_ns();
    event.value_ns = value_ns;
    event.threshold_ns = threshold_.load(std::memory_order_relaxed);
    event.detail = std::move(detail);

    const util::mutex_lock lock(mutex_);
    if (events_.size() >= opts_.capacity) {
        events_.erase(events_.begin());
        ++dropped_;
    }
    events_.push_back(std::move(event));
}

std::vector<health_event> health_monitor::events() const
{
    const util::mutex_lock lock(mutex_);
    return events_;
}

std::uint64_t health_monitor::event_count() const
{
    const util::mutex_lock lock(mutex_);
    return dropped_ + events_.size();
}

void health_monitor::write_log(std::ostream& out) const
{
    const util::mutex_lock lock(mutex_);
    if (dropped_ > 0) {
        out << "... " << dropped_ << " older slow-cell events dropped\n";
    }
    for (const health_event& e : events_) {
        out << "SLOW " << metric_ << ' ' << e.value_ns << "ns > " << opts_.k
            << "x p99 (threshold " << e.threshold_ns << "ns): " << e.detail << '\n';
    }
}

health_monitor& health_monitor::cell_monitor()
{
    static health_monitor monitor(
        "characterize.cell_ns",
        metrics_registry::global().histogram_at("characterize.cell_ns"),
        metrics_registry::global().counter_at("health.slow_cells"));
    return monitor;
}

} // namespace synts::obs
