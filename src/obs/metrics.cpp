#include "obs/metrics.h"

#include "util/hashing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <thread>

namespace synts::obs {

namespace {

std::atomic<bool> telemetry_enabled{false};

/// CSV/table cells never need escaping (metric names are [a-z0-9._]), but
/// JSON strings are escaped anyway so the emitter is safe for any name.
std::string json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream esc;
                esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                    << static_cast<int>(static_cast<unsigned char>(c));
                out += esc.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char* kind_token(metric_sample::kind k)
{
    switch (k) {
    case metric_sample::kind::counter: return "counter";
    case metric_sample::kind::gauge: return "gauge";
    case metric_sample::kind::histogram: return "histogram";
    }
    return "unknown";
}

/// OpenMetrics metric name: `synts_` prefix, [a-zA-Z0-9_] body (dots and
/// any other byte become '_').
std::string openmetrics_name(std::string_view name)
{
    std::string out = "synts_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

bool enabled() noexcept { return telemetry_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept
{
    telemetry_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t thread_stripe() noexcept
{
    // Mixing the thread-id hash decorrelates consecutive ids (libstdc++'s
    // std::hash<thread::id> is typically the identity over the pthread
    // handle, which would pile adjacent threads onto adjacent stripes).
    thread_local const std::size_t stripe = static_cast<std::size_t>(
        util::hash_mix(std::hash<std::thread::id>{}(std::this_thread::get_id()),
                       0x9E3779B97F4A7C15ull) &
        (counter_stripe_count - 1));
    return stripe;
}

std::uint64_t latency_histogram::percentile(double q) const noexcept
{
    const std::uint64_t n = total();
    if (n == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<std::uint64_t>(rank, 1, n);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        cumulative += count_at(b);
        if (cumulative >= rank) {
            return bucket_lower_bound(b);
        }
    }
    // Unreachable once cumulative == total(), but racing writers can make
    // total() read ahead of the bucket sums; fall back to the max bucket.
    for (std::size_t b = bucket_count; b-- > 0;) {
        if (count_at(b) != 0) {
            return bucket_lower_bound(b);
        }
    }
    return 0;
}

void latency_histogram::reset() noexcept
{
    for (stripe& s : stripes_) {
        for (std::atomic<std::uint64_t>& bucket : s.buckets) {
            bucket.store(0, std::memory_order_relaxed);
        }
    }
    for (padded_total& t : totals_) {
        t.value.store(0, std::memory_order_relaxed);
    }
}

counter& metrics_registry::counter_at(std::string_view name)
{
    const util::mutex_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<counter>()).first;
    }
    return *it->second;
}

gauge& metrics_registry::gauge_at(std::string_view name)
{
    const util::mutex_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
    }
    return *it->second;
}

latency_histogram& metrics_registry::histogram_at(std::string_view name)
{
    const util::mutex_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), std::make_unique<latency_histogram>())
                 .first;
    }
    return *it->second;
}

std::vector<metric_sample> metrics_registry::snapshot() const
{
    const util::mutex_lock lock(mutex_);
    std::vector<metric_sample> samples;
    samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
        metric_sample s;
        s.name = name;
        s.type = metric_sample::kind::counter;
        s.count = c->value();
        samples.push_back(std::move(s));
    }
    for (const auto& [name, g] : gauges_) {
        metric_sample s;
        s.name = name;
        s.type = metric_sample::kind::gauge;
        s.level = g->value();
        samples.push_back(std::move(s));
    }
    for (const auto& [name, h] : histograms_) {
        metric_sample s;
        s.name = name;
        s.type = metric_sample::kind::histogram;
        s.count = h->total();
        s.p50 = h->percentile(0.50);
        s.p95 = h->percentile(0.95);
        s.p99 = h->percentile(0.99);
        s.max = h->max_value();
        samples.push_back(std::move(s));
    }
    // The three per-kind maps are each name-ordered; one merge keeps the
    // overall snapshot name-ordered regardless of instrument kind.
    std::sort(samples.begin(), samples.end(),
              [](const metric_sample& a, const metric_sample& b) { return a.name < b.name; });
    return samples;
}

void metrics_registry::reset()
{
    const util::mutex_lock lock(mutex_);
    for (auto& [name, c] : counters_) {
        c->reset();
    }
    for (auto& [name, g] : gauges_) {
        g->reset();
    }
    for (auto& [name, h] : histograms_) {
        h->reset();
    }
}

metrics_registry& metrics_registry::global()
{
    static metrics_registry registry;
    return registry;
}

std::string render_openmetrics(const std::vector<metric_sample>& samples)
{
    std::ostringstream out;
    for (const metric_sample& s : samples) {
        const std::string name = openmetrics_name(s.name);
        switch (s.type) {
        case metric_sample::kind::counter:
            out << "# TYPE " << name << " counter\n";
            out << name << "_total " << s.count << '\n';
            break;
        case metric_sample::kind::gauge:
            out << "# TYPE " << name << " gauge\n";
            out << name << ' ' << s.level << '\n';
            break;
        case metric_sample::kind::histogram:
            out << "# TYPE " << name << " summary\n";
            out << name << "{quantile=\"0.5\"} " << s.p50 << '\n';
            out << name << "{quantile=\"0.95\"} " << s.p95 << '\n';
            out << name << "{quantile=\"0.99\"} " << s.p99 << '\n';
            out << name << "_count " << s.count << '\n';
            break;
        }
    }
    out << "# EOF\n";
    return out.str();
}

std::string render_metrics(const std::vector<metric_sample>& samples,
                           metrics_format format)
{
    if (format == metrics_format::prom) {
        return render_openmetrics(samples);
    }
    std::ostringstream out;
    switch (format) {
    case metrics_format::prom: // handled above; keeps the switch exhaustive
        break;
    case metrics_format::csv: {
        out << "name,type,value,count,p50_ns,p95_ns,p99_ns,max_ns\n";
        for (const metric_sample& s : samples) {
            out << s.name << ',' << kind_token(s.type) << ',';
            if (s.type == metric_sample::kind::gauge) {
                out << s.level;
            } else {
                out << s.count;
            }
            out << ',';
            if (s.type == metric_sample::kind::histogram) {
                out << s.count << ',' << s.p50 << ',' << s.p95 << ',' << s.p99 << ','
                    << s.max;
            } else {
                out << ",,,,";
            }
            out << '\n';
        }
        break;
    }
    case metrics_format::json: {
        out << "{\n";
        bool first = true;
        for (const metric_sample& s : samples) {
            if (!first) {
                out << ",\n";
            }
            first = false;
            out << "  \"" << json_escape(s.name) << "\": {\"type\": \""
                << kind_token(s.type) << "\", ";
            switch (s.type) {
            case metric_sample::kind::counter:
                out << "\"value\": " << s.count;
                break;
            case metric_sample::kind::gauge:
                out << "\"value\": " << s.level;
                break;
            case metric_sample::kind::histogram:
                out << "\"count\": " << s.count << ", \"p50_ns\": " << s.p50
                    << ", \"p95_ns\": " << s.p95 << ", \"p99_ns\": " << s.p99
                    << ", \"max_ns\": " << s.max;
                break;
            }
            out << "}";
        }
        out << "\n}\n";
        break;
    }
    case metrics_format::table: {
        std::size_t name_width = 4; // "name"
        for (const metric_sample& s : samples) {
            name_width = std::max(name_width, s.name.size());
        }
        out << std::left << std::setw(static_cast<int>(name_width)) << "name"
            << std::right << "  " << std::setw(10) << "type" << std::setw(14) << "value"
            << std::setw(12) << "p50_ns" << std::setw(12) << "p95_ns" << std::setw(12)
            << "p99_ns" << std::setw(12) << "max_ns" << '\n';
        for (const metric_sample& s : samples) {
            out << std::left << std::setw(static_cast<int>(name_width)) << s.name
                << std::right << "  " << std::setw(10) << kind_token(s.type);
            if (s.type == metric_sample::kind::gauge) {
                out << std::setw(14) << s.level;
            } else {
                out << std::setw(14) << s.count;
            }
            if (s.type == metric_sample::kind::histogram) {
                out << std::setw(12) << s.p50 << std::setw(12) << s.p95 << std::setw(12)
                    << s.p99 << std::setw(12) << s.max;
            } else {
                out << std::setw(12) << '-' << std::setw(12) << '-' << std::setw(12)
                    << '-' << std::setw(12) << '-';
            }
            out << '\n';
        }
        break;
    }
    }
    return out.str();
}

} // namespace synts::obs
