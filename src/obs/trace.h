// trace.h -- span recorder exporting Chrome trace-event JSON.
//
// Answers the question metrics cannot: not "how long do cells take on
// average" but "what was THIS worker doing at second 14". A recorder holds
// one append-only buffer per recording thread; a span is one "X" (complete)
// event with a steady-clock timestamp and duration, an instant is a zero-
// duration mark. write_chrome_trace() emits the Trace Event Format JSON
// that Perfetto and chrome://tracing load directly.
//
// Hot-path contract (the recording side, while a sweep runs):
//
//   * no locking: each thread appends to its own buffer; the buffer list
//     mutex is taken once per (thread, recorder) pair, at first use;
//   * no per-event allocation: buffers are chains of fixed-capacity chunks;
//     a chunk allocation happens once per `chunk::capacity` events, and
//     event names under ~22 bytes (every instrumented span here) sit in
//     libstdc++'s SSO buffer, so steady state writes are stores plus one
//     release counter bump;
//   * disabled cost is one relaxed bool load: trace_span checks
//     `recorder.enabled()` BEFORE evaluating its name (pass a callable for
//     names that need formatting -- it is only invoked when recording).
//
// Readers (event_count / events / write_chrome_trace) may run concurrently
// with writers: the per-thread committed-count is released by the writer
// and acquired by the reader, so a reader sees every event published before
// its snapshot and never a half-written one.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_safety.h"

namespace synts::obs {

class trace_recorder {
public:
    /// One recorded event. `phase` is the Chrome trace-event phase: 'X'
    /// (complete, with duration) or 'i' (instant).
    struct event {
        std::string name;
        std::uint32_t tid = 0;     ///< recorder-local thread id (0, 1, ...)
        std::uint64_t ts_ns = 0;   ///< start, ns since the recorder's epoch
        std::uint64_t dur_ns = 0;  ///< 0 for instants
        char phase = 'X';
    };

    trace_recorder();
    ~trace_recorder() = default;
    trace_recorder(const trace_recorder&) = delete;
    trace_recorder& operator=(const trace_recorder&) = delete;

    /// True when spans/instants are being recorded. Relaxed load; the
    /// runner's --trace flag turns the global recorder on before the sweep.
    [[nodiscard]] bool enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void set_enabled(bool on) noexcept
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// Nanoseconds since the recorder's construction (steady clock, so
    /// per-thread timestamps are monotonic).
    [[nodiscard]] std::uint64_t elapsed_ns() const noexcept;

    /// Records a completed span [ts_ns, ts_ns + dur_ns) on the calling
    /// thread. Unconditional: trace_span does the enabled() gating so raw
    /// recording stays testable.
    void complete_event(std::string name, std::uint64_t ts_ns, std::uint64_t dur_ns);

    /// Records an instant event at now (or at `ts_ns` if given).
    void instant_event(std::string name);
    void instant_event(std::string name, std::uint64_t ts_ns);

    /// Events published so far, over all threads.
    [[nodiscard]] std::size_t event_count() const;

    /// Snapshot of every published event, thread-major in publish order
    /// (threads ordered by registration, i.e. by tid).
    [[nodiscard]] std::vector<event> events() const;

    /// Writes `{"traceEvents": [...]}` Chrome trace-event JSON ("X" and
    /// "i" events; ts/dur in microseconds as the format specifies).
    void write_chrome_trace(std::ostream& out) const;

    /// The process-wide recorder instrumented spans target.
    [[nodiscard]] static trace_recorder& global();

private:
    struct chunk {
        static constexpr std::size_t capacity = 1024;
        std::array<event, capacity> events;
        std::atomic<chunk*> next{nullptr};
    };
    struct thread_buffer {
        std::uint32_t tid = 0;
        std::unique_ptr<chunk> head;
        chunk* tail = nullptr; ///< writer-only cursor
        std::atomic<std::uint64_t> committed{0};
        /// Chunks past head own each other through `next`; deleted here so
        /// destruction is iterative, not a recursive unique_ptr chain.
        ~thread_buffer();
    };

    [[nodiscard]] thread_buffer& buffer_for_current_thread();
    void append(std::string name, std::uint64_t ts_ns, std::uint64_t dur_ns, char phase);

    std::atomic<bool> enabled_{false};
    std::uint64_t epoch_ns_;
    std::uint64_t id_; ///< process-unique, guards TLS cache reuse across recorders

    /// Leaf lock over the buffer LIST only (taken once per (thread,
    /// recorder) pair); event appends are lock-free per-thread.
    mutable util::annotated_mutex buffers_mutex_{util::lock_rank::trace_buffers,
                                                 "trace_recorder.buffers"};
    std::vector<std::unique_ptr<thread_buffer>> buffers_ SYNTS_GUARDED_BY(buffers_mutex_);
};

/// RAII span: records one "X" event on destruction covering its lifetime.
/// When the recorder is disabled at construction the span is inert -- the
/// name is not evaluated (callable form), no clock is read, nothing is
/// recorded at destruction even if tracing was enabled meanwhile.
class trace_span {
public:
    trace_span(trace_recorder& recorder, const char* name)
        : recorder_(recorder.enabled() ? &recorder : nullptr)
    {
        if (recorder_ != nullptr) {
            name_ = name;
            start_ns_ = recorder_->elapsed_ns();
        }
    }

    /// `make_name()` -> std::string, invoked only when recording (keeps
    /// formatted names free when tracing is off).
    template <typename NameFn>
        requires std::is_invocable_r_v<std::string, NameFn>
    trace_span(trace_recorder& recorder, NameFn&& make_name)
        : recorder_(recorder.enabled() ? &recorder : nullptr)
    {
        if (recorder_ != nullptr) {
            name_ = std::forward<NameFn>(make_name)();
            start_ns_ = recorder_->elapsed_ns();
        }
    }

    ~trace_span()
    {
        if (recorder_ != nullptr) {
            recorder_->complete_event(std::move(name_), start_ns_,
                                      recorder_->elapsed_ns() - start_ns_);
        }
    }

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

private:
    trace_recorder* recorder_;
    std::string name_;
    std::uint64_t start_ns_ = 0;
};

} // namespace synts::obs
