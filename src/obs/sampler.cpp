#include "obs/sampler.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace synts::obs {

sampler::sampler(metrics_registry& registry, sampler_config config)
    : registry_(&registry), config_(config), tick_times_(config.capacity)
{
    if (config_.capacity == 0) {
        config_.capacity = 1;
    }
    if (config_.period.count() <= 0) {
        config_.period = std::chrono::milliseconds(1);
    }
}

sampler::~sampler() { stop(); }

void sampler::start()
{
    {
        const util::mutex_lock lock(wake_mutex_);
        if (running_) {
            return;
        }
        running_ = true;
        stopping_ = false;
    }
    thread_ = std::thread([this] { run_loop(); });
}

void sampler::stop()
{
    {
        const util::mutex_lock lock(wake_mutex_);
        if (!running_ && !thread_.joinable()) {
            // Never started: still take the final tick below so a
            // constructed-but-unstarted sampler records its end state --
            // callers (the runner) rely on at least one tick existing.
            stopping_ = true;
        }
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable()) {
        thread_.join();
    }
    {
        const util::mutex_lock lock(wake_mutex_);
        running_ = false;
    }
    // The guaranteed final tick: a run shorter than one period still ends
    // with its closing totals on record.
    sample_now();
}

void sampler::run_loop()
{
    for (;;) {
        {
            util::cv_mutex_lock lock(wake_mutex_);
            // Explicit wait_until loop rather than the predicate overload:
            // the predicate would read the guarded `stopping_` from inside
            // the libstdc++ wait, where the thread-safety analysis cannot
            // see the lock is held. An absolute deadline keeps the total
            // sleep equal to one period across spurious wakes.
            const auto deadline = std::chrono::steady_clock::now() + config_.period;
            bool timed_out = false;
            while (!stopping_ && !timed_out) {
                timed_out = wake_.wait_until(lock, deadline) == std::cv_status::timeout;
            }
            if (stopping_) {
                return; // stop() takes the final tick after the join
            }
        }
        sample_now();
    }
}

void sampler::append_locked(const std::string& name, metric_sample::kind kind,
                            std::uint64_t t_ns, double value)
{
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(name, series_data(kind, config_.capacity)).first;
    }
    it->second.ring.push(sample_point{t_ns, value});
}

void sampler::sample_now()
{
    // Snapshot OUTSIDE our own lock: the registry walk (its mutex guards
    // interning, not the relaxed counter reads) must not extend the window
    // during which series readers are blocked.
    const std::vector<metric_sample> snapshot = registry_->snapshot();
    const std::uint64_t t_ns = now_ns();

    const util::mutex_lock lock(mutex_);
    tick_times_.push(sample_point{t_ns, static_cast<double>(ticks_)});
    ++ticks_;
    for (const metric_sample& sample : snapshot) {
        switch (sample.type) {
        case metric_sample::kind::counter:
            append_locked(sample.name, sample.type, t_ns,
                          static_cast<double>(sample.count));
            break;
        case metric_sample::kind::gauge:
            append_locked(sample.name, sample.type, t_ns,
                          static_cast<double>(sample.level));
            break;
        case metric_sample::kind::histogram:
            append_locked(sample.name + ".count", sample.type, t_ns,
                          static_cast<double>(sample.count));
            append_locked(sample.name + ".p50", sample.type, t_ns,
                          static_cast<double>(sample.p50));
            append_locked(sample.name + ".p99", sample.type, t_ns,
                          static_cast<double>(sample.p99));
            break;
        }
    }
}

std::uint64_t sampler::tick_count() const
{
    const util::mutex_lock lock(mutex_);
    return ticks_;
}

std::vector<std::string> sampler::series_names() const
{
    const util::mutex_lock lock(mutex_);
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto& [name, data] : series_) {
        names.push_back(name);
    }
    return names;
}

std::optional<series_view> sampler::series(std::string_view name) const
{
    const util::mutex_lock lock(mutex_);
    const auto it = series_.find(name);
    if (it == series_.end()) {
        return std::nullopt;
    }
    series_view view;
    view.name = it->first;
    view.kind = it->second.kind;
    view.points = it->second.ring.points();
    view.dropped = it->second.ring.dropped();
    return view;
}

namespace {

/// True for series whose value is a monotone running total, i.e. where a
/// between-tick difference is a rate: counters, and the .count sub-series
/// of histograms. Gauge levels and histogram percentiles are not rates.
bool rate_eligible(metric_sample::kind kind, std::string_view name)
{
    if (kind == metric_sample::kind::counter) {
        return true;
    }
    return kind == metric_sample::kind::histogram && name.ends_with(".count");
}

std::optional<double> rate_between(const sample_point& prev, const sample_point& last)
{
    if (last.t_ns <= prev.t_ns) {
        return std::nullopt;
    }
    const double dt_s = static_cast<double>(last.t_ns - prev.t_ns) * 1e-9;
    return (last.value - prev.value) / dt_s;
}

} // namespace

std::optional<double> sampler::rate_per_second(std::string_view name) const
{
    const util::mutex_lock lock(mutex_);
    const auto it = series_.find(name);
    if (it == series_.end() || it->second.ring.size() < 2) {
        return std::nullopt;
    }
    const std::vector<sample_point> points = it->second.ring.points();
    return rate_between(points[points.size() - 2], points.back());
}

std::optional<double> sampler::interval_hit_rate(std::string_view prefix) const
{
    const util::mutex_lock lock(mutex_);
    const auto last_delta = [this](const std::string& name) -> std::optional<double> {
        const auto it = series_.find(name);
        if (it == series_.end() || it->second.ring.size() < 2) {
            return std::nullopt;
        }
        const std::vector<sample_point> points = it->second.ring.points();
        return points.back().value - points[points.size() - 2].value;
    };
    const std::optional<double> hits = last_delta(std::string(prefix) + ".hits");
    const std::optional<double> misses = last_delta(std::string(prefix) + ".misses");
    if (!hits || !misses || *hits + *misses <= 0.0) {
        return std::nullopt;
    }
    return *hits / (*hits + *misses);
}

void sampler::write_timeline_jsonl(std::ostream& out) const
{
    const util::mutex_lock lock(mutex_);

    // Tick-major reassembly: every point of one tick shares the t_ns read
    // once in sample_now(), so grouping by timestamp reconstructs the tick
    // frames exactly. The tick ring supplies the surviving ticks in order
    // (and their global indices); series windows may start later (a series
    // appears when its instrument does) but never contain foreign stamps.
    struct entry {
        double value;
        std::optional<double> rate;
    };
    std::map<std::uint64_t, std::map<std::string, entry, std::less<>>> frames;
    for (const auto& [name, data] : series_) {
        const std::vector<sample_point> points = data.ring.points();
        const bool eligible = rate_eligible(data.kind, name);
        for (std::size_t i = 0; i < points.size(); ++i) {
            entry e{points[i].value, std::nullopt};
            if (eligible && i > 0) {
                e.rate = rate_between(points[i - 1], points[i]);
            }
            frames[points[i].t_ns].emplace(name, e);
        }
    }

    std::ostringstream line;
    line.precision(17);
    for (const sample_point& tick : tick_times_.points()) {
        const auto frame = frames.find(tick.t_ns);
        line.str("");
        line << "{\"tick\": " << static_cast<std::uint64_t>(tick.value)
             << ", \"t_ns\": " << tick.t_ns << ", \"metrics\": {";
        bool first = true;
        if (frame != frames.end()) {
            for (const auto& [name, e] : frame->second) {
                line << (first ? "" : ", ") << '"' << name << "\": " << e.value;
                first = false;
            }
        }
        line << "}, \"rates_per_s\": {";
        first = true;
        if (frame != frames.end()) {
            for (const auto& [name, e] : frame->second) {
                if (e.rate.has_value()) {
                    line << (first ? "" : ", ") << '"' << name << "\": " << *e.rate;
                    first = false;
                }
            }
        }
        line << "}}";
        out << line.str() << '\n';
    }
}

} // namespace synts::obs
