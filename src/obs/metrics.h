// metrics.h -- process-wide metrics registry: named counters, gauges, and
// log-bucketed latency histograms.
//
// PR 5's `cache_traffic` sink proved that bespoke counter plumbing does not
// scale past two call sites: every new observable meant a new struct field,
// a new accessor, and a new column in every renderer. This registry is the
// one place an instrument is declared (a dotted name: `pool.steals`,
// `cache.tier2.compute_ns`, `store.bytes_read`) and the one place a
// consumer reads it back (`snapshot()` -> deterministic name order ->
// JSON/CSV/table emitters in render_metrics).
//
// Hot-path contract:
//
//   * counter::add / gauge::set / latency_histogram::record are a relaxed
//     atomic add (or store) on a striped slot -- no locks, no allocation,
//     safe from any thread, TSan-clean. Handles returned by the registry
//     are stable for the registry's lifetime, so instrumented code resolves
//     the name ONCE (at construction) and pays only the atomic op per event;
//   * counters and gauges are always on: they mirror bookkeeping the
//     runtime already paid for (the cache's hit/miss atomics, the pool's
//     steal count), so gating them would buy nothing and would desync the
//     registry from the legacy accessors that tests pin;
//   * anything that needs a CLOCK READ (latency histograms, spans) is gated
//     behind the process-wide `enabled()` flag: a single relaxed atomic
//     bool load on a branch-predictable fast path. scoped_timer reads no
//     clock and records nothing when telemetry is off --
//     bench_obs gates the disabled overhead at <= 2%.
//
// Histogram shape: HDR-style log buckets with 5 sub-bucket bits. Values
// below 32 map to exact unit buckets; above, each power-of-two octave is
// split into 32 linear sub-buckets, so any recorded value lands in a bucket
// whose width is <= 1/32 (~3.1%) of its magnitude. percentile() is
// nearest-rank and returns the containing bucket's lower bound --
// deterministic, exactly testable on small known distributions, and within
// one bucket width of the true order statistic everywhere else.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_safety.h"

namespace synts::obs {

/// True when timed telemetry (histogram timers, trace spans) is recording.
/// A relaxed load: readers only branch on it, they never synchronize.
[[nodiscard]] bool enabled() noexcept;

/// Turns timed telemetry on or off (the runner's --metrics/--trace flags
/// enable it before the sweep starts). Counters and gauges ignore this.
void set_enabled(bool on) noexcept;

/// Monotonic nanosecond clock (std::chrono::steady_clock, arbitrary epoch).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Slots a hot counter is striped across; a power of two. Each stripe is
/// cache-line-aligned so concurrent writers on different stripes do not
/// false-share.
inline constexpr std::size_t counter_stripe_count = 8;

/// Stripe index of the calling thread (stable per thread, decorrelated
/// across threads).
[[nodiscard]] std::size_t thread_stripe() noexcept;

/// Monotonically increasing event count. add() is a relaxed fetch_add on
/// the caller's stripe; value() sums the stripes (and may therefore lag
/// in-flight adds -- exact once writers quiesce, like every counter here).
class counter {
public:
    void add(std::uint64_t delta = 1) noexcept
    {
        stripes_[thread_stripe()].value.fetch_add(delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept
    {
        std::uint64_t total = 0;
        for (const stripe& s : stripes_) {
            total += s.value.load(std::memory_order_relaxed);
        }
        return total;
    }

    /// Zeroes every stripe (metrics_registry::reset; not for hot paths).
    void reset() noexcept
    {
        for (stripe& s : stripes_) {
            s.value.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct alignas(64) stripe {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<stripe, counter_stripe_count> stripes_{};
};

/// Last-written signed value (queue depth, in-flight requests). set() is a
/// relaxed store; add() a relaxed fetch_add for up/down accounting.
class gauge {
public:
    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { set(0); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed distribution of non-negative 64-bit samples (nanosecond
/// latencies, byte sizes). See the file comment for the bucket shape.
class latency_histogram {
public:
    /// Sub-bucket resolution: each octave is split into 2^5 = 32 linear
    /// sub-buckets; values below 32 are exact.
    static constexpr unsigned sub_bucket_bits = 5;
    static constexpr std::uint64_t sub_bucket_count = 1ull << sub_bucket_bits;
    /// Indices run [0, 32) for the exact region and [(s+1)*32, (s+2)*32)
    /// for octave shift s in [0, 64 - 5 - 1], so the largest index (for
    /// values near 2^64) is (64 - 5 + 1) * 32 - 1.
    static constexpr std::size_t bucket_count =
        (64 - sub_bucket_bits + 1) * static_cast<std::size_t>(sub_bucket_count);

    /// Bucket index of `value` (total order preserved: v1 <= v2 implies
    /// bucket_index(v1) <= bucket_index(v2)).
    [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t value) noexcept
    {
        if (value < sub_bucket_count) {
            return static_cast<std::size_t>(value);
        }
        const unsigned octave = std::bit_width(value) - 1; // >= sub_bucket_bits
        const unsigned shift = octave - sub_bucket_bits;
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(shift) << sub_bucket_bits) + (value >> shift));
    }

    /// Smallest value mapping to bucket `index` (the bucket's
    /// representative value for percentile extraction).
    [[nodiscard]] static constexpr std::uint64_t
    bucket_lower_bound(std::size_t index) noexcept
    {
        if (index < sub_bucket_count) {
            return static_cast<std::uint64_t>(index);
        }
        const std::uint64_t shift = index >> sub_bucket_bits;
        const std::uint64_t rem =
            static_cast<std::uint64_t>(index) - ((shift - 1) << sub_bucket_bits);
        return rem << (shift - 1);
    }

    /// Records one sample: a relaxed atomic add on the caller's stripe of
    /// the containing bucket. Callers gate the CLOCK READ that usually
    /// precedes this behind obs::enabled() (see scoped_timer); record()
    /// itself never blocks.
    void record(std::uint64_t value) noexcept
    {
        stripes_[thread_stripe() & (hist_stripe_count - 1)]
            .buckets[bucket_index(value)]
            .fetch_add(1, std::memory_order_relaxed);
        totals_[thread_stripe()].value.fetch_add(1, std::memory_order_relaxed);
    }

    /// Samples recorded so far.
    [[nodiscard]] std::uint64_t total() const noexcept
    {
        std::uint64_t total = 0;
        for (const padded_total& t : totals_) {
            total += t.value.load(std::memory_order_relaxed);
        }
        return total;
    }

    /// Count landed in bucket `index`, summed over stripes.
    [[nodiscard]] std::uint64_t count_at(std::size_t index) const noexcept
    {
        std::uint64_t count = 0;
        for (const stripe& s : stripes_) {
            count += s.buckets[index].load(std::memory_order_relaxed);
        }
        return count;
    }

    /// Nearest-rank q-quantile (q clamped to [0, 1]): the lower bound of
    /// the bucket holding the ceil(q * total)-th smallest sample. Exact for
    /// samples in the exact region (< 32); elsewhere within one sub-bucket
    /// width (<= ~3.1% of the value). 0 when empty.
    [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

    /// Lower bound of the highest non-empty bucket (== percentile(1.0)).
    [[nodiscard]] std::uint64_t max_value() const noexcept { return percentile(1.0); }

    void reset() noexcept;

private:
    /// Histograms stripe 4 ways (not 8): each stripe is a full bucket
    /// array, so stripes trade memory for contention and recording is
    /// rarer than counter bumps (per task / per I/O, not per lookup).
    static constexpr std::size_t hist_stripe_count = 4;
    static_assert((hist_stripe_count & (hist_stripe_count - 1)) == 0);

    struct stripe {
        std::array<std::atomic<std::uint64_t>, bucket_count> buckets{};
    };
    struct alignas(64) padded_total {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<stripe, hist_stripe_count> stripes_{};
    std::array<padded_total, counter_stripe_count> totals_{};
};

/// RAII latency probe: reads the clock only when telemetry is enabled at
/// construction, records the elapsed nanoseconds into the histogram at
/// destruction. Disabled cost: one relaxed bool load and a branch.
class scoped_timer {
public:
    explicit scoped_timer(latency_histogram& sink) noexcept
        : sink_(enabled() ? &sink : nullptr), start_ns_(sink_ != nullptr ? now_ns() : 0)
    {
    }
    ~scoped_timer()
    {
        if (sink_ != nullptr) {
            sink_->record(now_ns() - start_ns_);
        }
    }
    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

private:
    latency_histogram* sink_;
    std::uint64_t start_ns_;
};

/// One metric in a snapshot. Histograms carry nearest-rank percentiles of
/// their recorded distribution (nanoseconds for *_ns metrics).
struct metric_sample {
    enum class kind : std::uint8_t { counter, gauge, histogram };

    std::string name;
    kind type = kind::counter;
    std::uint64_t count = 0;  ///< counter value / histogram sample count
    std::int64_t level = 0;   ///< gauge value
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
};

/// Output shape for render_metrics (the runner's --metrics flag).
enum class metrics_format { table, csv, json, prom };

/// Process-wide instrument registry. Instruments are interned by name:
/// the first *_at(name) call creates the instrument, every later call
/// returns the same handle, and handles stay valid for the registry's
/// lifetime (lookup takes a mutex -- resolve once, not per event).
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    [[nodiscard]] counter& counter_at(std::string_view name);
    [[nodiscard]] gauge& gauge_at(std::string_view name);
    [[nodiscard]] latency_histogram& histogram_at(std::string_view name);

    /// Every registered instrument, sorted by name (deterministic across
    /// runs: the registry map is ordered, so equal instrument sets always
    /// snapshot identically).
    [[nodiscard]] std::vector<metric_sample> snapshot() const;

    /// Zeroes every instrument's accumulated values; handles stay valid.
    /// For tests that assert exact process-global counts.
    void reset();

    /// The process-wide registry every instrumented subsystem resolves
    /// its instruments from.
    [[nodiscard]] static metrics_registry& global();

private:
    /// Guards interning only -- instrument IO is striped atomics on stable
    /// handles, never under this lock.
    mutable util::annotated_mutex mutex_{util::lock_rank::metrics_registry,
                                         "metrics_registry"};
    std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_
        SYNTS_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_
        SYNTS_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<latency_histogram>, std::less<>> histograms_
        SYNTS_GUARDED_BY(mutex_);
};

/// Renders a snapshot as a console table, CSV rows (name, type, value,
/// count, p50_ns, p95_ns, p99_ns, max_ns), a JSON object keyed by metric
/// name, or Prometheus/OpenMetrics text exposition (prom).
[[nodiscard]] std::string render_metrics(const std::vector<metric_sample>& samples,
                                         metrics_format format);

/// Prometheus/OpenMetrics text exposition of a snapshot, `# EOF`-terminated.
/// Naming: every metric gets a `synts_` prefix and dots become underscores
/// (`pool.tasks_executed` -> `synts_pool_tasks_executed`). Counters emit a
/// `_total`-suffixed sample, gauges emit their level, and histograms emit a
/// summary: `{quantile="0.5|0.95|0.99"}` samples plus `_count` (no `_sum`:
/// the log-bucketed histogram does not track one).
[[nodiscard]] std::string render_openmetrics(const std::vector<metric_sample>& samples);

} // namespace synts::obs
