// health.h -- outlier detection over latency histograms: the slow-cell log.
//
// Percentiles tell you the distribution moved; they do not tell you WHICH
// cell was slow, and by the time a human reads the end-of-run table the
// cell's identity is gone. A health_monitor watches one latency_histogram
// and flags individual samples exceeding k x its p99, capturing a caller-
// supplied detail string (stage/thread/interval) at the moment of the
// outlier -- the characterization pipeline feeds it `characterize.cell_ns`
// so a pathological cell is named, not just counted.
//
// Hot-path contract: is_outlier() is a relaxed counter bump plus a relaxed
// threshold load. The k x p99 threshold is CACHED and re-derived only every
// `refresh_interval` notes (a p99 walk reads ~7680 relaxed atomics -- fine
// per 256 cells, hot per cell). The detail string is built and the mutex
// taken only for actual outliers, which are rare by construction (p99).
// Everything rides behind obs::enabled() via monitored_timer, which
// degrades to scoped_timer's one-load-one-branch when telemetry is off.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_safety.h"

namespace synts::obs {

/// One flagged sample.
struct health_event {
    std::uint64_t t_ns = 0;         ///< obs::now_ns() when flagged
    std::uint64_t value_ns = 0;     ///< the outlying sample
    std::uint64_t threshold_ns = 0; ///< k x p99 it exceeded
    std::string detail;             ///< caller-supplied identity (cell coords)
};

struct health_options {
    double k = 4.0;                       ///< threshold multiple of p99
    std::uint64_t min_samples = 64;       ///< no flagging before this many
    std::uint32_t refresh_interval = 256; ///< notes between p99 re-derivations
    std::size_t capacity = 64;            ///< retained events (drop-oldest)
};

/// Watches one latency_histogram for samples beyond k x p99. Thread-safe;
/// see the file comment for the hot-path contract.
class health_monitor {
public:
    using options = health_options;

    /// `metric` names the watched histogram in log lines; `outliers` is the
    /// registry counter bumped per event (always-on, like every counter).
    health_monitor(std::string metric, const latency_histogram& hist,
                   counter& outliers, options opts = {});

    /// Hot path: is this sample an outlier under the cached threshold?
    /// False until the histogram has min_samples (a cold p99 is noise).
    [[nodiscard]] bool is_outlier(std::uint64_t value_ns) noexcept;

    /// Records a flagged sample (rare path: takes the event mutex).
    void log(std::uint64_t value_ns, std::string detail);

    /// The currently cached k x p99 threshold; 0 while below min_samples.
    [[nodiscard]] std::uint64_t threshold_ns() const noexcept
    {
        return threshold_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const std::string& metric() const noexcept { return metric_; }

    /// Retained events, oldest first.
    [[nodiscard]] std::vector<health_event> events() const;

    /// Events logged over the monitor's lifetime (>= events().size()).
    [[nodiscard]] std::uint64_t event_count() const;

    /// One line per retained event:
    ///   SLOW <metric> <value>ns > <k>x p99 (threshold <t>ns): <detail>
    void write_log(std::ostream& out) const;

    /// The process-wide monitor over `characterize.cell_ns` (counter:
    /// `health.slow_cells`), resolved against the global registry.
    [[nodiscard]] static health_monitor& cell_monitor();

private:
    std::string metric_;
    const latency_histogram* hist_;
    counter* outliers_;
    options opts_;

    std::atomic<std::uint64_t> notes_{0};
    std::atomic<std::uint64_t> threshold_{0};

    /// Rare-path leaf lock: taken only when a sample actually flagged.
    mutable util::annotated_mutex mutex_{util::lock_rank::health_events,
                                         "health_monitor.events"};
    std::vector<health_event> events_ SYNTS_GUARDED_BY(mutex_);
    std::uint64_t dropped_ SYNTS_GUARDED_BY(mutex_) = 0;
};

/// RAII probe like scoped_timer, but also feeds a health_monitor. The
/// DetailFn (returning the cell's identity as a string) is invoked ONLY for
/// outliers; when telemetry is disabled the cost is one relaxed load and a
/// branch, identical to scoped_timer.
template <typename DetailFn>
class monitored_timer {
public:
    monitored_timer(latency_histogram& sink, health_monitor& monitor,
                    DetailFn detail) noexcept
        : sink_(enabled() ? &sink : nullptr), monitor_(&monitor),
          detail_(std::move(detail)), start_ns_(sink_ != nullptr ? now_ns() : 0)
    {
    }
    ~monitored_timer()
    {
        if (sink_ == nullptr) {
            return;
        }
        const std::uint64_t elapsed = now_ns() - start_ns_;
        sink_->record(elapsed);
        if (monitor_->is_outlier(elapsed)) {
            monitor_->log(elapsed, detail_());
        }
    }
    monitored_timer(const monitored_timer&) = delete;
    monitored_timer& operator=(const monitored_timer&) = delete;

private:
    latency_histogram* sink_;
    health_monitor* monitor_;
    DetailFn detail_;
    std::uint64_t start_ns_;
};

} // namespace synts::obs
