#include "obs/trace.h"

#include "obs/metrics.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace synts::obs {

namespace {

std::string json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream esc;
                esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                    << static_cast<int>(static_cast<unsigned char>(c));
                out += esc.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

int process_id()
{
#ifdef _WIN32
    return _getpid();
#else
    return static_cast<int>(::getpid());
#endif
}

std::atomic<std::uint64_t> next_recorder_id{1};

/// TLS cache of (recorder id -> buffer) so the registration mutex is paid
/// once per (thread, recorder). Keyed by the recorder's process-unique id,
/// not its address: a recorder constructed at a destroyed one's address
/// must not inherit the stale buffer pointer.
struct tls_binding {
    std::uint64_t recorder_id = 0;
    void* buffer = nullptr;
};
constexpr std::size_t tls_binding_slots = 4;
thread_local std::array<tls_binding, tls_binding_slots> tls_bindings{};

} // namespace

trace_recorder::thread_buffer::~thread_buffer()
{
    // Unlink the chunk chain head-first; each unique_ptr release is
    // explicit so no destructor recurses through a long `next` chain.
    std::unique_ptr<chunk> cursor = std::move(head);
    while (cursor != nullptr) {
        std::unique_ptr<chunk> next(cursor->next.load(std::memory_order_relaxed));
        cursor->next.store(nullptr, std::memory_order_relaxed);
        cursor = std::move(next);
    }
}

trace_recorder::trace_recorder()
    : epoch_ns_(now_ns()), id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed))
{
}

std::uint64_t trace_recorder::elapsed_ns() const noexcept
{
    return now_ns() - epoch_ns_;
}

trace_recorder::thread_buffer& trace_recorder::buffer_for_current_thread()
{
    for (const tls_binding& binding : tls_bindings) {
        if (binding.recorder_id == id_) {
            return *static_cast<thread_buffer*>(binding.buffer);
        }
    }
    const util::mutex_lock lock(buffers_mutex_);
    auto buffer = std::make_unique<thread_buffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer->head = std::make_unique<chunk>();
    buffer->tail = buffer->head.get();
    thread_buffer& ref = *buffer;
    buffers_.push_back(std::move(buffer));
    // Evict round-robin; a thread alternating between more than
    // tls_binding_slots live recorders re-pays the lookup, never
    // re-registers (the recorder still holds one buffer per thread --
    // found again by scanning under the lock).
    for (tls_binding& binding : tls_bindings) {
        if (binding.recorder_id == 0) {
            binding = {id_, &ref};
            return ref;
        }
    }
    // All slots taken by other live recorders: reuse the buffer we just
    // registered anyway after evicting slot 0.
    tls_bindings[0] = {id_, &ref};
    return ref;
}

void trace_recorder::append(std::string name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                            char phase)
{
    thread_buffer& buffer = buffer_for_current_thread();
    const std::uint64_t index = buffer.committed.load(std::memory_order_relaxed);
    if (index % chunk::capacity == 0 && index != 0) {
        // Current tail is full; link a fresh chunk. Only this thread
        // writes, so tail is safe to advance without the buffers mutex.
        // Raw new: ownership transfers to the chain through the atomic
        // `next` link; ~thread_buffer reclaims the chain iteratively.
        chunk* fresh = new chunk(); // synts-lint: allow(naked-new)
        buffer.tail->next.store(fresh, std::memory_order_release);
        buffer.tail = fresh;
    }
    event& slot = buffer.tail->events[index % chunk::capacity];
    slot.name = std::move(name);
    slot.tid = buffer.tid;
    slot.ts_ns = ts_ns;
    slot.dur_ns = dur_ns;
    slot.phase = phase;
    // Publish: readers acquire `committed`, which orders the slot (and any
    // new chunk link) before it.
    buffer.committed.store(index + 1, std::memory_order_release);
}

void trace_recorder::complete_event(std::string name, std::uint64_t ts_ns,
                                    std::uint64_t dur_ns)
{
    append(std::move(name), ts_ns, dur_ns, 'X');
}

void trace_recorder::instant_event(std::string name)
{
    append(std::move(name), elapsed_ns(), 0, 'i');
}

void trace_recorder::instant_event(std::string name, std::uint64_t ts_ns)
{
    append(std::move(name), ts_ns, 0, 'i');
}

std::size_t trace_recorder::event_count() const
{
    const util::mutex_lock lock(buffers_mutex_);
    std::size_t count = 0;
    for (const std::unique_ptr<thread_buffer>& buffer : buffers_) {
        count += static_cast<std::size_t>(buffer->committed.load(std::memory_order_acquire));
    }
    return count;
}

std::vector<trace_recorder::event> trace_recorder::events() const
{
    const util::mutex_lock lock(buffers_mutex_);
    std::vector<event> out;
    for (const std::unique_ptr<thread_buffer>& buffer : buffers_) {
        const std::uint64_t committed = buffer->committed.load(std::memory_order_acquire);
        out.reserve(out.size() + static_cast<std::size_t>(committed));
        const chunk* cursor = buffer->head.get();
        for (std::uint64_t i = 0; i < committed; ++i) {
            if (i % chunk::capacity == 0 && i != 0) {
                cursor = cursor->next.load(std::memory_order_acquire);
            }
            out.push_back(cursor->events[i % chunk::capacity]);
        }
    }
    return out;
}

void trace_recorder::write_chrome_trace(std::ostream& out) const
{
    const std::vector<event> snapshot = events();
    const int pid = process_id();
    out << "{\"traceEvents\": [\n";
    bool first = true;
    for (const event& e : snapshot) {
        if (!first) {
            out << ",\n";
        }
        first = false;
        // The trace-event format takes ts/dur in microseconds; fractional
        // microseconds keep full nanosecond resolution.
        out << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \"synts\", "
            << "\"ph\": \"" << e.phase << "\", \"pid\": " << pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << std::fixed
            << std::setprecision(3) << static_cast<double>(e.ts_ns) / 1000.0;
        if (e.phase == 'X') {
            out << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1000.0;
        } else if (e.phase == 'i') {
            out << ", \"s\": \"t\"";
        }
        out << std::defaultfloat << "}";
    }
    out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

trace_recorder& trace_recorder::global()
{
    static trace_recorder recorder;
    return recorder;
}

} // namespace synts::obs
