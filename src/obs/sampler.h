// sampler.h -- the time axis of the metrics registry.
//
// PR 6's registry answers "what are the totals NOW"; serving and fleet
// monitoring need "how did they MOVE": is a shard making progress, what is
// the cells/s rate, did the cache hit-rate collapse when the second client
// arrived. The exemplar is gem5's periodic stat dump (base/statistics.hh):
// every subsystem's stats are snapshotted on a fixed period into diffable
// frames, instead of one end-of-run blob.
//
// An obs::sampler owns a background thread that every `period` snapshots
// the registry into fixed-capacity per-series ring buffers (drop-oldest:
// a long run keeps the most recent window, never grows without bound).
// Each registry instrument expands to flat double-valued series:
//
//   counter    -> one series, its running total (rates are derived between
//                 consecutive points at read time, never stored)
//   gauge      -> one series, its level
//   histogram  -> three series: <name>.count, <name>.p50, <name>.p99
//
// Hot-path contract: recording threads never touch the sampler's lock --
// a tick reads the registry through its own snapshot() (whose mutex guards
// instrument interning, not the relaxed-atomic reads), then appends under
// the sampler's mutex, which only the tick thread and explicit readers
// (write_timeline_jsonl, series(), tests) ever take. bench_obs gates the
// live overhead of a 100 ms sampler at <= 5% over the same workload without
// one.
//
// Serialization: write_timeline_jsonl emits one JSON object per tick
// (append-friendly, diffable, `jq`-able), and render_openmetrics (see
// metrics.h) turns any snapshot into Prometheus/OpenMetrics text
// exposition for scrape-based collectors.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_safety.h"

namespace synts::obs {

/// One observation of one series.
struct sample_point {
    std::uint64_t t_ns = 0; ///< obs::now_ns() at the owning tick
    double value = 0.0;

    friend bool operator==(const sample_point&, const sample_point&) = default;
};

/// Fixed-capacity drop-oldest ring of sample points. Not thread-safe by
/// itself -- the sampler serializes access under its mutex; exposed for
/// direct use and for exact wraparound tests.
class sample_ring {
public:
    explicit sample_ring(std::size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Points overwritten so far (pushes beyond capacity).
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

    /// Appends, overwriting the oldest point when full.
    void push(sample_point point) noexcept
    {
        if (count_ < slots_.size()) {
            slots_[(head_ + count_) % slots_.size()] = point;
            ++count_;
            return;
        }
        slots_[head_] = point;
        head_ = (head_ + 1) % slots_.size();
        ++dropped_;
    }

    /// Oldest-to-newest copy of the retained window.
    [[nodiscard]] std::vector<sample_point> points() const
    {
        std::vector<sample_point> out;
        out.reserve(count_);
        for (std::size_t i = 0; i < count_; ++i) {
            out.push_back(slots_[(head_ + i) % slots_.size()]);
        }
        return out;
    }

    /// The newest point, if any.
    [[nodiscard]] std::optional<sample_point> back() const
    {
        if (count_ == 0) {
            return std::nullopt;
        }
        return slots_[(head_ + count_ - 1) % slots_.size()];
    }

private:
    std::vector<sample_point> slots_;
    std::size_t head_ = 0;  ///< index of the oldest point
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
};

struct sampler_config {
    /// Tick period of the background thread.
    std::chrono::milliseconds period{100};
    /// Points retained per series (drop-oldest beyond this). 600 points at
    /// the default 100 ms period is a one-minute window.
    std::size_t capacity = 600;
};

/// One series' retained window plus its identity, as returned by series().
struct series_view {
    std::string name;
    metric_sample::kind kind = metric_sample::kind::counter;
    std::vector<sample_point> points;
    std::uint64_t dropped = 0;
};

/// Periodic registry-to-ring snapshotter. Construct, start(), and the
/// background thread ticks every `period` until stop() (or destruction),
/// which takes one guaranteed final tick so short runs still record their
/// end state. sample_now() ticks synchronously -- the unit-testable path;
/// it is what the thread calls.
class sampler {
public:
    explicit sampler(metrics_registry& registry, sampler_config config = {});
    ~sampler();
    sampler(const sampler&) = delete;
    sampler& operator=(const sampler&) = delete;

    /// Spawns the tick thread. No-op when already running.
    void start();

    /// Stops the tick thread (if running) and takes the guaranteed final
    /// tick. Idempotent; safe without start().
    void stop();

    /// One synchronous tick: snapshot the registry, append to every ring.
    /// Series appear when their instrument first appears in a snapshot.
    void sample_now();

    /// Ticks taken so far (background + sample_now).
    [[nodiscard]] std::uint64_t tick_count() const;

    [[nodiscard]] const sampler_config& config() const noexcept { return config_; }

    /// Names of every series recorded so far, sorted.
    [[nodiscard]] std::vector<std::string> series_names() const;

    /// The named series' retained window, or nullopt when never sampled.
    [[nodiscard]] std::optional<series_view> series(std::string_view name) const;

    /// Per-second rate of change between the last two points of the named
    /// series: (v1 - v0) / dt. Meaningful for counter-backed series (and
    /// histogram .count series); nullopt with fewer than two points or a
    /// zero dt. Negative rates are reported as-is (a registry reset).
    [[nodiscard]] std::optional<double> rate_per_second(std::string_view name) const;

    /// One JSON object per tick, oldest first:
    ///   {"tick": K, "t_ns": N, "metrics": {"name": value, ...},
    ///    "rates_per_s": {"name": rate, ...}}
    /// `metrics` carries every series with a point at that tick; `rates_per_s`
    /// carries counter-kind series with a previous point to difference
    /// against (first tick has none). Ticks older than the ring window are
    /// gone by construction -- the timeline is the retained window.
    void write_timeline_jsonl(std::ostream& out) const;

    /// Derived cache hit-rate over the LAST tick interval for the tier
    /// whose counters are `<prefix>.hits` / `<prefix>.misses` (e.g.
    /// "cache.tier2"): delta_hits / (delta_hits + delta_misses). nullopt
    /// when either series is missing, has fewer than two points, or the
    /// interval saw no lookups.
    [[nodiscard]] std::optional<double>
    interval_hit_rate(std::string_view prefix) const;

private:
    struct series_data {
        metric_sample::kind kind = metric_sample::kind::counter;
        sample_ring ring;
        explicit series_data(metric_sample::kind k, std::size_t capacity)
            : kind(k), ring(capacity)
        {
        }
    };

    void run_loop();
    void append_locked(const std::string& name, metric_sample::kind kind,
                       std::uint64_t t_ns, double value) SYNTS_REQUIRES(mutex_);

    metrics_registry* registry_;
    sampler_config config_;

    /// Guards series_ and tick bookkeeping. Ranked ABOVE metrics_registry:
    /// sample_now snapshots the registry first, then appends under this --
    /// the registry lock is released before this one is taken, but a
    /// strict order is declared anyway so the two can never interleave.
    mutable util::annotated_mutex mutex_{util::lock_rank::sampler_series,
                                         "sampler.series"};
    std::map<std::string, series_data, std::less<>> series_ SYNTS_GUARDED_BY(mutex_);
    std::uint64_t ticks_ SYNTS_GUARDED_BY(mutex_) = 0;
    /// (t_ns, global tick index) of each retained tick -- the timeline's
    /// spine, so JSONL lines keep their true tick numbers across wraparound.
    sample_ring tick_times_ SYNTS_GUARDED_BY(mutex_);

    /// Leaf lock of the tick thread's sleep/stop protocol; released before
    /// every sample_now call.
    util::annotated_mutex wake_mutex_{util::lock_rank::sampler_wake, "sampler.wake"};
    std::condition_variable_any wake_;
    bool stopping_ SYNTS_GUARDED_BY(wake_mutex_) = false;
    bool running_ SYNTS_GUARDED_BY(wake_mutex_) = false;
    /// start()/stop() are externally serialized (the runner's setup path);
    /// joinable() is read outside the lock by design.
    std::thread thread_;
};

} // namespace synts::obs
