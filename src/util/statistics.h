// statistics.h -- descriptive statistics used across the characterization,
// estimation, and reporting layers.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace synts::util {

/// Streaming accumulator for count / mean / variance / min / max using
/// Welford's numerically stable recurrence.
class running_stats {
public:
    /// Adds one observation.
    void add(double x) noexcept;

    /// Merges another accumulator into this one (parallel-friendly).
    void merge(const running_stats& other) noexcept;

    /// Number of observations so far.
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    /// Arithmetic mean (0 when empty).
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance (0 when fewer than two observations).
    [[nodiscard]] double variance() const noexcept;
    /// Square root of variance().
    [[nodiscard]] double stddev() const noexcept;
    /// Smallest observation (+inf when empty).
    [[nodiscard]] double min() const noexcept { return min_; }
    /// Largest observation (-inf when empty).
    [[nodiscard]] double max() const noexcept { return max_; }
    /// Sum of all observations.
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    bool any_ = false;
};

/// Returns the q-quantile (q in [0, 1]) of `values` using linear
/// interpolation between order statistics. The input need not be sorted;
/// a sorted copy is made internally. Returns 0 for empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// In-place variant for pre-sorted data (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted_values, double q) noexcept;

/// Fraction of `values` strictly greater than `threshold`. This is the
/// empirical exceedance probability used to turn sensitized-delay traces
/// into timing-error probabilities: err(r) = P(delay > r * t_nom).
[[nodiscard]] double exceedance_fraction(std::span<const double> values,
                                         double threshold) noexcept;

/// Pearson correlation coefficient of two equal-length series (0 if either
/// series is constant or the series are empty).
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys) noexcept;

/// Mean absolute error between two equal-length series.
[[nodiscard]] double mean_absolute_error(std::span<const double> truth,
                                         std::span<const double> estimate) noexcept;

/// Root mean squared error between two equal-length series.
[[nodiscard]] double root_mean_squared_error(std::span<const double> truth,
                                             std::span<const double> estimate) noexcept;

/// Total variation distance between two discrete distributions given as
/// unnormalized non-negative mass vectors over the same support. Each vector
/// is normalized internally; returns a value in [0, 1]. Used to quantify the
/// GPGPU Hamming-histogram homogeneity of Fig. 5.10.
[[nodiscard]] double total_variation_distance(std::span<const double> lhs,
                                              std::span<const double> rhs) noexcept;

/// Wilson score interval half-width for a Bernoulli proportion estimate with
/// `successes` out of `trials` at ~95% confidence. Used to bound the online
/// error-probability estimates from the sampling phase.
[[nodiscard]] double wilson_half_width(std::size_t successes, std::size_t trials) noexcept;

} // namespace synts::util
