#include "util/log.h"

#include <atomic>
#include <iostream>

namespace synts::util {

namespace {

std::atomic<log_level> global_level{log_level::warning};

[[nodiscard]] const char* level_name(log_level level) noexcept
{
    switch (level) {
    case log_level::debug:
        return "DEBUG";
    case log_level::info:
        return "INFO";
    case log_level::warning:
        return "WARN";
    case log_level::error:
        return "ERROR";
    case log_level::off:
        return "OFF";
    }
    return "?";
}

} // namespace

void set_log_level(log_level level) noexcept
{
    global_level.store(level, std::memory_order_relaxed);
}

log_level get_log_level() noexcept
{
    return global_level.load(std::memory_order_relaxed);
}

void log(log_level level, const std::string& message)
{
    if (static_cast<int>(level) < static_cast<int>(get_log_level())) {
        return;
    }
    std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

void log_debug(const std::string& message)
{
    log(log_level::debug, message);
}

void log_info(const std::string& message)
{
    log(log_level::info, message);
}

void log_warning(const std::string& message)
{
    log(log_level::warning, message);
}

void log_error(const std::string& message)
{
    log(log_level::error, message);
}

} // namespace synts::util
