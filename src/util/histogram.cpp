#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace synts::util {

histogram::histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi)
{
    if (bin_count == 0) {
        throw std::invalid_argument("histogram: bin_count must be >= 1");
    }
    if (!(hi > lo)) {
        throw std::invalid_argument("histogram: hi must exceed lo");
    }
    width_ = (hi - lo) / static_cast<double>(bin_count);
    counts_.assign(bin_count, 0);
}

void histogram::add(double value) noexcept
{
    std::size_t index;
    if (value < lo_) {
        index = 0;
    } else {
        const auto raw = static_cast<std::size_t>((value - lo_) / width_);
        index = std::min(raw, counts_.size() - 1);
    }
    ++counts_[index];
    ++total_;
}

void histogram::add(std::span<const double> values) noexcept
{
    // One total_ update for the whole run; the bin loop touches only the
    // counts array. bin-index math matches add(double) exactly.
    for (const double v : values) {
        std::size_t index;
        if (v < lo_) {
            index = 0;
        } else {
            const auto raw = static_cast<std::size_t>((v - lo_) / width_);
            index = std::min(raw, counts_.size() - 1);
        }
        ++counts_[index];
    }
    total_ += values.size();
}

void histogram::add(std::span<const float> values) noexcept
{
    for (const float v : values) {
        std::size_t index;
        const auto value = static_cast<double>(v);
        if (value < lo_) {
            index = 0;
        } else {
            const auto raw = static_cast<std::size_t>((value - lo_) / width_);
            index = std::min(raw, counts_.size() - 1);
        }
        ++counts_[index];
    }
    total_ += values.size();
}

void histogram::add_all(std::span<const double> values) noexcept
{
    add(values);
}

double histogram::bin_lower(std::size_t i) const noexcept
{
    return lo_ + width_ * static_cast<double>(i);
}

double histogram::bin_center(std::size_t i) const noexcept
{
    return bin_lower(i) + 0.5 * width_;
}

double histogram::exceedance(double x) const noexcept
{
    if (total_ == 0) {
        return 0.0;
    }
    if (x < lo_) {
        return 1.0;
    }
    if (x >= hi_) {
        return 0.0;
    }
    const auto bin = std::min(static_cast<std::size_t>((x - lo_) / width_), counts_.size() - 1);
    std::uint64_t above = 0;
    for (std::size_t i = bin + 1; i < counts_.size(); ++i) {
        above += counts_[i];
    }
    // Linear interpolation of the containing bin's mass.
    const double in_bin_fraction = (bin_lower(bin) + width_ - x) / width_;
    const double partial = static_cast<double>(counts_[bin]) * in_bin_fraction;
    return (static_cast<double>(above) + partial) / static_cast<double>(total_);
}

double histogram::quantile(double q) const noexcept
{
    if (total_ == 0) {
        return lo_;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto c = static_cast<double>(counts_[i]);
        if (cumulative + c >= target) {
            const double fraction = c > 0.0 ? (target - cumulative) / c : 0.0;
            return bin_lower(i) + fraction * width_;
        }
        cumulative += c;
    }
    return hi_;
}

std::vector<double> histogram::normalized() const
{
    std::vector<double> mass(counts_.size(), 0.0);
    if (total_ == 0) {
        return mass;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        mass[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    }
    return mass;
}

std::string histogram::ascii_render(std::size_t max_bar_width) const
{
    std::ostringstream out;
    std::uint64_t peak = 1;
    for (const std::uint64_t c : counts_) {
        peak = std::max(peak, c);
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(max_bar_width));
        out << "[";
        out.precision(4);
        out << bin_lower(i) << ", " << bin_lower(i) + width_ << ") ";
        out << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

integer_histogram::integer_histogram(std::size_t max_value)
    : counts_(max_value + 1, 0)
{
}

void integer_histogram::add(std::size_t value) noexcept
{
    const std::size_t index = std::min(value, counts_.size() - 1);
    ++counts_[index];
    ++total_;
}

std::uint64_t integer_histogram::count_at(std::size_t value) const noexcept
{
    return counts_[std::min(value, counts_.size() - 1)];
}

double integer_histogram::mean() const noexcept
{
    if (total_ == 0) {
        return 0.0;
    }
    double weighted = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
    }
    return weighted / static_cast<double>(total_);
}

std::vector<double> integer_histogram::normalized() const
{
    std::vector<double> mass(counts_.size(), 0.0);
    if (total_ == 0) {
        return mass;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        mass[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    }
    return mass;
}

std::string integer_histogram::ascii_render(std::size_t max_bar_width) const
{
    std::ostringstream out;
    std::uint64_t peak = 1;
    for (const std::uint64_t c : counts_) {
        peak = std::max(peak, c);
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(max_bar_width));
        out << i << ": " << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace synts::util
