// table.h -- aligned console tables for the bench harness.
//
// Every bench binary reports paper-vs-measured rows; this tiny formatter
// keeps that output uniform and diff-friendly.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace synts::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision. Rendering pads every column to its widest cell.
class text_table {
public:
    /// Creates a table with the given column headers.
    explicit text_table(std::vector<std::string> headers);

    /// Begins a new row; subsequent `cell` calls fill it left to right.
    void begin_row();

    /// Appends a string cell to the current row.
    void cell(std::string value);

    /// Appends a numeric cell formatted with `precision` fraction digits.
    void cell(double value, int precision = 4);

    /// Appends an integer cell.
    void cell(long long value);

    /// Convenience: adds a complete row at once.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows so far.
    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table with a header underline; `indent` spaces prefix
    /// every line.
    [[nodiscard]] std::string render(std::size_t indent = 2) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by table and CSV writers).
[[nodiscard]] std::string format_double(double value, int precision);

/// Formats `measured` against `expected` as e.g. "0.93 (paper 1.00, -7.0%)".
[[nodiscard]] std::string format_vs_paper(double measured, double expected, int precision = 3);

} // namespace synts::util
