// csv.h -- CSV emission for experiment series (Pareto curves, error-vs-TSR
// sweeps) so results can be re-plotted outside the harness.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace synts::util {

/// Minimal CSV writer. Quotes cells containing separators or quotes; numeric
/// cells are written with round-trippable precision.
class csv_writer {
public:
    /// Wraps an output stream; the stream must outlive the writer.
    explicit csv_writer(std::ostream& out);

    /// Writes the header row.
    void header(const std::vector<std::string>& columns);

    /// Begins a new data row (flushing the previous one).
    void begin_row();

    /// Appends a string field.
    void field(const std::string& value);

    /// Appends a numeric field (max_digits10 precision).
    void field(double value);

    /// Appends an integer field.
    void field(long long value);

    /// Flushes the trailing row, if any. Called by the destructor too.
    void finish();

    ~csv_writer();
    csv_writer(const csv_writer&) = delete;
    csv_writer& operator=(const csv_writer&) = delete;

private:
    void raw_field(const std::string& encoded);

    std::ostream& out_;
    bool row_open_ = false;
    bool row_has_fields_ = false;
};

/// Escapes one CSV cell per RFC 4180 (quotes only when needed).
[[nodiscard]] std::string csv_escape(const std::string& value);

} // namespace synts::util
