// thread_safety.h -- Clang thread-safety-analysis capability wrappers.
//
// Every mutex in src/ is an annotated_mutex (or annotated_shared_mutex)
// from this header; the repo lint (scripts/lint_synts.py) rejects raw
// std::mutex anywhere else. Under clang the wrappers expose capability
// attributes so `-Wthread-safety -Werror` turns an unguarded access to a
// SYNTS_GUARDED_BY member -- or a *_locked helper called without its
// SYNTS_REQUIRES lock -- into a build break. Under GCC every attribute
// macro expands to nothing and the wrappers compile to plain
// std::mutex/std::shared_mutex.
//
// The same wrappers feed the debug-only lock-rank deadlock detector
// (util/lock_rank.h): each mutex is constructed with a rank from the
// canonical table and a name, and every acquisition is checked against the
// calling thread's held-rank stack. In release builds (NDEBUG, no
// SYNTS_FORCE_LOCK_RANK_CHECKS) the rank/name members and every check
// vanish -- annotated_mutex is layout-identical to std::mutex.
//
// Idioms the analysis requires (clang TSA matches capability EXPRESSIONS
// textually, and does not see through libstdc++'s lock types):
//   - use the scoped guards below, never std::lock_guard/std::unique_lock;
//   - bind a local reference first when locking through an indirection,
//     so the guard expression and the member accesses name the same
//     object:  worker_queue& queue = *queues_[i];
//              const util::mutex_lock lock(queue.mutex);
//              queue.tasks.push_back(...);
//   - waits go through cv_mutex_lock + std::condition_variable_any, and
//     the wait condition is re-checked in an explicit loop rather than a
//     predicate lambda (the analysis cannot see that libstdc++ invokes the
//     predicate with the lock held);
//   - constructors and destructors are not analyzed (clang treats them as
//     NO_THREAD_SAFETY_ANALYSIS), which is why e.g. workload_registry's
//     copy constructor may fill its own members lock-free.

#pragma once

#include "util/lock_rank.h"

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define SYNTS_TSA(x) __attribute__((x))
#else
#define SYNTS_TSA(x)
#endif

#define SYNTS_CAPABILITY(name) SYNTS_TSA(capability(name))
#define SYNTS_SCOPED_CAPABILITY SYNTS_TSA(scoped_lockable)
#define SYNTS_GUARDED_BY(mutex) SYNTS_TSA(guarded_by(mutex))
#define SYNTS_PT_GUARDED_BY(mutex) SYNTS_TSA(pt_guarded_by(mutex))
#define SYNTS_REQUIRES(...) SYNTS_TSA(requires_capability(__VA_ARGS__))
#define SYNTS_REQUIRES_SHARED(...) SYNTS_TSA(requires_shared_capability(__VA_ARGS__))
#define SYNTS_ACQUIRE(...) SYNTS_TSA(acquire_capability(__VA_ARGS__))
#define SYNTS_ACQUIRE_SHARED(...) SYNTS_TSA(acquire_shared_capability(__VA_ARGS__))
#define SYNTS_RELEASE(...) SYNTS_TSA(release_capability(__VA_ARGS__))
#define SYNTS_RELEASE_SHARED(...) SYNTS_TSA(release_shared_capability(__VA_ARGS__))
#define SYNTS_TRY_ACQUIRE(...) SYNTS_TSA(try_acquire_capability(__VA_ARGS__))
#define SYNTS_EXCLUDES(...) SYNTS_TSA(locks_excluded(__VA_ARGS__))
#define SYNTS_RETURN_CAPABILITY(mutex) SYNTS_TSA(lock_returned(mutex))
#define SYNTS_NO_THREAD_SAFETY_ANALYSIS SYNTS_TSA(no_thread_safety_analysis)

namespace synts::util {

/// std::mutex plus a capability attribute and a lock rank. Release builds
/// carry no extra state and every member inlines to the std::mutex call.
class SYNTS_CAPABILITY("mutex") annotated_mutex {
public:
#if SYNTS_LOCK_RANK_CHECKS
    annotated_mutex(lock_rank rank, const char* name) : rank_(rank), name_(name)
    {
        lock_rank_detail::note_created(this, rank_, name_);
    }

    ~annotated_mutex() { lock_rank_detail::note_destroyed(this); }
#else
    annotated_mutex(lock_rank, const char*) noexcept {}

    ~annotated_mutex() = default;
#endif

    annotated_mutex(const annotated_mutex&) = delete;
    annotated_mutex& operator=(const annotated_mutex&) = delete;

    void lock() SYNTS_ACQUIRE()
    {
#if SYNTS_LOCK_RANK_CHECKS
        // Checked BEFORE blocking: a rank inversion aborts with both names
        // instead of deadlocking against the thread holding the other lock.
        lock_rank_detail::note_acquired(rank_, name_);
#endif
        mutex_.lock();
    }

    bool try_lock() SYNTS_TRY_ACQUIRE(true)
    {
        if (!mutex_.try_lock()) {
            return false;
        }
#if SYNTS_LOCK_RANK_CHECKS
        // A successful try_lock establishes the same ordering edge a
        // blocking lock would, so it is held to the same rank discipline.
        lock_rank_detail::note_acquired(rank_, name_);
#endif
        return true;
    }

    void unlock() SYNTS_RELEASE()
    {
        mutex_.unlock();
#if SYNTS_LOCK_RANK_CHECKS
        lock_rank_detail::note_released(rank_, name_);
#endif
    }

private:
    std::mutex mutex_;
#if SYNTS_LOCK_RANK_CHECKS
    lock_rank rank_;
    const char* name_;
#endif
};

/// std::shared_mutex counterpart. Shared (reader) acquisitions obey the
/// same rank order as exclusive ones: a reader blocking behind a writer
/// creates the same wait-for edge.
class SYNTS_CAPABILITY("shared_mutex") annotated_shared_mutex {
public:
#if SYNTS_LOCK_RANK_CHECKS
    annotated_shared_mutex(lock_rank rank, const char* name) : rank_(rank), name_(name)
    {
        lock_rank_detail::note_created(this, rank_, name_);
    }

    ~annotated_shared_mutex() { lock_rank_detail::note_destroyed(this); }
#else
    annotated_shared_mutex(lock_rank, const char*) noexcept {}

    ~annotated_shared_mutex() = default;
#endif

    annotated_shared_mutex(const annotated_shared_mutex&) = delete;
    annotated_shared_mutex& operator=(const annotated_shared_mutex&) = delete;

    void lock() SYNTS_ACQUIRE()
    {
#if SYNTS_LOCK_RANK_CHECKS
        lock_rank_detail::note_acquired(rank_, name_);
#endif
        mutex_.lock();
    }

    void unlock() SYNTS_RELEASE()
    {
        mutex_.unlock();
#if SYNTS_LOCK_RANK_CHECKS
        lock_rank_detail::note_released(rank_, name_);
#endif
    }

    void lock_shared() SYNTS_ACQUIRE_SHARED()
    {
#if SYNTS_LOCK_RANK_CHECKS
        lock_rank_detail::note_acquired(rank_, name_);
#endif
        mutex_.lock_shared();
    }

    void unlock_shared() SYNTS_RELEASE_SHARED()
    {
        mutex_.unlock_shared();
#if SYNTS_LOCK_RANK_CHECKS
        lock_rank_detail::note_released(rank_, name_);
#endif
    }

private:
    std::shared_mutex mutex_;
#if SYNTS_LOCK_RANK_CHECKS
    lock_rank rank_;
    const char* name_;
#endif
};

/// Scope-bound exclusive lock (the std::lock_guard replacement).
class SYNTS_SCOPED_CAPABILITY mutex_lock {
public:
    explicit mutex_lock(annotated_mutex& mutex) SYNTS_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~mutex_lock() SYNTS_RELEASE() { mutex_.unlock(); }

    mutex_lock(const mutex_lock&) = delete;
    mutex_lock& operator=(const mutex_lock&) = delete;

private:
    annotated_mutex& mutex_;
};

/// Scope-bound shared (reader) lock.
class SYNTS_SCOPED_CAPABILITY shared_mutex_lock {
public:
    explicit shared_mutex_lock(annotated_shared_mutex& mutex) SYNTS_ACQUIRE_SHARED(mutex)
        : mutex_(mutex)
    {
        mutex_.lock_shared();
    }

    ~shared_mutex_lock() SYNTS_RELEASE() { mutex_.unlock_shared(); }

    shared_mutex_lock(const shared_mutex_lock&) = delete;
    shared_mutex_lock& operator=(const shared_mutex_lock&) = delete;

private:
    annotated_shared_mutex& mutex_;
};

/// Scope-bound exclusive lock that std::condition_variable_any can wait
/// on. The BasicLockable surface (lock/unlock) is deliberately free of
/// acquire/release annotations: the condition variable releases and
/// reacquires around the wait, and the analysis models the capability as
/// held across it (the abseil CondVar model). The lock-rank stack still
/// sees the real release/reacquire through annotated_mutex itself.
class SYNTS_SCOPED_CAPABILITY cv_mutex_lock {
public:
    explicit cv_mutex_lock(annotated_mutex& mutex) SYNTS_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~cv_mutex_lock() SYNTS_RELEASE() { mutex_.unlock(); }

    cv_mutex_lock(const cv_mutex_lock&) = delete;
    cv_mutex_lock& operator=(const cv_mutex_lock&) = delete;

    void lock() SYNTS_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }

    void unlock() SYNTS_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

private:
    annotated_mutex& mutex_;
};

} // namespace synts::util
