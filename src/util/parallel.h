// parallel.h -- layer-neutral parallel-for hook.
//
// The characterization pipeline (workload generation, architectural
// profiling, per-interval timing simulation) lives below the runtime layer,
// so it cannot name runtime::thread_pool directly. Instead each phase takes
// a `parallel_for_fn`: a type-erased "run body(i) for every i in [0, count)"
// executor. The runtime adapts its work-stealing pool to this signature
// (runtime::make_parallel_for); an empty function means serial execution.
//
// Contract for implementations: body(i) is invoked exactly once per index,
// on any thread, in any order, and the call must not return until every
// index has completed. Callers guarantee body is safe to run concurrently
// for distinct indices and that results land in pre-assigned slots, so the
// output is bit-identical regardless of schedule.

#pragma once

#include <cstddef>
#include <functional>

namespace synts::util {

/// Type-erased parallel-for executor (see file comment for the contract).
using parallel_for_fn =
    std::function<void(std::size_t count, const std::function<void(std::size_t)>& body)>;

/// Runs `body` over [0, count): through `parallel` when set, serially in
/// index order otherwise.
inline void for_each_index(const parallel_for_fn& parallel, std::size_t count,
                           const std::function<void(std::size_t)>& body)
{
    if (parallel) {
        parallel(count, body);
        return;
    }
    for (std::size_t i = 0; i < count; ++i) {
        body(i);
    }
}

} // namespace synts::util
