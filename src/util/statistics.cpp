#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace synts::util {

void running_stats::add(double x) noexcept
{
    if (!any_) {
        min_ = x;
        max_ = x;
        any_ = true;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) noexcept
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double running_stats::variance() const noexcept
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept
{
    return std::sqrt(variance());
}

double quantile(std::span<const double> values, double q)
{
    if (values.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    return quantile_sorted(sorted, q);
}

double quantile_sorted(std::span<const double> sorted_values, double q) noexcept
{
    if (sorted_values.empty()) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double position = q * static_cast<double>(sorted_values.size() - 1);
    const auto lower = static_cast<std::size_t>(position);
    const std::size_t upper = std::min(lower + 1, sorted_values.size() - 1);
    const double fraction = position - static_cast<double>(lower);
    return sorted_values[lower] * (1.0 - fraction) + sorted_values[upper] * fraction;
}

double exceedance_fraction(std::span<const double> values, double threshold) noexcept
{
    if (values.empty()) {
        return 0.0;
    }
    std::size_t exceeding = 0;
    for (const double v : values) {
        if (v > threshold) {
            ++exceeding;
        }
    }
    return static_cast<double>(exceeding) / static_cast<double>(values.size());
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) noexcept
{
    const std::size_t n = std::min(xs.size(), ys.size());
    if (n < 2) {
        return 0.0;
    }
    running_stats sx;
    running_stats sy;
    for (std::size_t i = 0; i < n; ++i) {
        sx.add(xs[i]);
        sy.add(ys[i]);
    }
    const double mx = sx.mean();
    const double my = sy.mean();
    double covariance = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        covariance += (xs[i] - mx) * (ys[i] - my);
    }
    covariance /= static_cast<double>(n - 1);
    const double denom = sx.stddev() * sy.stddev();
    if (denom <= 0.0) {
        return 0.0;
    }
    return covariance / denom;
}

double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> estimate) noexcept
{
    const std::size_t n = std::min(truth.size(), estimate.size());
    if (n == 0) {
        return 0.0;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += std::abs(truth[i] - estimate[i]);
    }
    return total / static_cast<double>(n);
}

double root_mean_squared_error(std::span<const double> truth,
                               std::span<const double> estimate) noexcept
{
    const std::size_t n = std::min(truth.size(), estimate.size());
    if (n == 0) {
        return 0.0;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = truth[i] - estimate[i];
        total += d * d;
    }
    return std::sqrt(total / static_cast<double>(n));
}

double total_variation_distance(std::span<const double> lhs,
                                std::span<const double> rhs) noexcept
{
    const std::size_t n = std::max(lhs.size(), rhs.size());
    if (n == 0) {
        return 0.0;
    }
    double lhs_total = 0.0;
    double rhs_total = 0.0;
    for (const double v : lhs) {
        lhs_total += std::max(v, 0.0);
    }
    for (const double v : rhs) {
        rhs_total += std::max(v, 0.0);
    }
    if (lhs_total <= 0.0 || rhs_total <= 0.0) {
        return lhs_total == rhs_total ? 0.0 : 1.0;
    }
    double distance = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double p = i < lhs.size() ? std::max(lhs[i], 0.0) / lhs_total : 0.0;
        const double q = i < rhs.size() ? std::max(rhs[i], 0.0) / rhs_total : 0.0;
        distance += std::abs(p - q);
    }
    return 0.5 * distance;
}

double wilson_half_width(std::size_t successes, std::size_t trials) noexcept
{
    if (trials == 0) {
        return 1.0;
    }
    constexpr double z = 1.959963984540054; // 97.5th percentile of N(0,1)
    const auto n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    return half;
}

} // namespace synts::util
