// lock_rank.h -- the canonical lock-order table plus a debug-only
// lock-rank deadlock detector.
//
// TSan finds lock-order cycles only on interleavings that actually execute;
// the rank detector finds deadlock POTENTIAL on any single execution. Every
// annotated_mutex (util/thread_safety.h) declares a rank from the table
// below, and a thread may only acquire a mutex whose rank is STRICTLY
// GREATER than the highest rank it already holds. Any violation -- on any
// thread, in any test, under any schedule -- aborts immediately with both
// mutex names and ranks, so a lock-order comment can never silently drift
// from reality.
//
// The rank table (lower rank = acquired first; the partial order is the
// transitive closure of the real nesting sites cited):
//
//   rank | name              | mutex                            | held while taking
//   -----+-------------------+----------------------------------+------------------
//     10 | speculator        | speculator::mutex_               | pool_sleep, pool_queue,
//        |                   |                                  | cache_shard, cancel_tree,
//        |                   |                                  | workload_registry
//        |                   |                                  | (observe/launch paths)
//     20 | pool_sleep        | thread_pool::sleep_mutex_        | pool_queue (enqueue's
//        |                   |                                  | gate+push sequence)
//     30 | pool_queue        | thread_pool::worker_queue::mutex | (leaf; never two at once)
//     40 | cache_shard       | memo_tier::shard::mutex          | (leaf; factories run
//        |                   |                                  | outside the shard lock)
//     50 | cancel_tree       | detail::cancel_state::mutex      | (leaf; cancel_cascade
//        |                   |                                  | snapshots children and
//        |                   |                                  | recurses UNLOCKED)
//     60 | workload_registry | workload_registry::mutex_        | (leaf; factories invoked
//        |                   |                                  | outside the lock)
//     70 | sampler_wake      | sampler::wake_mutex_             | (leaf; released before
//        |                   |                                  | sample_now)
//     80 | metrics_registry  | metrics_registry::mutex_         | (leaf; guards interning
//        |                   |                                  | only, not instrument IO)
//     90 | sampler_series    | sampler::mutex_                  | (leaf; registry snapshot
//        |                   |                                  | taken BEFORE this lock)
//    100 | health_events     | health_monitor::mutex_           | (leaf; rare-path only)
//    110 | trace_buffers     | trace_recorder::buffers_mutex_   | (leaf; once per
//        |                   |                                  | (thread, recorder))
//
// runtime/fleet_watch and storage/artifact_store hold no mutexes at all
// (single-caller contract and atomic-rename publishes respectively), so
// they have no row.
//
// Gating: the detector compiles to NOTHING in release builds --
// annotated_mutex is then layout-identical to std::mutex and every note_*
// call disappears (bench_locks pins the overhead at <= 2% over a raw
// std::mutex). It is on when NDEBUG is not defined (the default Debug
// build), and can be forced on in optimized builds (the TSan CI job) with
// -DSYNTS_LOCK_RANK=ON, which defines SYNTS_FORCE_LOCK_RANK_CHECKS
// globally. Define it for the WHOLE build, never per-TU: annotated_mutex's
// layout depends on it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(SYNTS_FORCE_LOCK_RANK_CHECKS)
#define SYNTS_LOCK_RANK_CHECKS 1
#elif defined(NDEBUG)
#define SYNTS_LOCK_RANK_CHECKS 0
#else
#define SYNTS_LOCK_RANK_CHECKS 1
#endif

namespace synts::util {

/// The lock-order table (see the file comment for the per-row rationale).
/// Gaps between values are deliberate: a future mutex slots between two
/// existing ranks without renumbering the table.
enum class lock_rank : std::uint16_t {
    speculator = 10,
    pool_sleep = 20,
    pool_queue = 30,
    cache_shard = 40,
    cancel_tree = 50,
    workload_registry = 60,
    sampler_wake = 70,
    metrics_registry = 80,
    sampler_series = 90,
    health_events = 100,
    trace_buffers = 110,
};

/// Human-readable name of a table rank, or nullptr for a value outside the
/// table (the coverage test asserts every live mutex maps to a named rank).
[[nodiscard]] const char* lock_rank_name(lock_rank rank) noexcept;

namespace lock_rank_detail {

#if SYNTS_LOCK_RANK_CHECKS

/// Checks `rank` against the calling thread's held-rank stack and pushes
/// it. Called BEFORE blocking on the underlying mutex, so an ordering
/// violation aborts (with both mutex names and ranks on stderr) instead of
/// deadlocking. Strictly ascending: acquiring at a rank <= the top of the
/// stack is a violation, including equal ranks -- no same-rank nesting
/// exists in the codebase (cancel_cascade recurses unlocked, the pool
/// never holds two queue locks).
void note_acquired(lock_rank rank, const char* name) noexcept;

/// Pops `rank` from the calling thread's held stack (topmost matching
/// entry). Aborts on a release of a lock the thread does not hold.
void note_released(lock_rank rank, const char* name) noexcept;

/// Locks currently held by the calling thread (test hook).
[[nodiscard]] std::size_t held_count() noexcept;

/// Registers a live annotated mutex (called by its constructor).
void note_created(const void* mutex, lock_rank rank, const char* name);

/// Unregisters a live annotated mutex (called by its destructor).
void note_destroyed(const void* mutex) noexcept;

struct live_mutex {
    lock_rank rank;
    const char* name;
};

/// Snapshot of every live annotated mutex in the process -- the coverage
/// test walks it to assert the rank table names every rank in use.
[[nodiscard]] std::vector<live_mutex> live_mutexes();

#endif // SYNTS_LOCK_RANK_CHECKS

} // namespace lock_rank_detail

} // namespace synts::util
