// cancellation.h -- layer-neutral cooperative cancellation.
//
// The runtime's interruptible-task contract (runtime/cancel.h re-exports
// these names as runtime::cancel_token etc.) rests on a primitive that the
// characterization pipeline can poll without naming the runtime layer --
// the same reason util/parallel.h exists. The shape follows the adevs
// optimistic simulator's LogicalProcess (SNIPPETS.md snippet 1): work runs
// ahead holding an interrupt flag it polls at cheap boundaries, the
// controller flips the flag to abandon it, and nothing is committed by an
// interrupted run.
//
//   cancel_source  owns the flag: cancel(reason) flips it exactly once and
//                  fans out to every linked child source, so cancelling a
//                  sweep cancels its cells.
//   cancel_token   a cheap, copyable observer handle. The DEFAULT token is
//                  inert: cancelled() is constant false with no atomic
//                  access, so tokenless call paths stay byte-identical in
//                  behavior and essentially free in cost.
//
// Polling discipline: long-running work calls token.throw_if_cancelled()
// at natural chunk boundaries (per characterization interval, per sweep
// cell, between pipeline phases) and lets operation_cancelled unwind. The
// flag itself is a lock-free atomic; the mutex guards only the reason
// string and the child list, neither of which is touched on the poll fast
// path.

#pragma once

#include "util/thread_safety.h"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace synts::util {

/// Thrown by throw_if_cancelled() (and by anything that observes a cancel
/// and unwinds). Deliberately NOT derived from a domain error: catching it
/// means "the work was abandoned on request", never "the work failed".
class operation_cancelled : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

namespace detail {

/// Shared state of one source and all its tokens.
struct cancel_state {
    std::atomic<bool> cancelled{false};
    /// Guards `reason` and `children` only -- never taken on the poll path.
    /// A leaf in the rank order: cancel_cascade snapshots the children and
    /// recurses AFTER releasing, so parent and child mutexes never nest.
    annotated_mutex mutex{lock_rank::cancel_tree, "cancel_state"};
    std::string reason SYNTS_GUARDED_BY(mutex);
    std::vector<std::weak_ptr<cancel_state>> children SYNTS_GUARDED_BY(mutex);
};

/// Flips `state` (if not already flipped) and recursively cancels its
/// linked children. Returns true when THIS call did the flip.
bool cancel_cascade(const std::shared_ptr<cancel_state>& state,
                    std::string_view reason) noexcept;

} // namespace detail

/// Observer handle on a cancel_source's flag. Copyable, cheap to pass by
/// value; a default-constructed token is inert (never cancelled).
class cancel_token {
public:
    cancel_token() = default;

    /// True when this token is linked to a source at all. False = inert:
    /// cancelled() can never become true, so hot loops may skip polling
    /// entirely.
    [[nodiscard]] bool can_cancel() const noexcept { return state_ != nullptr; }

    /// True once the owning source (or any linked ancestor) cancelled.
    /// Lock-free; safe to poll from any thread at any frequency.
    [[nodiscard]] bool cancelled() const noexcept
    {
        return state_ != nullptr && state_->cancelled.load(std::memory_order_acquire);
    }

    /// The reason passed to cancel(); empty while not cancelled (or inert).
    [[nodiscard]] std::string reason() const;

    /// Throws operation_cancelled(reason) once cancelled; no-op otherwise.
    /// This is the poll point long-running work places at chunk boundaries.
    void throw_if_cancelled() const;

private:
    friend class cancel_source;
    explicit cancel_token(std::shared_ptr<detail::cancel_state> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::cancel_state> state_;
};

/// Owner of one cancellation flag. Copyable (copies share the flag);
/// destroying every source does NOT cancel -- outstanding tokens simply
/// never fire, matching the inert-by-default contract.
class cancel_source {
public:
    /// A fresh, independent source.
    cancel_source() : state_(std::make_shared<detail::cancel_state>()) {}

    /// A source LINKED under `parent`: cancelling the parent's source
    /// cancels this one too (parent -> child propagation only; cancelling
    /// the child never touches the parent). A parent that is already
    /// cancelled cancels the new source immediately, so there is no window
    /// in which a child of a dead parent runs uninterruptible. An inert
    /// parent token yields an ordinary independent source.
    explicit cancel_source(const cancel_token& parent);

    /// The observer handle to hand to the work.
    [[nodiscard]] cancel_token token() const noexcept { return cancel_token(state_); }

    /// Flips the flag (idempotent; the FIRST call's reason wins and is the
    /// one tokens report) and propagates to every linked child. Returns
    /// true when this call did the flip, false when already cancelled.
    bool cancel(std::string_view reason = "cancelled") noexcept;

    /// True once cancel() ran (on this source or a linked ancestor).
    [[nodiscard]] bool cancelled() const noexcept
    {
        return state_->cancelled.load(std::memory_order_acquire);
    }

private:
    std::shared_ptr<detail::cancel_state> state_;
};

} // namespace synts::util
