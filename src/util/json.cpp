#include "util/json.h"

#include <cstdint>
#include <cstdlib>

namespace synts::util {

namespace {

/// Recursive-descent parser over a string_view. Nesting is capped so a
/// hostile (or corrupted) document cannot overflow the stack.
class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    json_value run()
    {
        json_value value = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
        }
        return value;
    }

private:
    static constexpr int max_depth = 64;

    [[noreturn]] void fail(const std::string& what) const
    {
        throw json_error(what, pos_);
    }

    [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

    void skip_ws() noexcept
    {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                return;
            }
            ++pos_;
        }
    }

    void expect(char c)
    {
        if (eof() || peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    json_value parse_value(int depth)
    {
        if (depth > max_depth) {
            fail("nesting too deep");
        }
        skip_ws();
        if (eof()) {
            fail("unexpected end of document");
        }
        switch (peek()) {
        case '{': return parse_object(depth);
        case '[': return parse_array(depth);
        case '"': return json_value(parse_string());
        case 't':
            if (!consume_literal("true")) {
                fail("bad literal");
            }
            return json_value(true);
        case 'f':
            if (!consume_literal("false")) {
                fail("bad literal");
            }
            return json_value(false);
        case 'n':
            if (!consume_literal("null")) {
                fail("bad literal");
            }
            return json_value();
        default: return json_value(parse_number());
        }
    }

    json_value parse_object(int depth)
    {
        expect('{');
        json_object members;
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            return json_value(std::move(members));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            json_value value = parse_value(depth + 1);
            // Duplicate keys keep the FIRST occurrence: later duplicates
            // are parsed (syntax must still be valid) but dropped.
            bool duplicate = false;
            for (const auto& [name, existing] : members) {
                if (name == key) {
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate) {
                members.emplace_back(std::move(key), std::move(value));
            }
            skip_ws();
            if (eof()) {
                fail("unterminated object");
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return json_value(std::move(members));
        }
    }

    json_value parse_array(int depth)
    {
        expect('[');
        json_array elements;
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            return json_value(std::move(elements));
        }
        for (;;) {
            elements.push_back(parse_value(depth + 1));
            skip_ws();
            if (eof()) {
                fail("unterminated array");
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return json_value(std::move(elements));
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (eof()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': out += decode_unicode_escape(); break;
            default: fail("bad escape");
            }
        }
    }

    /// \uXXXX -> UTF-8. Surrogate pairs are combined; a lone surrogate is
    /// an error (these documents are ASCII in practice; strictness is
    /// cheaper than a replacement-character policy).
    std::string decode_unicode_escape()
    {
        std::uint32_t code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume_literal("\\u")) {
                fail("lone high surrogate");
            }
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
                fail("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    std::uint32_t parse_hex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            if (eof()) {
                fail("truncated \\u escape");
            }
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                fail("bad hex digit in \\u escape");
            }
        }
        return value;
    }

    double parse_number()
    {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-') {
            ++pos_;
        }
        const auto digits = [&] {
            std::size_t n = 0;
            while (!eof() && peek() >= '0' && peek() <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        const std::size_t int_digits = digits();
        if (int_digits == 0) {
            fail("bad number");
        }
        // JSON forbids leading zeros ("007"); strtod would accept them.
        if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
            fail("leading zero in number");
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (digits() == 0) {
                fail("bad fraction");
            }
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) {
                ++pos_;
            }
            if (digits() == 0) {
                fail("bad exponent");
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        return std::strtod(token.c_str(), nullptr);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

json_value json_value::parse(std::string_view text)
{
    return parser(text).run();
}

} // namespace synts::util
