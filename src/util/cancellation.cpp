#include "util/cancellation.h"

#include <utility>

namespace synts::util {

namespace detail {

bool cancel_cascade(const std::shared_ptr<cancel_state>& state,
                    std::string_view reason) noexcept
{
    std::vector<std::weak_ptr<cancel_state>> children;
    {
        cancel_state& s = *state;
        const mutex_lock lock(s.mutex);
        if (s.cancelled.load(std::memory_order_relaxed)) {
            return false; // already cancelled; the first reason stands
        }
        try {
            s.reason.assign(reason);
        } catch (...) {
            // Allocation failure leaves the reason empty; the flag (the
            // part correctness depends on) is still set below.
        }
        // The flag flips UNDER the mutex that guards child linking, so a
        // child linked concurrently either sees cancelled already set (and
        // self-cancels at link time) or is in `children` here -- never
        // neither.
        s.cancelled.store(true, std::memory_order_release);
        children = std::move(s.children);
        s.children.clear();
    }
    for (const std::weak_ptr<cancel_state>& weak : children) {
        if (const std::shared_ptr<cancel_state> child = weak.lock()) {
            (void)cancel_cascade(child, reason);
        }
    }
    return true;
}

} // namespace detail

std::string cancel_token::reason() const
{
    if (!cancelled()) {
        return {};
    }
    detail::cancel_state& s = *state_;
    const mutex_lock lock(s.mutex);
    return s.reason;
}

void cancel_token::throw_if_cancelled() const
{
    if (cancelled()) {
        std::string why = reason();
        throw operation_cancelled(why.empty() ? "cancelled" : why);
    }
}

cancel_source::cancel_source(const cancel_token& parent)
    : state_(std::make_shared<detail::cancel_state>())
{
    if (parent.state_ == nullptr) {
        return; // inert parent: independent source
    }
    std::string parent_reason;
    bool parent_cancelled = false;
    {
        detail::cancel_state& parent_state = *parent.state_;
        const mutex_lock lock(parent_state.mutex);
        if (parent_state.cancelled.load(std::memory_order_relaxed)) {
            parent_cancelled = true;
            parent_reason = parent_state.reason;
        } else {
            parent_state.children.push_back(state_);
        }
    }
    if (parent_cancelled) {
        (void)cancel(parent_reason.empty() ? "cancelled" : parent_reason);
    }
}

bool cancel_source::cancel(std::string_view reason) noexcept
{
    return detail::cancel_cascade(state_, reason);
}

} // namespace synts::util
