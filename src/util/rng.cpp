#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace synts::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

xoshiro256::xoshiro256(std::uint64_t seed) noexcept
{
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64_next(sm);
    }
    // An all-zero state is the one invalid state for xoshiro256**.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 0x9E3779B97F4A7C15ull;
    }
}

xoshiro256::result_type xoshiro256::operator()() noexcept
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double xoshiro256::uniform() noexcept
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double xoshiro256::uniform(double lo, double hi) noexcept
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t xoshiro256::uniform_below(std::uint64_t n) noexcept
{
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) {
            return r % n;
        }
    }
}

std::int64_t xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
}

bool xoshiro256::bernoulli(double p) noexcept
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniform() < p;
}

double xoshiro256::normal() noexcept
{
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    spare_normal_ = radius * std::sin(angle);
    has_spare_normal_ = true;
    return radius * std::cos(angle);
}

double xoshiro256::normal(double mean, double stddev) noexcept
{
    return mean + stddev * normal();
}

double xoshiro256::exponential(double lambda) noexcept
{
    double u = uniform();
    while (u <= 0.0) {
        u = uniform();
    }
    return -std::log(u) / lambda;
}

std::uint64_t xoshiro256::geometric(double p) noexcept
{
    if (p >= 1.0) {
        return 0;
    }
    double u = uniform();
    while (u <= 0.0) {
        u = uniform();
    }
    return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t xoshiro256::discrete(std::span<const double> weights) noexcept
{
    double total = 0.0;
    for (const double w : weights) {
        if (w > 0.0) {
            total += w;
        }
    }
    double pick = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (pick < w) {
            return i;
        }
        pick -= w;
    }
    // Floating point slack: return the last positive-weight index.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0) {
            return i;
        }
    }
    return 0;
}

xoshiro256 xoshiro256::split(std::uint64_t stream_tag) noexcept
{
    std::uint64_t sm = (*this)() ^ (stream_tag * 0xD1B54A32D192ED03ull + 0x2545F4914F6CDD1Dull);
    return xoshiro256{splitmix64_next(sm)};
}

void xoshiro256::jump() noexcept
{
    static constexpr std::array<std::uint64_t, 4> jump_words = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
        0x39ABDC4529B1661Cull};

    std::array<std::uint64_t, 4> accumulated{};
    for (const std::uint64_t word : jump_words) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ull << bit)) {
                for (std::size_t i = 0; i < 4; ++i) {
                    accumulated[i] ^= state_[i];
                }
            }
            (void)(*this)();
        }
    }
    state_ = accumulated;
}

void random_permutation(xoshiro256& rng, std::span<std::size_t> out) noexcept
{
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = i;
    }
    for (std::size_t i = out.size(); i > 1; --i) {
        const std::size_t j = rng.uniform_below(i);
        std::swap(out[i - 1], out[j]);
    }
}

std::vector<std::size_t> sample_without_replacement(xoshiro256& rng, std::size_t population,
                                                    std::size_t count)
{
    // Floyd's algorithm: O(count) expected insertions.
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    for (std::size_t j = population - count; j < population; ++j) {
        const std::size_t t = rng.uniform_below(j + 1);
        bool already = false;
        for (const std::size_t c : chosen) {
            if (c == t) {
                already = true;
                break;
            }
        }
        chosen.push_back(already ? j : t);
    }
    return chosen;
}

} // namespace synts::util
