// util/json.h -- a minimal JSON reader (DOM) for tooling.
//
// The repo is full of JSON *writers* (sweep documents, bench artifacts,
// Chrome traces) but until bench_diff nothing needed to read JSON back
// without shelling out to python. This is the smallest DOM that covers
// those documents: the six JSON kinds, strict parsing (trailing garbage,
// unterminated strings, bad escapes and malformed numbers all throw
// json_error with a byte offset), a recursion-depth cap instead of a stack
// overflow, and order-preserving objects (duplicate keys keep the first,
// matching what a honest writer emits). Numbers are doubles -- a 2%
// tolerance comparison does not care about the 53-bit integer ceiling.
//
// Not a general-purpose library on purpose: no serialization (writers
// already exist), no mutation helpers, no SAX interface.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace synts::util {

/// Parse failure: what went wrong and the byte offset it went wrong at.
class json_error : public std::runtime_error {
public:
    json_error(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " at byte " + std::to_string(offset)),
          offset_(offset)
    {
    }
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_;
};

class json_value;
using json_array = std::vector<json_value>;
/// Order-preserving object representation (documents are small; linear
/// key lookup beats a map's allocation churn and keeps emission order
/// available to callers that care).
using json_object = std::vector<std::pair<std::string, json_value>>;

class json_value {
public:
    enum class kind { null, boolean, number, string, array, object };

    json_value() = default;
    explicit json_value(bool b) : value_(b) {}
    explicit json_value(double d) : value_(d) {}
    explicit json_value(std::string s) : value_(std::move(s)) {}
    explicit json_value(json_array a) : value_(std::move(a)) {}
    explicit json_value(json_object o) : value_(std::move(o)) {}

    /// Parses exactly one JSON document (leading/trailing whitespace
    /// allowed, anything else after the value throws).
    [[nodiscard]] static json_value parse(std::string_view text);

    [[nodiscard]] kind type() const noexcept
    {
        return static_cast<kind>(value_.index());
    }
    [[nodiscard]] bool is_null() const noexcept { return type() == kind::null; }
    [[nodiscard]] bool is_bool() const noexcept { return type() == kind::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return type() == kind::number; }
    [[nodiscard]] bool is_string() const noexcept { return type() == kind::string; }
    [[nodiscard]] bool is_array() const noexcept { return type() == kind::array; }
    [[nodiscard]] bool is_object() const noexcept { return type() == kind::object; }

    /// Typed accessors; each throws json_error (offset 0) on a kind
    /// mismatch -- tooling wants loud schema drift, not default values.
    [[nodiscard]] bool as_bool() const { return get<bool>("boolean"); }
    [[nodiscard]] double as_number() const { return get<double>("number"); }
    [[nodiscard]] const std::string& as_string() const
    {
        return get<std::string>("string");
    }
    [[nodiscard]] const json_array& as_array() const
    {
        return get<json_array>("array");
    }
    [[nodiscard]] const json_object& as_object() const
    {
        return get<json_object>("object");
    }

    /// Object member lookup (first match); nullptr when absent or when
    /// this value is not an object.
    [[nodiscard]] const json_value* find(std::string_view key) const
    {
        if (!is_object()) {
            return nullptr;
        }
        for (const auto& [name, member] : std::get<json_object>(value_)) {
            if (name == key) {
                return &member;
            }
        }
        return nullptr;
    }

private:
    template <typename T>
    [[nodiscard]] const T& get(const char* wanted) const
    {
        if (const T* p = std::get_if<T>(&value_)) {
            return *p;
        }
        throw json_error(std::string("expected ") + wanted, 0);
    }

    std::variant<std::monostate, bool, double, std::string, json_array, json_object>
        value_;
};

} // namespace synts::util
