// histogram.h -- binned distributions.
//
// Two flavors are provided:
//   * histogram       -- fixed-width real-valued bins, used for sensitized
//                        path-delay distributions (the per-thread delay
//                        traces of Fig. 3.5 / 6.17 reduce to these), and
//   * integer_histogram -- dense counts over small non-negative integers,
//                        used for the Hamming-distance bar graphs of
//                        Fig. 5.10.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace synts::util {

/// Fixed-width binned histogram over [lo, hi). Out-of-range samples clamp to
/// the first/last bin so no mass is silently dropped.
class histogram {
public:
    /// Creates a histogram with `bin_count` equal-width bins spanning
    /// [lo, hi). Requires bin_count >= 1 and hi > lo (throws
    /// std::invalid_argument otherwise).
    histogram(double lo, double hi, std::size_t bin_count);

    /// Adds one sample.
    void add(double value) noexcept;

    /// Adds every sample of a span in order. Equivalent to values.size()
    /// scalar add() calls (pinned by tests/test_util_histogram); the bulk
    /// entry point exists so hot paths hand over whole lane runs (e.g. one
    /// corner's 64 batched delays) in a single call that updates `total_`
    /// once and keeps the bin-index loop tight.
    void add(std::span<const double> values) noexcept;

    /// Bulk add over single-precision samples (the sampling traces store
    /// float delays). Each value is widened to double and binned exactly as
    /// add(double(value)) would.
    void add(std::span<const float> values) noexcept;

    /// Adds every sample of a span (alias of the bulk add overload, kept
    /// for existing call sites).
    void add_all(std::span<const double> values) noexcept;

    /// Number of bins.
    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    /// Count in bin `i`.
    [[nodiscard]] std::uint64_t count_at(std::size_t i) const noexcept { return counts_[i]; }
    /// Total number of samples.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Lower edge of bin `i`.
    [[nodiscard]] double bin_lower(std::size_t i) const noexcept;
    /// Center of bin `i`.
    [[nodiscard]] double bin_center(std::size_t i) const noexcept;
    /// Width of every bin.
    [[nodiscard]] double bin_width() const noexcept { return width_; }

    /// Empirical P(X > x). Exact with respect to bin boundaries; within the
    /// containing bin, mass is interpolated linearly.
    [[nodiscard]] double exceedance(double x) const noexcept;

    /// Empirical q-quantile (linear interpolation inside bins).
    [[nodiscard]] double quantile(double q) const noexcept;

    /// Bin masses normalized to sum to 1 (empty histogram -> all zeros).
    [[nodiscard]] std::vector<double> normalized() const;

    /// Multi-line ASCII bar rendering (for bench/report output).
    [[nodiscard]] std::string ascii_render(std::size_t max_bar_width = 50) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Dense counts over {0, 1, ..., max_value}. Values above max_value clamp
/// into the last bucket.
class integer_histogram {
public:
    /// Creates counts over [0, max_value].
    explicit integer_histogram(std::size_t max_value);

    /// Adds one observation.
    void add(std::size_t value) noexcept;

    /// Count of observations equal to `value` (clamped).
    [[nodiscard]] std::uint64_t count_at(std::size_t value) const noexcept;
    /// Number of buckets (max_value + 1).
    [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
    /// Total observations.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Mean of the observed values.
    [[nodiscard]] double mean() const noexcept;

    /// Bucket masses normalized to sum to 1.
    [[nodiscard]] std::vector<double> normalized() const;

    /// Multi-line ASCII bar rendering.
    [[nodiscard]] std::string ascii_render(std::size_t max_bar_width = 50) const;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace synts::util
