#include "util/csv.h"

#include <limits>
#include <sstream>

namespace synts::util {

csv_writer::csv_writer(std::ostream& out)
    : out_(out)
{
}

void csv_writer::header(const std::vector<std::string>& columns)
{
    begin_row();
    for (const auto& c : columns) {
        field(c);
    }
}

void csv_writer::begin_row()
{
    if (row_open_) {
        out_ << "\n";
    }
    row_open_ = true;
    row_has_fields_ = false;
}

void csv_writer::raw_field(const std::string& encoded)
{
    if (!row_open_) {
        begin_row();
    }
    if (row_has_fields_) {
        out_ << ",";
    }
    out_ << encoded;
    row_has_fields_ = true;
}

void csv_writer::field(const std::string& value)
{
    raw_field(csv_escape(value));
}

void csv_writer::field(double value)
{
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << value;
    raw_field(tmp.str());
}

void csv_writer::field(long long value)
{
    raw_field(std::to_string(value));
}

void csv_writer::finish()
{
    if (row_open_) {
        out_ << "\n";
        row_open_ = false;
    }
}

csv_writer::~csv_writer()
{
    finish();
}

std::string csv_escape(const std::string& value)
{
    const bool needs_quotes =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return value;
    }
    std::string escaped = "\"";
    for (const char c : value) {
        if (c == '"') {
            escaped += "\"\"";
        } else {
            escaped += c;
        }
    }
    escaped += "\"";
    return escaped;
}

} // namespace synts::util
