#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace synts::util {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void text_table::begin_row()
{
    rows_.emplace_back();
}

void text_table::cell(std::string value)
{
    if (rows_.empty()) {
        begin_row();
    }
    rows_.back().push_back(std::move(value));
}

void text_table::cell(double value, int precision)
{
    cell(format_double(value, precision));
}

void text_table::cell(long long value)
{
    cell(std::to_string(value));
}

void text_table::add_row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string text_table::render(std::size_t indent) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size()) {
                widths.resize(c + 1, 0);
            }
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const std::string pad(indent, ' ');
    std::ostringstream out;

    auto emit_row = [&](const std::vector<std::string>& cells) {
        out << pad;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& value = c < cells.size() ? cells[c] : std::string{};
            out << value << std::string(widths[c] - value.size() + 2, ' ');
        }
        out << "\n";
    };

    emit_row(headers_);
    out << pad;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out << std::string(widths[c], '-') << "  ";
    }
    out << "\n";
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string format_double(double value, int precision)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

std::string format_vs_paper(double measured, double expected, int precision)
{
    std::ostringstream out;
    out << format_double(measured, precision) << " (paper " << format_double(expected, precision);
    if (expected != 0.0) {
        const double delta = (measured - expected) / expected * 100.0;
        out << ", " << (delta >= 0 ? "+" : "") << format_double(delta, 1) << "%";
    }
    out << ")";
    return out.str();
}

} // namespace synts::util
