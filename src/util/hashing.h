// hashing.h -- stable 64-bit digests for configuration structs.
//
// The runtime's experiment cache keys on (benchmark, stage, config digest):
// two experiment_configs with the same digest are treated as producing the
// same characterization. Digests therefore fold in every field that can
// change a result, use a fixed byte order (doubles through their IEEE-754
// bit pattern), and are independent of the standard library's unspecified
// std::hash. FNV-1a is enough: keys are tiny and collisions only cost a
// wrongly shared cache slot across *deliberately different* configs, which
// the 64-bit space makes vanishingly unlikely.

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string_view>
#include <type_traits>

namespace synts::util {

/// Incremental FNV-1a 64-bit hasher with typed feed helpers.
class digest_builder {
public:
    /// Feeds one raw byte.
    void byte(std::uint8_t b) noexcept
    {
        state_ ^= b;
        state_ *= 0x100000001B3ull;
    }

    /// Feeds an unsigned 64-bit value, little-endian.
    void u64(std::uint64_t v) noexcept
    {
        for (int i = 0; i < 8; ++i) {
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    /// Feeds any integral or enum value (sign-extended to 64 bits).
    template <typename T>
        requires(std::is_integral_v<T> || std::is_enum_v<T>)
    void value(T v) noexcept
    {
        u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    }

    /// Feeds a double through its bit pattern (so -0.0 != 0.0, and NaNs of
    /// different payloads differ -- exactness beats prettiness for keys).
    void value(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }

    /// Feeds a span of doubles, length-prefixed.
    void values(std::span<const double> vs) noexcept
    {
        u64(vs.size());
        for (const double v : vs) {
            value(v);
        }
    }

    /// Feeds a string, length-prefixed.
    void text(std::string_view s) noexcept
    {
        u64(s.size());
        for (const char c : s) {
            byte(static_cast<std::uint8_t>(c));
        }
    }

    /// The digest so far.
    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 0xCBF29CE484222325ull; // FNV offset basis
};

/// splitmix64-style avalanche: combines two 64-bit values into one with all
/// input bits influencing all output bits (used for striping cache shards
/// and deriving per-task RNG seeds).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) noexcept
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull + (b << 6) + (b >> 2);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace synts::util
