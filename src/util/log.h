// log.h -- leveled logging used by long-running characterization drivers.
//
// The library is otherwise silent; only drivers and benches raise the level
// above `warning`.

#pragma once

#include <string>

namespace synts::util {

/// Log severity, ordered.
enum class log_level {
    debug = 0,
    info = 1,
    warning = 2,
    error = 3,
    off = 4,
};

/// Sets the global minimum severity that will be emitted.
void set_log_level(log_level level) noexcept;

/// Current global minimum severity.
[[nodiscard]] log_level get_log_level() noexcept;

/// Emits `message` to stderr when `level` passes the global threshold.
void log(log_level level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warning(const std::string& message);
void log_error(const std::string& message);

} // namespace synts::util
