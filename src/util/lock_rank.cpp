#include "util/lock_rank.h"

#include <cstdio>
#include <cstdlib>

#if SYNTS_LOCK_RANK_CHECKS
#include <mutex>
#include <unordered_map>
#endif

namespace synts::util {

const char* lock_rank_name(lock_rank rank) noexcept
{
    switch (rank) {
    case lock_rank::speculator: return "speculator";
    case lock_rank::pool_sleep: return "pool_sleep";
    case lock_rank::pool_queue: return "pool_queue";
    case lock_rank::cache_shard: return "cache_shard";
    case lock_rank::cancel_tree: return "cancel_tree";
    case lock_rank::workload_registry: return "workload_registry";
    case lock_rank::sampler_wake: return "sampler_wake";
    case lock_rank::metrics_registry: return "metrics_registry";
    case lock_rank::sampler_series: return "sampler_series";
    case lock_rank::health_events: return "health_events";
    case lock_rank::trace_buffers: return "trace_buffers";
    }
    return nullptr;
}

#if SYNTS_LOCK_RANK_CHECKS

namespace lock_rank_detail {

namespace {

// Deep enough for any real chain (the longest legal chain today is three:
// speculator -> pool_sleep -> pool_queue); overflow is reported as its own
// violation rather than silently dropping entries.
constexpr std::size_t max_held = 32;

struct held_entry {
    lock_rank rank;
    const char* name;
};

thread_local held_entry tls_held[max_held]; // NOLINT(*-avoid-c-arrays)
thread_local std::size_t tls_depth = 0;

[[noreturn]] void fail(const char* what,
                       lock_rank acquiring,
                       const char* acquiring_name,
                       lock_rank held,
                       const char* held_name) noexcept
{
    std::fprintf(stderr,
                 "synts lock_rank: %s: acquiring \"%s\" (rank %u) while "
                 "holding \"%s\" (rank %u); locks must be taken in strictly "
                 "ascending rank order (table: src/util/lock_rank.h)\n",
                 what,
                 acquiring_name != nullptr ? acquiring_name : "?",
                 static_cast<unsigned>(acquiring),
                 held_name != nullptr ? held_name : "?",
                 static_cast<unsigned>(held));
    std::abort();
}

// The detector's own bookkeeping lock guards the live-mutex map below. It
// is a raw std::mutex on purpose: an annotated_mutex here would recurse
// into the detector registering itself, and the map is touched only from
// annotated_mutex constructors/destructors, never while an annotated lock
// is being acquired -- it cannot participate in an ordering cycle with
// ranked locks.  // synts-lint: allow(raw-mutex)
struct live_registry {
    std::mutex mutex; // synts-lint: allow(raw-mutex)
    std::unordered_map<const void*, live_mutex> mutexes;
};

live_registry& registry()
{
    // Leaked deliberately: annotated mutexes inside function-local statics
    // can be destroyed during static teardown in any order relative to a
    // registry with static lifetime.  // synts-lint: allow(naked-new)
    static live_registry* instance = new live_registry(); // synts-lint: allow(naked-new)
    return *instance;
}

} // namespace

void note_acquired(lock_rank rank, const char* name) noexcept
{
    if (tls_depth >= max_held) {
        std::fprintf(stderr,
                     "synts lock_rank: held-lock stack overflow (depth %zu) "
                     "acquiring \"%s\" (rank %u)\n",
                     tls_depth,
                     name != nullptr ? name : "?",
                     static_cast<unsigned>(rank));
        std::abort();
    }
    if (tls_depth > 0) {
        const held_entry& top = tls_held[tls_depth - 1];
        if (static_cast<std::uint16_t>(rank) <= static_cast<std::uint16_t>(top.rank)) {
            fail("lock rank order violation", rank, name, top.rank, top.name);
        }
    }
    tls_held[tls_depth] = held_entry{rank, name};
    ++tls_depth;
}

void note_released(lock_rank rank, const char* name) noexcept
{
    // Topmost matching entry: releases are almost always LIFO (scoped
    // guards), but condition-variable waits release out from under nested
    // scopes only in code that holds a single lock, so a linear scan from
    // the top is both correct and nearly always one comparison.
    for (std::size_t i = tls_depth; i > 0; --i) {
        held_entry& entry = tls_held[i - 1];
        if (entry.rank == rank && entry.name == name) {
            for (std::size_t j = i; j < tls_depth; ++j) {
                tls_held[j - 1] = tls_held[j];
            }
            --tls_depth;
            return;
        }
    }
    std::fprintf(stderr,
                 "synts lock_rank: release of \"%s\" (rank %u) which this "
                 "thread does not hold\n",
                 name != nullptr ? name : "?",
                 static_cast<unsigned>(rank));
    std::abort();
}

std::size_t held_count() noexcept
{
    return tls_depth;
}

void note_created(const void* mutex, lock_rank rank, const char* name)
{
    live_registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.mutexes[mutex] = live_mutex{rank, name};
}

void note_destroyed(const void* mutex) noexcept
{
    live_registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.mutexes.erase(mutex);
}

std::vector<live_mutex> live_mutexes()
{
    live_registry& reg = registry();
    std::vector<live_mutex> out;
    const std::lock_guard<std::mutex> lock(reg.mutex);
    out.reserve(reg.mutexes.size());
    for (const auto& [unused, info] : reg.mutexes) {
        out.push_back(info);
    }
    return out;
}

} // namespace lock_rank_detail

#endif // SYNTS_LOCK_RANK_CHECKS

} // namespace synts::util
