// rng.h -- deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the SynTS reproduction (workload operand
// streams, Razor error injection, sampling-phase estimation noise) draw from
// the xoshiro256** engine below so that every experiment is reproducible
// from a single 64-bit seed. The engine is seeded through splitmix64, the
// recommended seeding procedure for the xoshiro family.

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace synts::util {

/// Stateless splitmix64 step: advances `state` and returns the next value.
/// Used both as a seed expander and as a cheap hash for stream splitting.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 -- fast, high-quality 64-bit PRNG (Blackman/Vigna).
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, although the convenience members below are
/// preferred inside the library to keep behavior identical across standard
/// library implementations.
class xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Constructs the generator from a single 64-bit seed via splitmix64.
    explicit xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

    /// Smallest value produced (UniformRandomBitGenerator requirement).
    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    /// Largest value produced (UniformRandomBitGenerator requirement).
    [[nodiscard]] static constexpr result_type max() noexcept
    {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit draw.
    result_type operator()() noexcept;

    /// Uniform double in [0, 1) with 53 bits of randomness.
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
    /// avoid modulo bias.
    [[nodiscard]] std::uint64_t uniform_below(std::uint64_t n) noexcept;

    /// Uniform integer in the inclusive range [lo, hi].
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Bernoulli draw with success probability p (clamped to [0, 1]).
    [[nodiscard]] bool bernoulli(double p) noexcept;

    /// Standard normal draw (Box-Muller; one value per call, spare cached).
    [[nodiscard]] double normal() noexcept;

    /// Normal draw with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Exponential draw with the given rate lambda (> 0).
    [[nodiscard]] double exponential(double lambda) noexcept;

    /// Geometric number of failures before first success, p in (0, 1].
    [[nodiscard]] std::uint64_t geometric(double p) noexcept;

    /// Index drawn from the (unnormalized, non-negative) weight vector.
    /// Requires at least one strictly positive weight.
    [[nodiscard]] std::size_t discrete(std::span<const double> weights) noexcept;

    /// Creates an independent generator for a named substream, so parallel
    /// entities (threads, lanes, benchmarks) can be given decorrelated but
    /// reproducible randomness derived from one experiment seed.
    [[nodiscard]] xoshiro256 split(std::uint64_t stream_tag) noexcept;

    /// Jump function: advances the state by 2^128 draws.
    void jump() noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_normal_ = false;
};

/// Fills `out` with a random permutation of [0, out.size()) (Fisher-Yates).
void random_permutation(xoshiro256& rng, std::span<std::size_t> out) noexcept;

/// Returns `count` samples drawn without replacement from [0, population).
/// Requires count <= population.
[[nodiscard]] std::vector<std::size_t> sample_without_replacement(xoshiro256& rng,
                                                                  std::size_t population,
                                                                  std::size_t count);

} // namespace synts::util
