// experiment_cache.h -- process-wide memoization of characterized
// experiments.
//
// benchmark_experiment construction is the heavyweight step of every figure
// bench: trace generation + architectural profiling + gate-level dynamic
// timing at every voltage corner. The seed tree re-ran it from scratch for
// every (figure, policy) block. This cache keys experiments on
// (benchmark, stage, experiment_config::digest()) and constructs each at
// most once per process, concurrently safe:
//
//   * the key->entry map is sharded and mutex-striped, so lookups from many
//     sweep workers don't serialize on one lock;
//   * each entry is a shared_future: the first caller constructs *outside*
//     the shard lock while later callers block on the future, so a popular
//     benchmark is characterized exactly once and never holds up unrelated
//     keys. Construction happens on the calling thread (never deferred to a
//     pool task), so waiting cannot deadlock a fully-busy pool.
//
// The cached experiment is shared as shared_ptr<const ...>: every consumer
// path (run_policy, pareto_sweep, make_solver_input) is const and free of
// hidden mutable state, so one instance may serve all workers.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/experiment.h"

namespace synts::runtime {

/// Cache key: what uniquely determines a characterization.
struct experiment_key {
    workload::benchmark_id benchmark = workload::benchmark_id::fmm;
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    std::uint64_t config_digest = 0;

    friend bool operator==(const experiment_key&, const experiment_key&) = default;
};

/// Sharded, mutex-striped experiment memo.
class experiment_cache {
public:
    using experiment_ptr = std::shared_ptr<const core::benchmark_experiment>;

    /// `shard_count` is rounded up to a power of two (default 16).
    explicit experiment_cache(std::size_t shard_count = 16);

    experiment_cache(const experiment_cache&) = delete;
    experiment_cache& operator=(const experiment_cache&) = delete;

    /// Returns the cached experiment for (benchmark, stage, config),
    /// constructing it on this thread if absent. Blocks when another thread
    /// is mid-construction of the same key. A constructor exception is
    /// rethrown to every waiter and the entry is dropped so a later call can
    /// retry.
    [[nodiscard]] experiment_ptr get_or_create(workload::benchmark_id benchmark,
                                               circuit::pipe_stage stage,
                                               const core::experiment_config& config = {});

    /// Calls served without construction.
    [[nodiscard]] std::uint64_t hit_count() const noexcept
    {
        return hits_.load(std::memory_order_relaxed);
    }
    /// Calls that had to construct.
    [[nodiscard]] std::uint64_t miss_count() const noexcept
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /// Entries currently resident (settled or under construction).
    [[nodiscard]] std::size_t size() const;

    /// Drops every entry (in-flight constructions settle their waiters
    /// normally; the results are just no longer retained).
    void clear();

    /// The process-wide cache shared by the benches and the runner CLI.
    [[nodiscard]] static experiment_cache& process_cache();

private:
    struct key_hash {
        std::size_t operator()(const experiment_key& key) const noexcept;
    };
    struct shard {
        std::mutex mutex;
        std::unordered_map<experiment_key, std::shared_future<experiment_ptr>, key_hash>
            entries;
    };

    [[nodiscard]] shard& shard_for(const experiment_key& key) noexcept;

    std::vector<std::unique_ptr<shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace synts::runtime
