// experiment_cache.h -- multi-tier, process-wide memoization of the staged
// characterization pipeline.
//
// benchmark_experiment construction is the heavyweight step of every figure
// bench. The seed tree re-ran it from scratch for every (figure, policy)
// block; PR 1 memoized whole experiments on (benchmark, stage, digest). This
// version splits the cache along the pipeline's phase boundary:
//
//   program tier  (benchmark, workload_digest) -> program_artifacts
//       the generated SPLASH-2 trace + per-thread architectural profiles --
//       everything stage-INDEPENDENT. All three pipe stages of a benchmark
//       (and any configs differing only in sampling/histogram/energy/
//       voltage knobs) share one entry, so the trace is generated and the
//       architectural profiler run exactly once per workload.
//   stage tier    (benchmark, stage, digest)   -> benchmark_experiment
//       the per-stage characterization + config space + error models,
//       constructed FROM the program tier's artifacts.
//   disk tier     (optional; attach_store)     -> storage::artifact_store
//       a process-SURVIVING tier below the program tier. A program-tier
//       miss falls through memory -> disk -> compute: the store is probed
//       for a serialized artifact frame keyed by the same program_key
//       digest; a decodable frame whose stamped provenance matches the
//       request is adopted (a disk hit -- no trace generation, no profiler
//       run), anything else (absent, truncated, bit-flipped, wrong
//       version, wrong digest) counts as a disk miss and the freshly
//       computed artifacts are written back atomically. Deserialized
//       artifacts are bit-identical to computed ones, so the tier never
//       changes what a key maps to -- it only changes how fast.
//
// Both tiers use the same discipline:
//
//   * the key->entry map is sharded and mutex-striped, so lookups from many
//     sweep workers don't serialize on one lock;
//   * each entry is a shared_future: the first caller constructs *outside*
//     the shard lock while later callers block on the future, so a popular
//     key is constructed exactly once and never holds up unrelated keys.
//     Construction happens on the calling thread (never deferred to a pool
//     task), so waiting cannot deadlock a fully-busy pool. Pool-parallel
//     construction preserves this: parallel_for is self-claiming (the
//     constructing thread completes the fan-out alone if no worker is
//     free, and never executes a foreign task that could block on the very
//     entry it is mid-constructing);
//   * a constructor exception is rethrown to every waiter and the entry is
//     dropped so a later call can retry. A workload-level failure therefore
//     leaves BOTH tiers empty (the stage factory invokes the program tier,
//     and each tier erases its own failed entry).
//
// Passing a thread_pool to get_or_create fans the *inside* of a miss's
// construction (trace generation, profiling, per-(thread, interval) timing
// simulation) out across the pool; results are bit-identical to serial
// construction, so the pool choice never affects what a key maps to.
//
// The cached experiment is shared as shared_ptr<const ...>: every consumer
// path (run_policy, pareto_sweep, make_solver_input) is const and free of
// hidden mutable state, so one instance may serve all workers.

#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "runtime/cancel.h"
#include "runtime/thread_pool.h"
#include "util/hashing.h"

namespace synts::storage {
class artifact_store;
}

namespace synts::runtime {

/// Stage-tier key: what uniquely determines a characterized experiment.
/// The workload axis is the registry key (workload/registry.h), not an enum
/// ordinal, so any registered workload -- built-in SPLASH-2 profile or
/// parametric scenario instance -- gets its own entries.
struct experiment_key {
    workload::workload_key workload;
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    std::uint64_t config_digest = 0;

    friend bool operator==(const experiment_key&, const experiment_key&) = default;

    [[nodiscard]] std::uint64_t digest() const noexcept
    {
        util::digest_builder h;
        h.u64(workload.id);
        h.text(workload.name);
        h.value(stage);
        h.value(config_digest);
        return h.digest();
    }
};

/// Program-tier key: what uniquely determines the stage-independent
/// artifacts (see experiment_config::workload_digest()). Its digest() is
/// also the persistent store key of the artifact frame, so it must stay
/// stable across processes (both fields already are).
struct program_key {
    workload::workload_key workload;
    std::uint64_t workload_digest = 0;

    friend bool operator==(const program_key&, const program_key&) = default;

    [[nodiscard]] std::uint64_t digest() const noexcept
    {
        util::digest_builder h;
        h.u64(workload.id);
        h.text(workload.name);
        h.value(workload_digest);
        return h.digest();
    }
};

/// Hit/miss counters of one memo tier, attributable to one caller.
struct tier_traffic {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

/// Per-caller cache-traffic attribution sink. The cache's own counters are
/// process-global: two sweeps sharing one cache (or a sweep running while
/// another thread warms the cache) cannot untangle their traffic by
/// differencing globals -- the windows overlap and every count lands in
/// both. A caller that needs attribution-correct numbers passes its own
/// sink through get_or_create; every lookup then increments BOTH the
/// global counters and the caller's sink, and the sink sees exactly the
/// traffic of the calls made with it. Waiting on another caller's
/// in-flight construction counts as a hit here (this caller was served
/// without doing the work); the constructing caller owns the miss and any
/// disk traffic / compute it triggers.
struct cache_traffic {
    tier_traffic stage;
    tier_traffic program;
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> disk_misses{0};
    /// Times the expensive pipeline (trace generation + architectural
    /// profiling) ran on behalf of this caller. Counted directly at the
    /// compute site -- never derived by subtracting counters, so it cannot
    /// wrap however the windows overlap.
    std::atomic<std::uint64_t> program_computes{0};
};

/// One sharded, mutex-striped shared-future memo level. Key must provide
/// digest() and operator==; Ptr is the shared_ptr the factory produces.
template <typename Key, typename Ptr>
class memo_tier {
public:
    /// `shard_count` is rounded up to a power of two (the shard mask
    /// requires it), minimum 1. `registry_hits`/`registry_misses`, when
    /// given, are process-wide registry counters bumped alongside the
    /// tier's own atomics (the instance counters stay authoritative for
    /// hit_count()/miss_count(); the registry aggregates for --metrics).
    explicit memo_tier(std::size_t shard_count, obs::counter* registry_hits = nullptr,
                       obs::counter* registry_misses = nullptr)
        : registry_hits_(registry_hits), registry_misses_(registry_misses)
    {
        shard_count = std::bit_ceil(shard_count == 0 ? std::size_t{1} : shard_count);
        shards_.reserve(shard_count);
        for (std::size_t i = 0; i < shard_count; ++i) {
            shards_.push_back(std::make_unique<shard>());
        }
    }

    /// Returns the entry of `key`, invoking `factory()` on this thread if
    /// absent. Blocks when another thread is mid-construction of the same
    /// key; a factory exception is rethrown to every waiter and the entry
    /// dropped so a later call can retry. `sink`, when given, receives the
    /// call's hit/miss in addition to the tier's global counters (see
    /// cache_traffic).
    ///
    /// Cancellation (`token`; inert by default -- the tokenless path is the
    /// pre-cancellation code path):
    ///   * this CALLER cancelled: throws operation_cancelled, whether it
    ///     was about to construct or was waiting on another owner;
    ///   * the OWNER it waits on was cancelled (e.g. a speculative miss
    ///     preempted by demand): the owner's unwind erased the entry, so
    ///     the waiter is never left parked -- it retries the lookup and
    ///     typically becomes the new owner, constructing the value itself.
    ///     This is the hand-off: demand work inherits a key a cancelled
    ///     speculation abandoned, at the price of restarting the factory.
    ///     Counting caveat: such a retry records one hit (the wait) AND
    ///     then whatever the retry records -- attribution sinks see the
    ///     work that happened, not one logical call.
    template <typename Factory>
    [[nodiscard]] Ptr get_or_create(const Key& key, Factory&& factory,
                                    tier_traffic* sink = nullptr,
                                    const util::cancel_token& token = {})
    {
        shard& home = shard_for(key);

        for (;;) {
            token.throw_if_cancelled();

            std::promise<Ptr> construction;
            std::shared_future<Ptr> entry;
            bool owner = false;
            {
                const util::mutex_lock lock(home.mutex);
                auto it = home.entries.find(key);
                if (it != home.entries.end()) {
                    entry = it->second;
                } else {
                    entry = construction.get_future().share();
                    home.entries.emplace(key, entry);
                    owner = true;
                }
            }

            if (!owner) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                if (registry_hits_ != nullptr) {
                    registry_hits_->add(1);
                }
                if (sink != nullptr) {
                    sink->hits.fetch_add(1, std::memory_order_relaxed);
                }
                try {
                    if (token.can_cancel()) {
                        // A cancellable waiter must not block indefinitely
                        // on a future its own cancel can never settle, so
                        // it alternates short waits with token polls.
                        while (entry.wait_for(std::chrono::milliseconds(1)) !=
                               std::future_status::ready) {
                            token.throw_if_cancelled();
                        }
                    }
                    return entry.get(); // blocks while the owner constructs
                } catch (const util::operation_cancelled&) {
                    // Own cancel: propagate. Owner's cancel: the entry was
                    // erased by the owner's unwind -- retry (hand-off).
                    token.throw_if_cancelled();
                    continue;
                }
            }

            misses_.fetch_add(1, std::memory_order_relaxed);
            if (registry_misses_ != nullptr) {
                registry_misses_->add(1);
            }
            if (sink != nullptr) {
                sink->misses.fetch_add(1, std::memory_order_relaxed);
            }
            try {
                construction.set_value(factory());
            } catch (...) {
                construction.set_exception(std::current_exception());
                {
                    const util::mutex_lock lock(home.mutex);
                    home.entries.erase(key);
                }
                throw;
            }
            return entry.get();
        }
    }

    /// True while `key` is resident -- settled OR still under construction.
    /// A snapshot only (the speculator's don't-duplicate probe), never a
    /// reservation.
    [[nodiscard]] bool contains(const Key& key) const
    {
        shard& home = *shards_[util::hash_mix(key.digest(), shards_.size()) &
                               (shards_.size() - 1)];
        const util::mutex_lock lock(home.mutex);
        return home.entries.contains(key);
    }

    [[nodiscard]] std::uint64_t hit_count() const noexcept
    {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t miss_count() const noexcept
    {
        return misses_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t size() const
    {
        std::size_t total = 0;
        for (const auto& s : shards_) {
            shard& home = *s;
            const util::mutex_lock lock(home.mutex);
            total += home.entries.size();
        }
        return total;
    }

    void clear()
    {
        for (const auto& s : shards_) {
            shard& home = *s;
            const util::mutex_lock lock(home.mutex);
            home.entries.clear();
        }
    }

private:
    struct key_hash {
        std::size_t operator()(const Key& key) const noexcept
        {
            return static_cast<std::size_t>(key.digest());
        }
    };
    struct shard {
        /// Held only for map operations -- factories run outside, waiters
        /// block on the shared_future, never on the shard. A leaf below
        /// pool_queue (enqueue never runs under a shard lock) and above
        /// speculator (observe() probes contains() under its own mutex).
        util::annotated_mutex mutex{util::lock_rank::cache_shard,
                                    "experiment_cache.shard"};
        std::unordered_map<Key, std::shared_future<Ptr>, key_hash> entries
            SYNTS_GUARDED_BY(mutex);
    };

    [[nodiscard]] shard& shard_for(const Key& key) noexcept
    {
        // Re-mix so shard choice and bucket choice use decorrelated bits.
        return *shards_[util::hash_mix(key.digest(), shards_.size()) &
                        (shards_.size() - 1)];
    }

    std::vector<std::unique_ptr<shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    obs::counter* registry_hits_;
    obs::counter* registry_misses_;
};

/// The two-tier experiment memo (see file comment).
class experiment_cache {
public:
    using experiment_ptr = std::shared_ptr<const core::benchmark_experiment>;
    using program_ptr = std::shared_ptr<const core::program_artifacts>;

    /// `shard_count` is rounded up to a power of two (default 16) and used
    /// for both tiers.
    explicit experiment_cache(std::size_t shard_count = 16);

    experiment_cache(const experiment_cache&) = delete;
    experiment_cache& operator=(const experiment_cache&) = delete;

    /// Returns the cached experiment for (workload, stage, config),
    /// constructing it on this thread if absent -- sourcing the
    /// stage-independent artifacts from the program tier, so a stage miss
    /// only pays for the per-stage work when the workload is already
    /// resident. benchmark_id call sites convert implicitly. `pool`, when
    /// given, parallelizes a miss's construction (bit-identical results
    /// either way) and must outlive the call. `traffic`, when given,
    /// receives this call's traffic on every tier it touches, so callers
    /// sharing the cache can attribute hits/misses/computes to themselves
    /// (see cache_traffic). `cancel`, when linked, is observed at every
    /// phase boundary of a miss's construction and inside the
    /// characterization walk; a cancelled owner unwinds with
    /// operation_cancelled, publishes nothing to any tier, and waiting
    /// callers retry/take over (see memo_tier::get_or_create).
    [[nodiscard]] experiment_ptr get_or_create(const workload::workload_key& workload,
                                               circuit::pipe_stage stage,
                                               const core::experiment_config& config = {},
                                               thread_pool* pool = nullptr,
                                               cache_traffic* traffic = nullptr,
                                               const cancel_token& cancel = {});

    /// Returns the cached stage-independent artifacts for
    /// (workload, config.workload_digest()), constructing them on this
    /// thread if absent. With a store attached, a memory miss probes the
    /// disk tier before computing (see file comment). `traffic` and
    /// `cancel` as above.
    [[nodiscard]] program_ptr
    get_or_create_program(const workload::workload_key& workload,
                          const core::experiment_config& config = {},
                          thread_pool* pool = nullptr,
                          cache_traffic* traffic = nullptr,
                          const cancel_token& cancel = {});

    /// True while the stage-tier entry for (workload, stage, config) is
    /// resident (settled or under construction). A snapshot, not a
    /// reservation -- the speculator's don't-recompute probe.
    [[nodiscard]] bool contains(const workload::workload_key& workload,
                                circuit::pipe_stage stage,
                                const core::experiment_config& config = {}) const
    {
        return stage_tier_.contains({workload, stage, config.digest()});
    }

    /// Program-tier residency probe; same snapshot caveat as contains().
    [[nodiscard]] bool contains_program(const workload::workload_key& workload,
                                        const core::experiment_config& config = {}) const
    {
        return program_tier_.contains({workload, config.workload_digest()});
    }

    /// Attaches (or, with nullptr, detaches) the persistent disk tier.
    /// Not synchronized against in-flight lookups: attach before handing
    /// the cache to workers. The store may be shared with other caches and
    /// processes; see artifact_store for the torn-write guarantees.
    void attach_store(std::shared_ptr<storage::artifact_store> store) noexcept
    {
        store_ = std::move(store);
    }

    /// The attached disk tier, or nullptr.
    [[nodiscard]] const std::shared_ptr<storage::artifact_store>& store() const noexcept
    {
        return store_;
    }

    /// Stage-tier calls served without construction.
    [[nodiscard]] std::uint64_t hit_count() const noexcept { return stage_tier_.hit_count(); }
    /// Stage-tier calls that had to construct.
    [[nodiscard]] std::uint64_t miss_count() const noexcept
    {
        return stage_tier_.miss_count();
    }
    /// Program-tier calls served without construction.
    [[nodiscard]] std::uint64_t program_hit_count() const noexcept
    {
        return program_tier_.hit_count();
    }
    /// Program-tier calls not served by memory. Without a store this equals
    /// the number of trace generations + profiler runs; with one, a miss
    /// may still be served from disk (see program_compute_count()).
    [[nodiscard]] std::uint64_t program_miss_count() const noexcept
    {
        return program_tier_.miss_count();
    }
    /// Memory misses served by a decodable, provenance-matching store entry
    /// (no trace generation, no profiler run).
    [[nodiscard]] std::uint64_t disk_hit_count() const noexcept
    {
        return disk_hits_.load(std::memory_order_relaxed);
    }
    /// Memory misses the disk tier could not serve (store attached but the
    /// entry was absent, corrupt, version-skewed, or provenance-mismatched)
    /// -- each one computed the artifacts and wrote them back.
    [[nodiscard]] std::uint64_t disk_miss_count() const noexcept
    {
        return disk_misses_.load(std::memory_order_relaxed);
    }
    /// Times the expensive pipeline actually ran (trace generated + profiler
    /// run). Counted directly at the compute site, never derived by
    /// subtraction, so it cannot wrap.
    [[nodiscard]] std::uint64_t program_compute_count() const noexcept
    {
        return program_computes_.load(std::memory_order_relaxed);
    }

    /// Stage-tier entries currently resident (settled or under
    /// construction).
    [[nodiscard]] std::size_t size() const { return stage_tier_.size(); }
    /// Program-tier entries currently resident.
    [[nodiscard]] std::size_t program_size() const { return program_tier_.size(); }

    /// Drops every entry of both tiers (in-flight constructions settle
    /// their waiters normally; the results are just no longer retained).
    void clear();

    /// The process-wide cache shared by the benches and the runner CLI.
    [[nodiscard]] static experiment_cache& process_cache();

private:
    memo_tier<experiment_key, experiment_ptr> stage_tier_;
    memo_tier<program_key, program_ptr> program_tier_;
    std::shared_ptr<storage::artifact_store> store_;
    std::atomic<std::uint64_t> disk_hits_{0};
    std::atomic<std::uint64_t> disk_misses_{0};
    std::atomic<std::uint64_t> program_computes_{0};

    // Registry instruments (cache.tier<N>.* taxonomy: tier1 = stage memo,
    // tier2 = program memo, tier3 = disk). The tiers' own counters feed
    // hit/miss via memo_tier's registry hooks; these cover the disk tier,
    // the compute count, and the gated latency histograms.
    obs::counter* obs_disk_hits_;
    obs::counter* obs_disk_misses_;
    obs::counter* obs_computes_;
    obs::latency_histogram* obs_stage_build_ns_;
    obs::latency_histogram* obs_compute_ns_;
    obs::latency_histogram* obs_disk_load_ns_;
};

} // namespace synts::runtime
