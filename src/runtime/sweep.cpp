#include "runtime/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <optional>
#include <string>

#include "circuit/netlist_builder.h"
#include "core/policies.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/speculator.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"
#include "util/hashing.h"

namespace synts::runtime {

std::vector<benchmark_stage> sweep_spec::expanded_pairs() const
{
    if (!pairs.empty()) {
        return pairs;
    }
    std::vector<benchmark_stage> expanded;
    expanded.reserve(benchmarks.size() * stages.size());
    for (const workload::workload_key& workload : benchmarks) {
        for (const circuit::pipe_stage stage : stages) {
            expanded.emplace_back(workload, stage);
        }
    }
    return expanded;
}

std::size_t sweep_spec::task_count() const
{
    return expanded_pairs().size() * policies.size();
}

std::uint64_t sweep_spec::digest() const
{
    util::digest_builder h;
    h.value(config.digest());
    const std::vector<benchmark_stage> expanded = expanded_pairs();
    h.u64(expanded.size());
    for (const auto& [workload, stage] : expanded) {
        h.u64(workload.id);
        h.text(workload.name);
        h.value(stage);
    }
    h.u64(policies.size());
    for (const core::policy_kind policy : policies) {
        h.value(policy);
    }
    h.values(theta_multipliers);
    return h.digest();
}

std::uint64_t sweep_cell_digest(std::uint64_t spec_digest, std::size_t index) noexcept
{
    return util::hash_mix(spec_digest, index);
}

sweep_shard sweep_spec::shard(std::size_t index, std::size_t count) const
{
    if (count == 0) {
        throw std::invalid_argument("sweep_spec::shard: shard count must be >= 1");
    }
    if (index >= count) {
        throw std::invalid_argument("sweep_spec::shard: shard index " +
                                    std::to_string(index) + " out of range for " +
                                    std::to_string(count) + " shard(s)");
    }
    return sweep_shard{index, count};
}

std::uint64_t shard_layout_digest(std::uint64_t spec_digest) noexcept
{
    util::digest_builder h;
    h.text("shard_layout");
    h.u64(spec_digest);
    return h.digest();
}

std::uint64_t shard_manifest_digest(std::uint64_t spec_digest, std::size_t shard_count,
                                    std::size_t shard_index) noexcept
{
    util::digest_builder h;
    h.text("shard_manifest");
    h.u64(spec_digest);
    h.u64(shard_count);
    h.u64(shard_index);
    return h.digest();
}

std::uint64_t shard_progress_digest(std::uint64_t spec_digest, std::size_t shard_count,
                                    std::size_t shard_index) noexcept
{
    util::digest_builder h;
    h.text("shard_progress");
    h.u64(spec_digest);
    h.u64(shard_count);
    h.u64(shard_index);
    return h.digest();
}

const sweep_cell* sweep_result::find(const workload::workload_key& workload,
                                     circuit::pipe_stage stage,
                                     core::policy_kind policy) const noexcept
{
    for (const sweep_cell& cell : cells) {
        if (cell.workload == workload && cell.stage == stage &&
            cell.policy == policy) {
            return &cell;
        }
    }
    return nullptr;
}

namespace {

/// Checkpoint probe: decodes a stored cell frame and sanity-checks its
/// identity against the slot it would fill. Returns nullopt -- recompute
/// -- on any failure; a corrupt or foreign checkpoint is never adopted.
std::optional<sweep_cell> try_load_cell(const storage::artifact_store& store,
                                        std::uint64_t cell_key,
                                        const workload::workload_key& workload,
                                        circuit::pipe_stage stage,
                                        core::policy_kind policy)
{
    const std::optional<std::string> frame = store.load(storage::cell_bucket, cell_key);
    if (!frame) {
        return std::nullopt;
    }
    try {
        sweep_cell cell = storage::decode_sweep_cell(*frame);
        if (cell.workload != workload || cell.stage != stage ||
            cell.policy != policy) {
            return std::nullopt;
        }
        return cell;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Manifest probe: decodes a shard-manifest frame from the manifest
/// bucket; nullopt when absent or undecodable.
std::optional<shard_manifest> try_load_manifest(const storage::artifact_store& store,
                                                std::uint64_t key)
{
    const std::optional<std::string> frame = store.load(storage::manifest_bucket, key);
    if (!frame) {
        return std::nullopt;
    }
    try {
        return storage::decode_shard_manifest(*frame);
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Live-progress publisher of one store-backed run (sharded or not -- an
/// unsharded run publishes as shard 0 of 1). Workers report each durable
/// cell; the publisher republishes the shard_progress frame at most every
/// `interval_ns` (atomic rename-over of one key, so concurrent republishes
/// are benign), and run() calls publish_final() after the tasks join so the
/// last frame is exact even when the throttle swallowed the closing bumps.
class progress_publisher {
public:
    progress_publisher(const storage::artifact_store* store, std::uint64_t spec_digest,
                       const sweep_shard& shard, std::uint64_t cells_owned)
        : store_(store), key_(shard_progress_digest(spec_digest, shard.count,
                                                    shard.index))
    {
        frame_.spec_digest = spec_digest;
        frame_.shard_count = static_cast<std::uint32_t>(shard.count);
        frame_.shard_index = static_cast<std::uint32_t>(shard.index);
        frame_.cells_owned = cells_owned;
    }

    /// One more owned cell became durable (restored from or stored to the
    /// checkpoint store).
    void cell_done()
    {
        if (store_ == nullptr) {
            return;
        }
        const std::uint64_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
        const std::uint64_t now = obs::now_ns();
        std::uint64_t last = last_publish_ns_.load(std::memory_order_relaxed);
        if (now - last < interval_ns ||
            !last_publish_ns_.compare_exchange_strong(last, now,
                                                      std::memory_order_relaxed)) {
            return; // inside the throttle window, or another worker won it
        }
        publish(done);
    }

    /// Exact closing frame; call after every worker settled.
    void publish_final()
    {
        if (store_ != nullptr) {
            publish(done_.load(std::memory_order_relaxed));
        }
    }

private:
    static constexpr std::uint64_t interval_ns = 250'000'000; // ~4 Hz

    void publish(std::uint64_t done) const
    {
        shard_progress frame = frame_;
        frame.cells_done = done;
        (void)store_->store(storage::manifest_bucket, key_, storage::encode(frame));
    }

    const storage::artifact_store* store_;
    std::uint64_t key_;
    shard_progress frame_;
    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> last_publish_ns_{0};
};

} // namespace

sweep_result sweep_scheduler::run(const sweep_spec& spec,
                                  const sweep_options& options) const
{
    const std::vector<benchmark_stage> pairs = spec.expanded_pairs();
    const std::size_t policy_count = spec.policies.size();
    // Effective checkpoint store: the explicit override, else the store
    // already attached to the cache (one attach wires the whole feature).
    storage::artifact_store* const store =
        options.store != nullptr ? options.store : cache_->store().get();
    const bool sharded = options.shard.has_value();
    const sweep_shard shard = options.shard.value_or(sweep_shard{});
    if (shard.count == 0 || shard.index >= shard.count) {
        throw std::invalid_argument(
            "sweep_scheduler: invalid shard (construct it via sweep_spec::shard)");
    }
    if (sharded && store == nullptr) {
        throw std::invalid_argument(
            "sweep_scheduler: a sharded run requires a checkpoint store -- its "
            "checkpoints are the product the merge assembles");
    }
    // Always the FULL spec's digest, even for a shard run whose result
    // echoes a reduced spec: it keys the checkpoints and the JSON reports
    // it, so every shard's document names the same sweep identity.
    const std::uint64_t spec_digest = spec.digest();

    // Global indices of the pairs this run owns (all of them unsharded).
    std::vector<std::size_t> owned;
    owned.reserve(pairs.size() / shard.count + 1);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        if (shard.owns_pair(p)) {
            owned.push_back(p);
        }
    }

    if (sharded) {
        // Declare (or verify) the spec's shard layout BEFORE computing:
        // one store must never interleave two different partitions of one
        // spec, or a later merge could assemble a frankenstein shard set.
        const shard_manifest layout{spec_digest,
                                    static_cast<std::uint32_t>(shard.count),
                                    static_cast<std::uint32_t>(shard.count),
                                    static_cast<std::uint64_t>(pairs.size()) *
                                        policy_count};
        if (const std::optional<shard_manifest> existing =
                try_load_manifest(*store, shard_layout_digest(spec_digest))) {
            if (*existing != layout) {
                throw shard_error(
                    "shard layout conflict: this store already records the spec as " +
                    std::to_string(existing->shard_count) +
                    " shard(s); refusing an overlapping " +
                    std::to_string(shard.count) +
                    "-shard run (use a fresh store to reshard)");
            }
        } else {
            // Best-effort, atomic, and idempotent: concurrent shards write
            // identical bytes, and a failed publish only defers the
            // conflict check to the merge.
            (void)store->store(storage::manifest_bucket,
                               shard_layout_digest(spec_digest),
                               storage::encode(layout));
        }
    }

    sweep_result result;
    result.spec = spec;
    result.spec_digest = spec_digest;
    if (sharded) {
        // Echo a spec reduced to the owned pairs so tables/CSVs of this
        // process cover exactly what it computed. Checkpoint keys and
        // task seeds below still use the FULL spec's digest and global
        // cell indices, so the merge reassembles the unsharded document.
        result.spec.benchmarks.clear();
        result.spec.stages.clear();
        result.spec.pairs.clear();
        for (const std::size_t p : owned) {
            result.spec.pairs.push_back(pairs[p]);
        }
    }
    result.cells.resize(owned.size() * policy_count);

    // Per-run attribution sink: every cache lookup this run makes counts
    // here (and in the cache's process-global counters), so concurrent
    // sweeps on one cache each report exactly their own traffic instead of
    // differencing global counters over overlapping windows.
    cache_traffic traffic;
    std::atomic<std::uint64_t> cells_loaded{0};
    std::atomic<std::uint64_t> cells_stored{0};

    // Registry counters (sweep.* taxonomy) and the run-level span. The
    // per-sweep numbers above stay attribution-correct; the registry
    // aggregates process-wide for --metrics.
    obs::metrics_registry& registry = obs::metrics_registry::global();
    obs::counter& obs_cells_loaded = registry.counter_at("sweep.cells_loaded");
    obs::counter& obs_cells_stored = registry.counter_at("sweep.cells_stored");
    obs::counter& obs_cells_missed = registry.counter_at("sweep.cells_missed");
    obs::counter& obs_cells_computed = registry.counter_at("sweep.cells_computed");
    const obs::trace_span run_span(obs::trace_recorder::global(), "sweep.run");
    progress_publisher progress(store, spec_digest, shard,
                                static_cast<std::uint64_t>(result.cells.size()));

    // Per-sweep cancellation source, linked under the caller's token:
    // cancelling options.cancel (or this source through it) drops queued
    // pair tasks without starting them and unwinds running ones within one
    // characterization interval. With the default (inert) token the source
    // simply never fires and every code path below is the pre-cancellation
    // one.
    const cancel_source sweep_source(options.cancel);
    const cancel_token sweep_token = sweep_source.token();
    speculator* const speculate = options.speculate;

    const auto t0 = std::chrono::steady_clock::now();

    // One task per owned (benchmark, stage) pair: the pair's shared inputs
    // -- the characterization, theta_eq, and the Nominal baseline run --
    // are computed once and reused across its policy cells, instead of once
    // per cell (per-cell tasks would re-derive theta_eq Q times and a
    // ladder's Nominal baseline Q more times). Policy cells within a pair
    // run sequentially; pairs run in parallel, which is where the work is.
    std::vector<cancellable_task<void>> tasks;
    tasks.reserve(owned.size());
    for (std::size_t local_p = 0; local_p < owned.size(); ++local_p) {
        tasks.push_back(pool_->submit(
            sweep_token,
            [this, &spec, &options, &result, &pairs, &owned, store, spec_digest,
             policy_count, &traffic, &cells_loaded, &cells_stored, &obs_cells_loaded,
             &obs_cells_stored, &obs_cells_missed, &obs_cells_computed, &progress,
             speculate, local_p](const cancel_token& task_token) {
            task_token.throw_if_cancelled(); // pair start
            const std::size_t p = owned[local_p];
            const auto& [workload, stage] = pairs[p];

            // Resume pass: adopt every decodable checkpoint of this pair
            // first; only the gaps are computed. When nothing is missing
            // the pair's characterization is skipped entirely.
            std::vector<std::optional<sweep_cell>> restored(policy_count);
            bool complete = true;
            if (options.resume && store != nullptr) {
                for (std::size_t q = 0; q < policy_count; ++q) {
                    const std::size_t index = p * policy_count + q;
                    restored[q] = try_load_cell(
                        *store, sweep_cell_digest(spec_digest, index),
                        workload, stage, spec.policies[q]);
                    complete = complete && restored[q].has_value();
                }
            } else {
                complete = policy_count == 0;
            }

            experiment_cache::experiment_ptr experiment;
            double theta_eq = 0.0;
            core::benchmark_experiment::policy_run nominal_baseline;
            if (!complete) {
                if (speculate != nullptr) {
                    // Report demand BEFORE the get: records a speculative
                    // hit when speculation already covers (or is mid-way
                    // through) this key, preempts speculation otherwise,
                    // and seeds the next predictions.
                    speculate->observe(workload, stage, spec.config);
                }
                experiment = cache_->get_or_create(workload, stage, spec.config,
                                                   pool_, &traffic, task_token);
                theta_eq = experiment->equal_weight_theta();
                if (!spec.theta_multipliers.empty()) {
                    nominal_baseline =
                        experiment->run_policy(core::policy_kind::nominal, theta_eq);
                }
            }

            for (std::size_t q = 0; q < policy_count; ++q) {
                task_token.throw_if_cancelled(); // per policy cell
                // Checkpoint key and task seed use the GLOBAL cell index;
                // the result slot uses the run-local one (they agree when
                // unsharded).
                const std::size_t index = p * policy_count + q;
                sweep_cell& cell = result.cells[local_p * policy_count + q];
                if (restored[q].has_value()) {
                    cell = *std::move(restored[q]);
                    cells_loaded.fetch_add(1, std::memory_order_relaxed);
                    obs_cells_loaded.add(1);
                    progress.cell_done();
                    continue;
                }
                cell.workload = workload;
                cell.stage = stage;
                cell.policy = spec.policies[q];
                cell.task_seed = util::hash_mix(spec.config.seed, index);
                cell.theta_eq = theta_eq;
                obs_cells_computed.add(1);
                if (store != nullptr) {
                    // Computed while a checkpoint store was present == no
                    // usable checkpoint covered the cell (the registry twin
                    // of sweep_result::cells_missed()).
                    obs_cells_missed.add(1);
                }
                {
                    const obs::trace_span cell_span(
                        obs::trace_recorder::global(), [&] {
                            std::string name = "sweep.cell:";
                            name += workload.name;
                            name += '/';
                            name += circuit::pipe_stage_name(stage);
                            name += '/';
                            name += core::policy_name(cell.policy);
                            return name;
                        });
                    cell.equal_weight =
                        cell.policy == core::policy_kind::nominal &&
                                !spec.theta_multipliers.empty()
                            ? nominal_baseline
                            : experiment->run_policy(cell.policy, theta_eq);
                    if (!spec.theta_multipliers.empty()) {
                        cell.pareto =
                            core::pareto_sweep(*experiment, cell.policy,
                                               spec.theta_multipliers, theta_eq,
                                               nominal_baseline);
                    }
                }
                // Persist as soon as the cell settles, so a kill between
                // here and the sweep's end loses only in-flight cells.
                if (store != nullptr &&
                    store->store(storage::cell_bucket,
                                 sweep_cell_digest(spec_digest, index),
                                 storage::encode(cell))) {
                    cells_stored.fetch_add(1, std::memory_order_relaxed);
                    obs_cells_stored.add(1);
                    progress.cell_done();
                }
            }
        }));
    }

    std::exception_ptr first_error;
    for (cancellable_task<void>& task : tasks) {
        // Help while waiting (same discipline as parallel_for): run() may
        // itself be called from inside a pool task, and on a small pool the
        // cells would otherwise sit behind the blocked caller forever.
        std::future<void>& done = task.future();
        while (done.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
            if (!pool_->run_one_task()) {
                (void)done.wait_for(std::chrono::milliseconds(1));
            }
        }
        try {
            done.get();
        } catch (...) {
            // First error in cell order; a cancelled sweep's earliest
            // settled operation_cancelled is what the caller sees after
            // EVERY task settled -- dropped, unwound, or completed.
            if (!first_error) {
                first_error = std::current_exception();
            }
        }
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.cache_hits = traffic.stage.hits.load(std::memory_order_relaxed);
    result.cache_misses = traffic.stage.misses.load(std::memory_order_relaxed);
    result.program_cache_hits = traffic.program.hits.load(std::memory_order_relaxed);
    result.program_cache_misses = traffic.program.misses.load(std::memory_order_relaxed);
    result.disk_hits = traffic.disk_hits.load(std::memory_order_relaxed);
    result.disk_misses = traffic.disk_misses.load(std::memory_order_relaxed);
    result.program_computes = traffic.program_computes.load(std::memory_order_relaxed);
    result.checkpointing = store != nullptr;
    result.cells_loaded = cells_loaded.load(std::memory_order_relaxed);
    result.cells_stored = cells_stored.load(std::memory_order_relaxed);
    // Exact closing progress frame (the throttle may have swallowed the
    // last per-cell publishes); written before the completion manifest so
    // --status never shows a complete shard behind a stale count.
    progress.publish_final();

    if (sharded && result.cells_loaded + result.cells_stored >= result.cells.size()) {
        // Every owned cell is durably checkpointed (restored cells were on
        // disk already; computed ones published successfully): attest
        // completion. A run with any absorbed store failure writes no
        // manifest, so a merge reports this shard as incomplete instead of
        // assembling holes.
        const shard_manifest manifest{spec_digest,
                                      static_cast<std::uint32_t>(shard.count),
                                      static_cast<std::uint32_t>(shard.index),
                                      result.cells.size()};
        (void)store->store(storage::manifest_bucket,
                           shard_manifest_digest(spec_digest, shard.count, shard.index),
                           storage::encode(manifest));
    }
    return result;
}

sweep_result merge_sweep_shards(const sweep_spec& spec,
                                const storage::artifact_store& store)
{
    const std::vector<benchmark_stage> pairs = spec.expanded_pairs();
    const std::size_t policy_count = spec.policies.size();
    const std::uint64_t spec_digest = spec.digest();
    const std::uint64_t total_cells =
        static_cast<std::uint64_t>(pairs.size()) * policy_count;

    const std::optional<std::string> layout_frame =
        store.load(storage::manifest_bucket, shard_layout_digest(spec_digest));
    if (!layout_frame) {
        throw shard_error(
            "merge: the store records no shard layout for this spec -- run the "
            "shards first, with identical spec flags, against this store");
    }
    shard_manifest layout;
    try {
        layout = storage::decode_shard_manifest(*layout_frame);
    } catch (const std::exception& error) {
        throw shard_error(std::string("merge: corrupt shard layout frame: ") +
                          error.what());
    }
    if (layout.spec_digest != spec_digest) {
        throw shard_error("merge: foreign shard layout (recorded for a different "
                          "spec); refusing to assemble");
    }
    if (layout.shard_count == 0 || layout.shard_index != layout.shard_count) {
        throw shard_error("merge: malformed shard layout frame");
    }
    if (layout.cell_count != total_cells) {
        throw shard_error("merge: recorded layout covers " +
                          std::to_string(layout.cell_count) + " cells but this spec "
                          "expands to " + std::to_string(total_cells) +
                          " -- the store was sharded for a different sweep shape");
    }
    const std::size_t shard_count = layout.shard_count;

    for (std::size_t i = 0; i < shard_count; ++i) {
        const std::optional<std::string> frame = store.load(
            storage::manifest_bucket,
            shard_manifest_digest(spec_digest, shard_count, i));
        if (!frame) {
            throw shard_error("merge: shard " + std::to_string(i) + "/" +
                              std::to_string(shard_count) +
                              " has not recorded completion (still running, "
                              "failed, or run against another store)");
        }
        shard_manifest manifest;
        try {
            manifest = storage::decode_shard_manifest(*frame);
        } catch (const std::exception& error) {
            throw shard_error("merge: corrupt manifest of shard " + std::to_string(i) +
                              ": " + error.what());
        }
        if (manifest.spec_digest != spec_digest || manifest.shard_count != shard_count ||
            manifest.shard_index != i) {
            throw shard_error("merge: foreign manifest at shard " + std::to_string(i) +
                              "'s key; refusing to assemble");
        }
        // The same partition predicate the shard runs used -- the merge
        // validator and the scheduler must never disagree on ownership.
        const sweep_shard shard{i, shard_count};
        std::size_t owned_pairs = 0;
        for (std::size_t p = 0; p < pairs.size(); ++p) {
            if (shard.owns_pair(p)) {
                ++owned_pairs;
            }
        }
        if (manifest.cell_count !=
            static_cast<std::uint64_t>(owned_pairs) * policy_count) {
            throw shard_error("merge: shard " + std::to_string(i) +
                              " attests a different cell count than its slice of "
                              "this spec -- overlapping or stale shard set");
        }
    }

    sweep_result result;
    result.spec = spec;
    result.spec_digest = spec_digest;
    result.cells.resize(pairs.size() * policy_count);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        for (std::size_t q = 0; q < policy_count; ++q) {
            const std::size_t index = p * policy_count + q;
            std::optional<sweep_cell> cell =
                try_load_cell(store, sweep_cell_digest(spec_digest, index),
                              pairs[p].first, pairs[p].second, spec.policies[q]);
            if (!cell) {
                throw shard_error("merge: checkpoint cell " + std::to_string(index) +
                                  " is missing or corrupt; re-run its shard");
            }
            result.cells[index] = *std::move(cell);
        }
    }
    result.checkpointing = true;
    result.cells_loaded = result.cells.size();
    obs::metrics_registry::global()
        .counter_at("sweep.cells_loaded")
        .add(result.cells.size());
    return result;
}

} // namespace synts::runtime
