#include "runtime/sweep.h"

#include <chrono>
#include <exception>
#include <future>

#include "util/hashing.h"

namespace synts::runtime {

std::vector<benchmark_stage> sweep_spec::expanded_pairs() const
{
    if (!pairs.empty()) {
        return pairs;
    }
    std::vector<benchmark_stage> expanded;
    expanded.reserve(benchmarks.size() * stages.size());
    for (const workload::benchmark_id benchmark : benchmarks) {
        for (const circuit::pipe_stage stage : stages) {
            expanded.emplace_back(benchmark, stage);
        }
    }
    return expanded;
}

std::size_t sweep_spec::task_count() const
{
    return expanded_pairs().size() * policies.size();
}

const sweep_cell* sweep_result::find(workload::benchmark_id benchmark,
                                     circuit::pipe_stage stage,
                                     core::policy_kind policy) const noexcept
{
    for (const sweep_cell& cell : cells) {
        if (cell.benchmark == benchmark && cell.stage == stage &&
            cell.policy == policy) {
            return &cell;
        }
    }
    return nullptr;
}

sweep_result sweep_scheduler::run(const sweep_spec& spec) const
{
    const std::vector<benchmark_stage> pairs = spec.expanded_pairs();

    sweep_result result;
    result.spec = spec;
    result.cells.resize(pairs.size() * spec.policies.size());

    const std::uint64_t hits_before = cache_->hit_count();
    const std::uint64_t misses_before = cache_->miss_count();
    const std::uint64_t program_hits_before = cache_->program_hit_count();
    const std::uint64_t program_misses_before = cache_->program_miss_count();
    const auto t0 = std::chrono::steady_clock::now();

    // One task per (benchmark, stage) pair: the pair's shared inputs --
    // the characterization, theta_eq, and the Nominal baseline run -- are
    // computed once and reused across its policy cells, instead of once per
    // cell (per-cell tasks would re-derive theta_eq Q times and a ladder's
    // Nominal baseline Q more times). Policy cells within a pair run
    // sequentially; pairs run in parallel, which is where the work is.
    std::vector<std::future<void>> tasks;
    tasks.reserve(pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        tasks.push_back(pool_->submit([this, &spec, &result, &pairs, p] {
            const auto [benchmark, stage] = pairs[p];
            const experiment_cache::experiment_ptr experiment =
                cache_->get_or_create(benchmark, stage, spec.config, pool_);
            const double theta_eq = experiment->equal_weight_theta();
            core::benchmark_experiment::policy_run nominal_baseline;
            if (!spec.theta_multipliers.empty()) {
                nominal_baseline =
                    experiment->run_policy(core::policy_kind::nominal, theta_eq);
            }

            for (std::size_t q = 0; q < spec.policies.size(); ++q) {
                const std::size_t index = p * spec.policies.size() + q;
                sweep_cell& cell = result.cells[index];
                cell.benchmark = benchmark;
                cell.stage = stage;
                cell.policy = spec.policies[q];
                cell.task_seed = util::hash_mix(spec.config.seed, index);
                cell.theta_eq = theta_eq;
                cell.equal_weight =
                    cell.policy == core::policy_kind::nominal &&
                            !spec.theta_multipliers.empty()
                        ? nominal_baseline
                        : experiment->run_policy(cell.policy, theta_eq);
                if (!spec.theta_multipliers.empty()) {
                    cell.pareto =
                        core::pareto_sweep(*experiment, cell.policy,
                                           spec.theta_multipliers, theta_eq,
                                           nominal_baseline);
                }
            }
        }));
    }

    std::exception_ptr first_error;
    for (std::future<void>& task : tasks) {
        // Help while waiting (same discipline as parallel_for): run() may
        // itself be called from inside a pool task, and on a small pool the
        // cells would otherwise sit behind the blocked caller forever.
        while (task.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
            if (!pool_->run_one_task()) {
                task.wait_for(std::chrono::milliseconds(1));
            }
        }
        try {
            task.get();
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
            }
        }
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.cache_hits = cache_->hit_count() - hits_before;
    result.cache_misses = cache_->miss_count() - misses_before;
    result.program_cache_hits = cache_->program_hit_count() - program_hits_before;
    result.program_cache_misses = cache_->program_miss_count() - program_misses_before;
    return result;
}

} // namespace synts::runtime
