#include "runtime/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <optional>

#include "storage/artifact_store.h"
#include "storage/serialize.h"
#include "util/hashing.h"

namespace synts::runtime {

std::vector<benchmark_stage> sweep_spec::expanded_pairs() const
{
    if (!pairs.empty()) {
        return pairs;
    }
    std::vector<benchmark_stage> expanded;
    expanded.reserve(benchmarks.size() * stages.size());
    for (const workload::workload_key& workload : benchmarks) {
        for (const circuit::pipe_stage stage : stages) {
            expanded.emplace_back(workload, stage);
        }
    }
    return expanded;
}

std::size_t sweep_spec::task_count() const
{
    return expanded_pairs().size() * policies.size();
}

std::uint64_t sweep_spec::digest() const
{
    util::digest_builder h;
    h.value(config.digest());
    const std::vector<benchmark_stage> expanded = expanded_pairs();
    h.u64(expanded.size());
    for (const auto& [workload, stage] : expanded) {
        h.u64(workload.id);
        h.text(workload.name);
        h.value(stage);
    }
    h.u64(policies.size());
    for (const core::policy_kind policy : policies) {
        h.value(policy);
    }
    h.values(theta_multipliers);
    return h.digest();
}

std::uint64_t sweep_cell_digest(std::uint64_t spec_digest, std::size_t index) noexcept
{
    return util::hash_mix(spec_digest, index);
}

const sweep_cell* sweep_result::find(const workload::workload_key& workload,
                                     circuit::pipe_stage stage,
                                     core::policy_kind policy) const noexcept
{
    for (const sweep_cell& cell : cells) {
        if (cell.workload == workload && cell.stage == stage &&
            cell.policy == policy) {
            return &cell;
        }
    }
    return nullptr;
}

namespace {

/// Checkpoint probe: decodes a stored cell frame and sanity-checks its
/// identity against the slot it would fill. Returns nullopt -- recompute
/// -- on any failure; a corrupt or foreign checkpoint is never adopted.
std::optional<sweep_cell> try_load_cell(const storage::artifact_store& store,
                                        std::uint64_t cell_key,
                                        const workload::workload_key& workload,
                                        circuit::pipe_stage stage,
                                        core::policy_kind policy)
{
    const std::optional<std::string> frame = store.load(storage::cell_bucket, cell_key);
    if (!frame) {
        return std::nullopt;
    }
    try {
        sweep_cell cell = storage::decode_sweep_cell(*frame);
        if (cell.workload != workload || cell.stage != stage ||
            cell.policy != policy) {
            return std::nullopt;
        }
        return cell;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

} // namespace

sweep_result sweep_scheduler::run(const sweep_spec& spec,
                                  const sweep_options& options) const
{
    const std::vector<benchmark_stage> pairs = spec.expanded_pairs();
    // Effective checkpoint store: the explicit override, else the store
    // already attached to the cache (one attach wires the whole feature).
    storage::artifact_store* const store =
        options.store != nullptr ? options.store : cache_->store().get();
    const std::uint64_t spec_digest = store != nullptr ? spec.digest() : 0;

    sweep_result result;
    result.spec = spec;
    result.cells.resize(pairs.size() * spec.policies.size());

    const std::uint64_t hits_before = cache_->hit_count();
    const std::uint64_t misses_before = cache_->miss_count();
    const std::uint64_t program_hits_before = cache_->program_hit_count();
    const std::uint64_t program_misses_before = cache_->program_miss_count();
    const std::uint64_t disk_hits_before = cache_->disk_hit_count();
    const std::uint64_t disk_misses_before = cache_->disk_miss_count();
    std::atomic<std::uint64_t> cells_loaded{0};
    std::atomic<std::uint64_t> cells_stored{0};
    const auto t0 = std::chrono::steady_clock::now();

    // One task per (benchmark, stage) pair: the pair's shared inputs --
    // the characterization, theta_eq, and the Nominal baseline run -- are
    // computed once and reused across its policy cells, instead of once per
    // cell (per-cell tasks would re-derive theta_eq Q times and a ladder's
    // Nominal baseline Q more times). Policy cells within a pair run
    // sequentially; pairs run in parallel, which is where the work is.
    std::vector<std::future<void>> tasks;
    tasks.reserve(pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        tasks.push_back(pool_->submit([this, &spec, &options, &result, &pairs, store,
                                       spec_digest, &cells_loaded, &cells_stored, p] {
            const auto& [workload, stage] = pairs[p];
            const std::size_t policy_count = spec.policies.size();

            // Resume pass: adopt every decodable checkpoint of this pair
            // first; only the gaps are computed. When nothing is missing
            // the pair's characterization is skipped entirely.
            std::vector<std::optional<sweep_cell>> restored(policy_count);
            bool complete = true;
            if (options.resume && store != nullptr) {
                for (std::size_t q = 0; q < policy_count; ++q) {
                    const std::size_t index = p * policy_count + q;
                    restored[q] = try_load_cell(
                        *store, sweep_cell_digest(spec_digest, index),
                        workload, stage, spec.policies[q]);
                    complete = complete && restored[q].has_value();
                }
            } else {
                complete = policy_count == 0;
            }

            experiment_cache::experiment_ptr experiment;
            double theta_eq = 0.0;
            core::benchmark_experiment::policy_run nominal_baseline;
            if (!complete) {
                experiment = cache_->get_or_create(workload, stage, spec.config, pool_);
                theta_eq = experiment->equal_weight_theta();
                if (!spec.theta_multipliers.empty()) {
                    nominal_baseline =
                        experiment->run_policy(core::policy_kind::nominal, theta_eq);
                }
            }

            for (std::size_t q = 0; q < policy_count; ++q) {
                const std::size_t index = p * policy_count + q;
                sweep_cell& cell = result.cells[index];
                if (restored[q].has_value()) {
                    cell = *std::move(restored[q]);
                    cells_loaded.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                cell.workload = workload;
                cell.stage = stage;
                cell.policy = spec.policies[q];
                cell.task_seed = util::hash_mix(spec.config.seed, index);
                cell.theta_eq = theta_eq;
                cell.equal_weight =
                    cell.policy == core::policy_kind::nominal &&
                            !spec.theta_multipliers.empty()
                        ? nominal_baseline
                        : experiment->run_policy(cell.policy, theta_eq);
                if (!spec.theta_multipliers.empty()) {
                    cell.pareto =
                        core::pareto_sweep(*experiment, cell.policy,
                                           spec.theta_multipliers, theta_eq,
                                           nominal_baseline);
                }
                // Persist as soon as the cell settles, so a kill between
                // here and the sweep's end loses only in-flight cells.
                if (store != nullptr &&
                    store->store(storage::cell_bucket,
                                 sweep_cell_digest(spec_digest, index),
                                 storage::encode(cell))) {
                    cells_stored.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }));
    }

    std::exception_ptr first_error;
    for (std::future<void>& task : tasks) {
        // Help while waiting (same discipline as parallel_for): run() may
        // itself be called from inside a pool task, and on a small pool the
        // cells would otherwise sit behind the blocked caller forever.
        while (task.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
            if (!pool_->run_one_task()) {
                task.wait_for(std::chrono::milliseconds(1));
            }
        }
        try {
            task.get();
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
            }
        }
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.cache_hits = cache_->hit_count() - hits_before;
    result.cache_misses = cache_->miss_count() - misses_before;
    result.program_cache_hits = cache_->program_hit_count() - program_hits_before;
    result.program_cache_misses = cache_->program_miss_count() - program_misses_before;
    result.disk_hits = cache_->disk_hit_count() - disk_hits_before;
    result.disk_misses = cache_->disk_miss_count() - disk_misses_before;
    result.program_computes = result.program_cache_misses - result.disk_hits;
    result.checkpointing = store != nullptr;
    result.cells_loaded = cells_loaded.load(std::memory_order_relaxed);
    result.cells_stored = cells_stored.load(std::memory_order_relaxed);
    return result;
}

} // namespace synts::runtime
