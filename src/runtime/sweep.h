// sweep.h -- declarative experiment sweeps over the thread pool.
//
// A sweep_spec names WHAT to evaluate: a set of (benchmark, stage) pairs
// (explicitly, or as a benchmarks x stages cross product), a set of
// policies, and an optional theta-multiplier ladder. The sweep_scheduler
// decides HOW: it expands the spec into one task per (benchmark, stage)
// pair -- the pair's characterization, theta_eq and Nominal baseline are
// computed once and shared across its policy cells -- runs the tasks on a
// work-stealing thread_pool, memoizes the heavyweight characterizations in
// an experiment_cache (each (benchmark, stage, config) is characterized
// once no matter how many specs or figures consume it), and aggregates the
// cells in a deterministic, schedule-independent order.
//
// Determinism contract: every cell's numbers are produced by the same
// const code path the serial benches use (equal_weight_theta, run_policy,
// pareto_sweep on an identically-constructed benchmark_experiment), tasks
// share no mutable state, and results land in pre-assigned slots -- so a
// sweep's output is bit-identical across runs, worker counts, and the
// serial path. Each cell also carries a `task_seed` stream tag derived from
// (config.seed, cell index) via hash_mix, for future stochastic policies;
// nothing in the current policies draws from it.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "runtime/cancel.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"

namespace synts::storage {
class artifact_store;
}

namespace synts::runtime {

class speculator;

/// One (workload, stage) evaluation target. Workloads are registry keys
/// (workload/registry.h); benchmark_id literals convert implicitly.
using benchmark_stage = std::pair<workload::workload_key, circuit::pipe_stage>;

/// One process's slice of a sharded sweep: shard `index` of `count` owns
/// every expanded pair p with p % count == index (pair-granular round
/// robin -- a pair's characterization is never split across processes).
/// The partition is a pure function of (index, count), so N runner
/// processes pointed at one spec and one shared artifact store cover every
/// cell exactly once with no coordination beyond the store itself.
struct sweep_shard {
    std::size_t index = 0;
    std::size_t count = 1;

    /// True when this shard owns expanded pair `pair` (its GLOBAL index).
    [[nodiscard]] bool owns_pair(std::size_t pair) const noexcept
    {
        return count != 0 && pair % count == index;
    }

    friend bool operator==(const sweep_shard&, const sweep_shard&) = default;
};

/// Declarative description of a batched sweep.
struct sweep_spec {
    /// Cross-product axes (used when `pairs` is empty). Any registered
    /// workload key -- built-in SPLASH-2 profile or parametric scenario
    /// instance -- is a valid axis value.
    std::vector<workload::workload_key> benchmarks;
    std::vector<circuit::pipe_stage> stages;
    /// Explicit pair list; when non-empty it replaces the cross product
    /// (the figure benches plot hand-picked pairs, not a full grid).
    std::vector<benchmark_stage> pairs;

    /// Policies evaluated per pair.
    std::vector<core::policy_kind> policies;

    /// Theta ladder as multipliers of each experiment's equal-weight theta.
    /// Empty = no Pareto sweep; cells then carry only the equal-weight run.
    std::vector<double> theta_multipliers;

    /// Experiment construction knobs (seed, thread count, models).
    core::experiment_config config{};

    /// The pairs this spec expands to (explicit list or cross product).
    [[nodiscard]] std::vector<benchmark_stage> expanded_pairs() const;

    /// Number of (pair, policy) result cells the sweep expands to.
    [[nodiscard]] std::size_t task_count() const;

    /// Stable digest over everything that determines the sweep's cells:
    /// the config digest, the expanded pair list, the policy list, and the
    /// theta ladder. Two specs with equal digests expand to cell-for-cell
    /// identical sweeps, so checkpointed cells are keyed on
    /// (spec digest, cell index) -- any spec edit changes every key and a
    /// stale checkpoint can never be resumed into the wrong sweep.
    [[nodiscard]] std::uint64_t digest() const;

    /// Deterministic pair-granular partition for multi-process sweeps:
    /// shard i of n owns pairs {p : p % n == i} of expanded_pairs(), with
    /// their global indices preserved -- so every owned cell's
    /// `task_seed = hash_mix(seed, index)` and checkpoint key
    /// (spec digest, index) are byte-identical to the unsharded run's.
    /// Throws std::invalid_argument when count == 0 or index >= count
    /// (count larger than the pair list is fine: trailing shards are
    /// legitimately empty).
    [[nodiscard]] sweep_shard shard(std::size_t index, std::size_t count) const;
};

/// Checkpoint key of cell `index` of a spec (see sweep_spec::digest()).
[[nodiscard]] std::uint64_t sweep_cell_digest(std::uint64_t spec_digest,
                                              std::size_t index) noexcept;

/// Fully evaluated (workload, stage, policy) cell.
struct sweep_cell {
    workload::workload_key workload;
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    core::policy_kind policy = core::policy_kind::nominal;

    /// The experiment's equal-weight theta (shared by the pair's cells).
    double theta_eq = 0.0;
    /// Deterministic per-cell RNG stream tag (see header comment).
    std::uint64_t task_seed = 0;

    /// Policy run at theta_eq (the Fig. 6.18 operating point).
    core::benchmark_experiment::policy_run equal_weight;
    /// Pareto front over spec.theta_multipliers (empty when no ladder),
    /// index-aligned with the ladder; identical to core::pareto_sweep.
    std::vector<core::pareto_point> pareto;
};

/// Aggregated sweep outcome, cell order = pair-major, policy-minor (the
/// spec's declaration order, independent of execution schedule).
struct sweep_result {
    sweep_spec spec;
    /// The FULL spec's digest -- the checkpoint keying identity
    /// (sweep_cell_digest(spec_digest, index)). Carried explicitly because
    /// a shard run's `spec` echo is reduced to the owned pairs (whose own
    /// digest() differs); every run of one sweep -- unsharded, any shard,
    /// or merged -- reports the same value here, and it is what the JSON
    /// document emits.
    std::uint64_t spec_digest = 0;
    std::vector<sweep_cell> cells;
    double wall_seconds = 0.0;
    /// Stage-tier cache traffic attributable to this sweep.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// Program-tier (shared artifacts) cache traffic attributable to this
    /// sweep. misses == lookups not served by memory; of those, disk_hits
    /// were served by the persistent store and program_computes actually
    /// generated the trace and ran the profiler.
    std::uint64_t program_cache_hits = 0;
    std::uint64_t program_cache_misses = 0;
    /// Disk-tier (persistent artifact store) traffic attributable to this
    /// sweep; both zero when no store is attached to the cache.
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_misses = 0;
    /// Trace generations + profiler runs this sweep actually performed.
    std::uint64_t program_computes = 0;
    /// True when the run had a checkpoint store (sweep_options::store).
    bool checkpointing = false;
    /// Checkpoint traffic: cells adopted from the store (resume) and cells
    /// computed then persisted this run; both zero without a store.
    std::uint64_t cells_loaded = 0;
    std::uint64_t cells_stored = 0;

    /// Cells that went through compute because no usable checkpoint
    /// covered them; 0 when the run had no store at all. Guarded against
    /// underflow: a merge or layout mismatch can legitimately present
    /// cells_loaded > cells.size(), which on the unsigned types would wrap
    /// to ~2^64 -- such a state reports 0 missed, never a wrapped count.
    [[nodiscard]] std::uint64_t cells_missed() const noexcept
    {
        if (!checkpointing || cells_loaded >= cells.size()) {
            return 0;
        }
        return cells.size() - cells_loaded;
    }

    /// The cell of (workload, stage, policy), or nullptr.
    [[nodiscard]] const sweep_cell* find(const workload::workload_key& workload,
                                         circuit::pipe_stage stage,
                                         core::policy_kind policy) const noexcept;
};

/// Checkpointing knobs for sweep_scheduler::run. The constructors keep
/// the brace-positional {store, resume} spelling of the test/bench call
/// sites working now that the struct has grown a shard field (aggregate
/// init with missing trailing fields trips -Wmissing-field-initializers).
struct sweep_options {
    sweep_options() = default;
    sweep_options(storage::artifact_store* store, bool resume = false,
                  std::optional<sweep_shard> shard = std::nullopt)
        : store(store), resume(resume), shard(std::move(shard))
    {
    }

    /// Checkpoint store override. When null (the default), the run uses
    /// the store attached to the scheduler's experiment_cache -- attaching
    /// once via experiment_cache::attach_store enables BOTH the artifact
    /// disk tier and cell checkpointing, so the feature cannot be silently
    /// half-wired. When set, every computed cell is persisted (atomic
    /// write-back) as it finishes, keyed on (spec digest, cell index) -- a
    /// killed sweep leaves its finished cells behind. Must outlive the run.
    storage::artifact_store* store = nullptr;
    /// With `store`: cells already materialized (decodable, matching
    /// (benchmark, stage, policy)) are adopted instead of recomputed, so a
    /// restarted sweep re-runs only the missing cells. A pair whose every
    /// cell is checkpointed skips its characterization entirely. Off by
    /// default so a warm re-run still exercises (and thus re-verifies) the
    /// evaluation path -- it then recomputes cells from disk-tier
    /// artifacts, bit-identically, with zero trace generations.
    bool resume = false;
    /// When set, the run computes ONLY the pairs the shard owns (see
    /// sweep_spec::shard), checkpoints them under their global cell
    /// indices, and records a shard manifest + the sweep's shard layout in
    /// the store, so N processes sharing one store jointly cover the spec
    /// and merge_sweep_shards can assemble the full result. Requires a
    /// store (explicit or cache-attached) -- a shard run's only durable
    /// product is its checkpoints. A layout already recorded for this spec
    /// with a different shard count is a conflicting (overlapping)
    /// sharding and fails the run with shard_error.
    std::optional<sweep_shard> shard;
    /// Cancellation parent (inert by default -- the tokenless run is the
    /// exact pre-cancellation code path). run() links a per-sweep
    /// cancel_source under it and threads per-task children through every
    /// pair task, the cache's owner/waiter machinery, and the
    /// characterization walk: cancelling this token's source makes queued
    /// pair tasks drop without starting, running ones unwind within one
    /// characterization interval, and run() rethrow operation_cancelled
    /// after every task settled. A cancelled run attests no shard
    /// completion manifest.
    cancel_token cancel{};
    /// Idle-worker speculation hook (see runtime/speculator.h). When set,
    /// every demand lookup the sweep makes is reported to the speculator
    /// -- recording speculative hits, preempting in-flight speculation the
    /// demand needs the workers for, and seeding predictions of
    /// likely-next cells. Never changes any cell's bytes: speculation only
    /// warms the same keyed cache tiers demand would fill. Must outlive
    /// the run.
    speculator* speculate = nullptr;
};

/// Raised when sharded-sweep bookkeeping refuses to proceed: a shard run
/// against a store whose recorded layout for the spec disagrees, or a
/// merge over manifests that are missing, foreign (different spec),
/// malformed, or mismatched with the requested spec. The runner CLI maps
/// this to a usage-style exit (2): the store's contents and the request
/// disagree, and no data was harmed.
class shard_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Store key of the shard-layout frame of a spec (manifest bucket).
[[nodiscard]] std::uint64_t shard_layout_digest(std::uint64_t spec_digest) noexcept;

/// Store key of shard (index, count)'s completion manifest (manifest
/// bucket).
[[nodiscard]] std::uint64_t shard_manifest_digest(std::uint64_t spec_digest,
                                                  std::size_t shard_count,
                                                  std::size_t shard_index) noexcept;

/// Persistent record of a sharded sweep in an artifact store, serialized
/// as a storage frame (storage/serialize.h). Two uses share the struct:
///
///   * the LAYOUT frame, at shard_layout_digest(spec_digest): declares how
///     the spec is sharded in this store (shard_index == shard_count, the
///     one value no real shard can have, marks the frame as layout;
///     cell_count is the spec's TOTAL cell count). Every shard run
///     publishes it and refuses to start when an existing layout
///     disagrees, so overlapping partitions of one spec cannot interleave
///     in one store;
///   * per-shard completion frames, at shard_manifest_digest(...): written
///     only after every cell the shard owns is durably checkpointed
///     (cell_count = the shard's OWN cell count). merge_sweep_shards
///     requires all `shard_count` of them.
struct shard_manifest {
    std::uint64_t spec_digest = 0;
    std::uint32_t shard_count = 1;
    std::uint32_t shard_index = 0;
    std::uint64_t cell_count = 0;

    friend bool operator==(const shard_manifest&, const shard_manifest&) = default;
};

/// Store key of shard (index, count)'s live progress frame (manifest
/// bucket). Distinct from the completion-manifest key so progress updates
/// never race the completion attestation.
[[nodiscard]] std::uint64_t shard_progress_digest(std::uint64_t spec_digest,
                                                  std::size_t shard_count,
                                                  std::size_t shard_index) noexcept;

/// Live progress of one shard (or of an unsharded checkpointing run, which
/// publishes as shard 0 of 1): how many of the cells it owns are durably in
/// the store so far. The scheduler republishes the frame (atomic
/// rename-over, throttled to ~4 Hz plus a guaranteed final publish) as the
/// run advances, so `synts_runner --status` can render a fleet view of a
/// sweep mid-flight without touching the processes. cells_done counts
/// restored + stored cells -- exactly the durable ones; the completion
/// manifest, not this frame, is what the merge trusts.
struct shard_progress {
    std::uint64_t spec_digest = 0;
    std::uint32_t shard_count = 1;
    std::uint32_t shard_index = 0;
    std::uint64_t cells_owned = 0;
    std::uint64_t cells_done = 0;

    friend bool operator==(const shard_progress&, const shard_progress&) = default;
};

/// Assembles the full sweep_result of `spec` from the checkpoints sharded
/// runs left in `store`: verifies the layout frame and every shard's
/// completion manifest (spec digest, shard count, per-shard cell counts),
/// then loads all cells. Throws shard_error when the store does not hold a
/// complete, layout-consistent shard set FOR THIS SPEC; the assembled
/// result is bit-identical to an unsharded run's (same cells, same
/// task_seeds), so its JSON document byte-matches the single-process one.
[[nodiscard]] sweep_result merge_sweep_shards(const sweep_spec& spec,
                                              const storage::artifact_store& store);

/// Expands sweep_specs into pool tasks and aggregates the results.
class sweep_scheduler {
public:
    /// Both the pool and the cache must outlive the scheduler.
    sweep_scheduler(thread_pool& pool, experiment_cache& cache)
        : pool_(&pool), cache_(&cache)
    {
    }

    /// Runs every cell of `spec` (or, with options.shard, exactly the
    /// owned slice); blocks until done. The first cell exception (in cell
    /// order) is rethrown after all tasks settle. Determinism contract:
    /// `options` never change what a cell contains, only whether it is
    /// recomputed or restored -- and a shard run's cells are bit-identical
    /// to the same cells of the unsharded run. A shard run's result echoes
    /// a spec reduced to the owned pairs (explicit pair list), so tables
    /// and CSVs cover exactly what this process computed; the canonical
    /// full document comes from merge_sweep_shards.
    [[nodiscard]] sweep_result run(const sweep_spec& spec,
                                   const sweep_options& options = {}) const;

private:
    thread_pool* pool_;
    experiment_cache* cache_;
};

} // namespace synts::runtime
