// sweep.h -- declarative experiment sweeps over the thread pool.
//
// A sweep_spec names WHAT to evaluate: a set of (benchmark, stage) pairs
// (explicitly, or as a benchmarks x stages cross product), a set of
// policies, and an optional theta-multiplier ladder. The sweep_scheduler
// decides HOW: it expands the spec into one task per (benchmark, stage)
// pair -- the pair's characterization, theta_eq and Nominal baseline are
// computed once and shared across its policy cells -- runs the tasks on a
// work-stealing thread_pool, memoizes the heavyweight characterizations in
// an experiment_cache (each (benchmark, stage, config) is characterized
// once no matter how many specs or figures consume it), and aggregates the
// cells in a deterministic, schedule-independent order.
//
// Determinism contract: every cell's numbers are produced by the same
// const code path the serial benches use (equal_weight_theta, run_policy,
// pareto_sweep on an identically-constructed benchmark_experiment), tasks
// share no mutable state, and results land in pre-assigned slots -- so a
// sweep's output is bit-identical across runs, worker counts, and the
// serial path. Each cell also carries a `task_seed` stream tag derived from
// (config.seed, cell index) via hash_mix, for future stochastic policies;
// nothing in the current policies draws from it.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"

namespace synts::storage {
class artifact_store;
}

namespace synts::runtime {

/// One (workload, stage) evaluation target. Workloads are registry keys
/// (workload/registry.h); benchmark_id literals convert implicitly.
using benchmark_stage = std::pair<workload::workload_key, circuit::pipe_stage>;

/// Declarative description of a batched sweep.
struct sweep_spec {
    /// Cross-product axes (used when `pairs` is empty). Any registered
    /// workload key -- built-in SPLASH-2 profile or parametric scenario
    /// instance -- is a valid axis value.
    std::vector<workload::workload_key> benchmarks;
    std::vector<circuit::pipe_stage> stages;
    /// Explicit pair list; when non-empty it replaces the cross product
    /// (the figure benches plot hand-picked pairs, not a full grid).
    std::vector<benchmark_stage> pairs;

    /// Policies evaluated per pair.
    std::vector<core::policy_kind> policies;

    /// Theta ladder as multipliers of each experiment's equal-weight theta.
    /// Empty = no Pareto sweep; cells then carry only the equal-weight run.
    std::vector<double> theta_multipliers;

    /// Experiment construction knobs (seed, thread count, models).
    core::experiment_config config{};

    /// The pairs this spec expands to (explicit list or cross product).
    [[nodiscard]] std::vector<benchmark_stage> expanded_pairs() const;

    /// Number of (pair, policy) result cells the sweep expands to.
    [[nodiscard]] std::size_t task_count() const;

    /// Stable digest over everything that determines the sweep's cells:
    /// the config digest, the expanded pair list, the policy list, and the
    /// theta ladder. Two specs with equal digests expand to cell-for-cell
    /// identical sweeps, so checkpointed cells are keyed on
    /// (spec digest, cell index) -- any spec edit changes every key and a
    /// stale checkpoint can never be resumed into the wrong sweep.
    [[nodiscard]] std::uint64_t digest() const;
};

/// Checkpoint key of cell `index` of a spec (see sweep_spec::digest()).
[[nodiscard]] std::uint64_t sweep_cell_digest(std::uint64_t spec_digest,
                                              std::size_t index) noexcept;

/// Fully evaluated (workload, stage, policy) cell.
struct sweep_cell {
    workload::workload_key workload;
    circuit::pipe_stage stage = circuit::pipe_stage::decode;
    core::policy_kind policy = core::policy_kind::nominal;

    /// The experiment's equal-weight theta (shared by the pair's cells).
    double theta_eq = 0.0;
    /// Deterministic per-cell RNG stream tag (see header comment).
    std::uint64_t task_seed = 0;

    /// Policy run at theta_eq (the Fig. 6.18 operating point).
    core::benchmark_experiment::policy_run equal_weight;
    /// Pareto front over spec.theta_multipliers (empty when no ladder),
    /// index-aligned with the ladder; identical to core::pareto_sweep.
    std::vector<core::pareto_point> pareto;
};

/// Aggregated sweep outcome, cell order = pair-major, policy-minor (the
/// spec's declaration order, independent of execution schedule).
struct sweep_result {
    sweep_spec spec;
    std::vector<sweep_cell> cells;
    double wall_seconds = 0.0;
    /// Stage-tier cache traffic attributable to this sweep.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// Program-tier (shared artifacts) cache traffic attributable to this
    /// sweep. misses == lookups not served by memory; of those, disk_hits
    /// were served by the persistent store and program_computes actually
    /// generated the trace and ran the profiler.
    std::uint64_t program_cache_hits = 0;
    std::uint64_t program_cache_misses = 0;
    /// Disk-tier (persistent artifact store) traffic attributable to this
    /// sweep; both zero when no store is attached to the cache.
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_misses = 0;
    /// Trace generations + profiler runs this sweep actually performed.
    std::uint64_t program_computes = 0;
    /// True when the run had a checkpoint store (sweep_options::store).
    bool checkpointing = false;
    /// Checkpoint traffic: cells adopted from the store (resume) and cells
    /// computed then persisted this run; both zero without a store.
    std::uint64_t cells_loaded = 0;
    std::uint64_t cells_stored = 0;

    /// Cells that went through compute because no usable checkpoint
    /// covered them; 0 when the run had no store at all.
    [[nodiscard]] std::uint64_t cells_missed() const noexcept
    {
        return checkpointing ? cells.size() - cells_loaded : 0;
    }

    /// The cell of (workload, stage, policy), or nullptr.
    [[nodiscard]] const sweep_cell* find(const workload::workload_key& workload,
                                         circuit::pipe_stage stage,
                                         core::policy_kind policy) const noexcept;
};

/// Checkpointing knobs for sweep_scheduler::run.
struct sweep_options {
    /// Checkpoint store override. When null (the default), the run uses
    /// the store attached to the scheduler's experiment_cache -- attaching
    /// once via experiment_cache::attach_store enables BOTH the artifact
    /// disk tier and cell checkpointing, so the feature cannot be silently
    /// half-wired. When set, every computed cell is persisted (atomic
    /// write-back) as it finishes, keyed on (spec digest, cell index) -- a
    /// killed sweep leaves its finished cells behind. Must outlive the run.
    storage::artifact_store* store = nullptr;
    /// With `store`: cells already materialized (decodable, matching
    /// (benchmark, stage, policy)) are adopted instead of recomputed, so a
    /// restarted sweep re-runs only the missing cells. A pair whose every
    /// cell is checkpointed skips its characterization entirely. Off by
    /// default so a warm re-run still exercises (and thus re-verifies) the
    /// evaluation path -- it then recomputes cells from disk-tier
    /// artifacts, bit-identically, with zero trace generations.
    bool resume = false;
};

/// Expands sweep_specs into pool tasks and aggregates the results.
class sweep_scheduler {
public:
    /// Both the pool and the cache must outlive the scheduler.
    sweep_scheduler(thread_pool& pool, experiment_cache& cache)
        : pool_(&pool), cache_(&cache)
    {
    }

    /// Runs every cell of `spec`; blocks until done. The first cell
    /// exception (in cell order) is rethrown after all tasks settle.
    /// Determinism contract: `options` never change what a cell contains,
    /// only whether it is recomputed or restored.
    [[nodiscard]] sweep_result run(const sweep_spec& spec,
                                   const sweep_options& options = {}) const;

private:
    thread_pool* pool_;
    experiment_cache* cache_;
};

} // namespace synts::runtime
