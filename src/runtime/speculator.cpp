#include "runtime/speculator.h"

#include <cctype>
#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist_builder.h"
#include "obs/metrics.h"
#include "workload/registry.h"

namespace synts::runtime {

namespace {

/// Ladder-next prediction: a workload whose name ends in a rung number
/// ("lock_ladder_3") predicts the next rung ("lock_ladder_4"). Returns
/// nullopt when the name has no trailing digits (not a ladder instance) or
/// the number does not parse.
std::optional<std::string> next_rung_name(const std::string& name)
{
    std::size_t begin = name.size();
    while (begin > 0 && (std::isdigit(static_cast<unsigned char>(name[begin - 1])) != 0)) {
        --begin;
    }
    if (begin == name.size()) {
        return std::nullopt;
    }
    try {
        const unsigned long long rung = std::stoull(name.substr(begin));
        return name.substr(0, begin) + std::to_string(rung + 1);
    } catch (const std::exception&) {
        return std::nullopt; // rung number out of range
    }
}

} // namespace

speculator::speculator(thread_pool& pool, experiment_cache& cache,
                       std::size_t max_inflight)
    : pool_(&pool), cache_(&cache),
      max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      obs_launched_(&obs::metrics_registry::global().counter_at("spec.launched")),
      obs_hits_(&obs::metrics_registry::global().counter_at("spec.hits")),
      obs_cancelled_(&obs::metrics_registry::global().counter_at("spec.cancelled")),
      obs_wasted_ns_(&obs::metrics_registry::global().counter_at("spec.wasted_ns"))
{
}

speculator::~speculator()
{
    {
        const util::mutex_lock lock(mutex_);
        stopped_ = true;
    }
    (void)root_.cancel("speculator stopped");
    drain();
}

void speculator::observe(const workload::workload_key& workload,
                         circuit::pipe_stage stage,
                         const core::experiment_config& config)
{
    const experiment_key key{workload, stage, config.digest()};
    const util::mutex_lock lock(mutex_);
    reap_locked();

    if (published_.erase(key) > 0) {
        // A completed speculation materialized exactly what demand now
        // asks for; the cache get that follows this observe() is a pure
        // memory hit.
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
    } else if (inflight_.contains(key)) {
        // Demand landed on an in-flight speculative construction: it will
        // join as a cache waiter, so the speculation is now on the demand
        // critical path -- count the hit and let it run.
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_->add(1);
    } else if (!cache_->contains(workload, stage, config)) {
        // A genuine demand miss is about to construct: the workers belong
        // to it. Squash everything speculative (queued tasks drop without
        // starting; running ones unwind within one characterization
        // interval and publish nothing).
        for (auto& [unused, entry] : inflight_) {
            (void)entry.handle.try_cancel("preempted by demand");
        }
    }

    if (!stopped_) {
        launch_predictions_locked(workload, stage, config);
    }
}

void speculator::cancel_inflight(std::string_view reason)
{
    const util::mutex_lock lock(mutex_);
    for (auto& [unused, entry] : inflight_) {
        (void)entry.handle.try_cancel(reason);
    }
}

void speculator::drain()
{
    for (;;) {
        std::vector<std::shared_future<void>> pending;
        {
            const util::mutex_lock lock(mutex_);
            reap_locked();
            if (inflight_.empty()) {
                return;
            }
            pending.reserve(inflight_.size());
            for (auto& [unused, entry] : inflight_) {
                pending.push_back(entry.done);
            }
        }
        for (std::shared_future<void>& done : pending) {
            // Help while waiting (the sweep scheduler's discipline): drain
            // may run on a pool worker or a fully-busy pool, where plain
            // blocking would wait on a task stuck behind the waiter.
            while (done.wait_for(std::chrono::seconds(0)) !=
                   std::future_status::ready) {
                if (!pool_->run_one_task()) {
                    (void)done.wait_for(std::chrono::milliseconds(1));
                }
            }
        }
    }
}

void speculator::reap_locked()
{
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second.done.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            ++it;
            continue;
        }
        try {
            it->second.done.get();
            // Success: the task already recorded itself in published_.
        } catch (const operation_cancelled&) {
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            obs_cancelled_->add(1);
            const std::uint64_t waste = obs::now_ns() - it->second.start_ns;
            wasted_ns_.fetch_add(waste, std::memory_order_relaxed);
            obs_wasted_ns_->add(static_cast<std::int64_t>(waste));
        } catch (...) {
            // A speculative failure is silent -- demand will retry the key
            // itself and surface the real error; the time is still waste.
            const std::uint64_t waste = obs::now_ns() - it->second.start_ns;
            wasted_ns_.fetch_add(waste, std::memory_order_relaxed);
            obs_wasted_ns_->add(static_cast<std::int64_t>(waste));
        }
        it = inflight_.erase(it);
    }
}

void speculator::launch_predictions_locked(const workload::workload_key& workload,
                                           circuit::pipe_stage stage,
                                           const core::experiment_config& config)
{
    // Idle gate, checked ONCE per observe: speculation only rides truly
    // idle workers. Launched predictions themselves raise pending_count,
    // so the gate must not be re-checked between launches.
    if (pool_->pending_count() != 0) {
        return;
    }

    std::vector<experiment_key> candidates;
    // Next ladder rung first: it needs fresh program artifacts, so it is
    // the expensive prediction -- exactly the one worth starting early.
    if (const std::optional<std::string> next = next_rung_name(workload.name)) {
        const workload::workload_registry& registry =
            workload::workload_registry::global();
        if (registry.contains(*next)) {
            candidates.push_back(
                experiment_key{registry.key(*next), stage, config.digest()});
        }
    }
    // Then the sibling stages of the demanded workload: they share its
    // program artifacts, so each costs only a stage characterization.
    for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
        const auto sibling = static_cast<circuit::pipe_stage>(s);
        if (sibling != stage) {
            candidates.push_back(experiment_key{workload, sibling, config.digest()});
        }
    }

    for (const experiment_key& candidate : candidates) {
        if (inflight_.size() >= max_inflight_) {
            return;
        }
        if (inflight_.contains(candidate) || published_.contains(candidate) ||
            cache_->contains(candidate.workload, candidate.stage, config)) {
            continue;
        }
        launch_locked(candidate, config);
    }
}

void speculator::launch_locked(const experiment_key& key,
                               const core::experiment_config& config)
{
    const workload::workload_key workload = key.workload;
    const circuit::pipe_stage stage = key.stage;
    inflight_entry entry;
    entry.start_ns = obs::now_ns();
    try {
        entry.handle = pool_->submit(
            root_.token(), [this, workload, stage, config](const cancel_token& token) {
                // No pool fan-out inside (nullptr executor): a speculative
                // construction must never recruit workers demand could
                // claim. Bit-identity is unaffected -- characterization is
                // executor-independent.
                (void)cache_->get_or_create(workload, stage, config,
                                            /*pool=*/nullptr, /*traffic=*/nullptr,
                                            token);
                const util::mutex_lock lock(mutex_);
                published_.insert(experiment_key{workload, stage, config.digest()});
            });
    } catch (const pool_stopped&) {
        return; // pool is draining; nothing was enqueued
    }
    entry.done = entry.handle.future().share();
    launched_.fetch_add(1, std::memory_order_relaxed);
    obs_launched_->add(1);
    inflight_.emplace(key, std::move(entry));
}

} // namespace synts::runtime
