// fleet_watch.h -- the live fleet view behind `synts_runner --watch`.
//
// --status answers "where is the fleet NOW"; --watch adds the time axis:
// per-shard completion rates (cells/s differenced between ticks), an ETA,
// and -- the part --status cannot say -- a STALLED verdict. A shard's
// shard_progress frame is republished (atomic rename) on every durable
// cell, so the frame's mtime is the shard's last heartbeat; a frame older
// than `stall_ns` while the shard is incomplete means the process died or
// hung, not that it is slow. The watch reads only the store -- it never
// touches the shard processes, so it runs from any machine sharing the
// store directory.
//
// fleet_watch::tick(now_ns) is pure over (store state, previous tick):
// tests drive it with explicit timestamps and age frames by rewriting
// file mtimes, no sleeping. The runner loops tick/render/sleep and turns
// the report into its exit code (0 all complete, 3 stall detected).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/sweep_io.h"

namespace synts::runtime {

struct watch_config {
    /// A reported, incomplete shard whose progress frame is older than
    /// this is STALLED. 10 s default: 40x the publisher's 250 ms throttle,
    /// so a live-but-slow shard is never flagged between cells.
    std::uint64_t stall_ns = 10'000'000'000ull;
};

/// One shard's row in a watch report.
struct watch_shard {
    shard_status status;
    /// Cells/s differenced against the previous tick (nullopt on the first
    /// tick a shard is seen, and for complete shards).
    std::optional<double> cells_per_s;
    /// Seconds to completion at the current rate (nullopt without a
    /// positive rate).
    std::optional<double> eta_s;
    bool stalled = false;
};

/// One sweep's rows plus fleet-level aggregates.
struct watch_sweep {
    std::uint64_t spec_digest = 0;
    std::uint32_t shard_count = 1;
    std::uint64_t total_cells = 0;
    bool layout = false;
    std::vector<watch_shard> shards;
    std::uint64_t total_done = 0;
    std::uint64_t total_owned = 0;
    std::optional<double> cells_per_s; ///< sum of shard rates (when any)
    std::optional<double> eta_s;       ///< slowest incomplete shard's ETA
    bool complete = false;
    bool any_stalled = false;
};

struct watch_report {
    std::vector<watch_sweep> sweeps;
    bool all_complete = false; ///< every sweep complete (false when empty)
    bool any_stalled = false;
};

/// Stateful watcher: remembers each shard's (t_ns, done) from the previous
/// tick to derive rates. One instance per watch loop; not thread-safe.
class fleet_watch {
public:
    explicit fleet_watch(const storage::artifact_store& store, watch_config config = {});

    /// Scans the store, ages progress frames, and derives rates against
    /// the previous tick. `now_ns` is obs::now_ns() in the runner; tests
    /// pass explicit timestamps.
    [[nodiscard]] watch_report tick(std::uint64_t now_ns);

    [[nodiscard]] const watch_config& config() const noexcept { return config_; }

private:
    struct observation {
        std::uint64_t t_ns = 0;
        std::uint64_t done = 0;
    };

    const storage::artifact_store* store_;
    watch_config config_;
    std::map<std::pair<std::uint64_t, std::uint32_t>, observation> last_;
};

/// Console rendering: the --status layout augmented with rate, ETA, and
/// STALLED columns:
///   sweep <digest>: 2 shards, 6 cells
///     shard 0/2: 2/3 (66.7%) 1.5 cells/s eta 1s
///     shard 1/2: 3/3 (100.0%) complete
///     shard 0/2: 2/3 (66.7%) STALLED (age 12.4s)
///     total: 5/6 (83.3%) 1.5 cells/s eta 1s
[[nodiscard]] std::string render_watch_report(const watch_report& report);

} // namespace synts::runtime
