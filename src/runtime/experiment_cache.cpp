#include "runtime/experiment_cache.h"

namespace synts::runtime {

namespace {

util::parallel_for_fn pool_executor(thread_pool* pool)
{
    return pool != nullptr ? make_parallel_for(*pool) : util::parallel_for_fn{};
}

} // namespace

experiment_cache::experiment_cache(std::size_t shard_count)
    : stage_tier_(shard_count), program_tier_(shard_count)
{
}

experiment_cache::experiment_ptr
experiment_cache::get_or_create(workload::benchmark_id benchmark,
                                circuit::pipe_stage stage,
                                const core::experiment_config& config, thread_pool* pool)
{
    const experiment_key key{benchmark, stage, config.digest()};
    return stage_tier_.get_or_create(key, [&]() -> experiment_ptr {
        const program_ptr program = get_or_create_program(benchmark, config, pool);
        return std::make_shared<const core::benchmark_experiment>(
            program, stage, config, pool_executor(pool));
    });
}

experiment_cache::program_ptr
experiment_cache::get_or_create_program(workload::benchmark_id benchmark,
                                        const core::experiment_config& config,
                                        thread_pool* pool)
{
    const program_key key{benchmark, config.workload_digest()};
    return program_tier_.get_or_create(key, [&]() -> program_ptr {
        return core::make_program_artifacts(benchmark, config, pool_executor(pool));
    });
}

void experiment_cache::clear()
{
    stage_tier_.clear();
    program_tier_.clear();
}

experiment_cache& experiment_cache::process_cache()
{
    static experiment_cache cache;
    return cache;
}

} // namespace synts::runtime
