#include "runtime/experiment_cache.h"

#include <exception>

#include "obs/trace.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"

namespace synts::runtime {

namespace {

util::parallel_for_fn pool_executor(thread_pool* pool)
{
    return pool != nullptr ? make_parallel_for(*pool) : util::parallel_for_fn{};
}

/// Disk-tier probe: decodes and provenance-checks a store frame. Returns
/// nullptr -- a disk miss -- on ANY failure (unreadable, truncated,
/// bit-flipped, wrong format version, wrong payload kind, or a stamped
/// workload digest that disagrees with the request). The caller rebuilds;
/// stale or foreign data is never served.
experiment_cache::program_ptr try_load_program(const storage::artifact_store& store,
                                               std::uint64_t key_digest,
                                               const workload::workload_key& workload,
                                               const core::experiment_config& config)
{
    const std::optional<std::string> frame =
        store.load(storage::program_bucket, key_digest);
    if (!frame) {
        return nullptr;
    }
    try {
        auto loaded = std::make_shared<core::program_artifacts>(
            storage::decode_program_artifacts(*frame));
        if (!loaded->provenance_matches(workload, config.thread_count,
                                        config.workload_digest())) {
            return nullptr;
        }
        loaded->validate();
        return loaded;
    } catch (const std::exception&) {
        return nullptr; // corrupt or inconsistent frame == miss
    }
}

} // namespace

experiment_cache::experiment_cache(std::size_t shard_count)
    : stage_tier_(shard_count,
                  &obs::metrics_registry::global().counter_at("cache.tier1.hits"),
                  &obs::metrics_registry::global().counter_at("cache.tier1.misses")),
      program_tier_(shard_count,
                    &obs::metrics_registry::global().counter_at("cache.tier2.hits"),
                    &obs::metrics_registry::global().counter_at("cache.tier2.misses")),
      obs_disk_hits_(&obs::metrics_registry::global().counter_at("cache.tier3.hits")),
      obs_disk_misses_(&obs::metrics_registry::global().counter_at("cache.tier3.misses")),
      obs_computes_(&obs::metrics_registry::global().counter_at("cache.tier2.computes")),
      obs_stage_build_ns_(
          &obs::metrics_registry::global().histogram_at("cache.tier1.build_ns")),
      obs_compute_ns_(
          &obs::metrics_registry::global().histogram_at("cache.tier2.compute_ns")),
      obs_disk_load_ns_(
          &obs::metrics_registry::global().histogram_at("cache.tier3.load_ns"))
{
}

experiment_cache::experiment_ptr
experiment_cache::get_or_create(const workload::workload_key& workload,
                                circuit::pipe_stage stage,
                                const core::experiment_config& config, thread_pool* pool,
                                cache_traffic* traffic, const cancel_token& cancel)
{
    const experiment_key key{workload, stage, config.digest()};
    return stage_tier_.get_or_create(
        key,
        [&]() -> experiment_ptr {
            const program_ptr program =
                get_or_create_program(workload, config, pool, traffic, cancel);
            cancel.throw_if_cancelled(); // phase boundary: artifacts -> stage
            const obs::trace_span span(
                obs::trace_recorder::global(),
                [&] { return "cache.stage_build:" + workload.name; });
            const obs::scoped_timer timer(*obs_stage_build_ns_);
            return std::make_shared<const core::benchmark_experiment>(
                program, stage, config, pool_executor(pool), cancel);
        },
        traffic != nullptr ? &traffic->stage : nullptr, cancel);
}

experiment_cache::program_ptr
experiment_cache::get_or_create_program(const workload::workload_key& workload,
                                        const core::experiment_config& config,
                                        thread_pool* pool, cache_traffic* traffic,
                                        const cancel_token& cancel)
{
    const program_key key{workload, config.workload_digest()};
    // Attribution note: the factory below runs on the thread that OWNS the
    // miss, so its disk probes and computes are charged to that caller's
    // sink; concurrent callers of the same key block on the shared future
    // and record only a hit.
    const auto count = [traffic](std::atomic<std::uint64_t>& global,
                                 std::atomic<std::uint64_t> cache_traffic::* local) {
        global.fetch_add(1, std::memory_order_relaxed);
        if (traffic != nullptr) {
            (traffic->*local).fetch_add(1, std::memory_order_relaxed);
        }
    };
    const auto compute = [&]() -> program_ptr {
        count(program_computes_, &cache_traffic::program_computes);
        obs_computes_->add(1);
        const obs::trace_span span(obs::trace_recorder::global(),
                                   [&] { return "cache.compute:" + workload.name; });
        const obs::scoped_timer timer(*obs_compute_ns_);
        return core::make_program_artifacts(workload, config, pool_executor(pool),
                                            cancel);
    };
    const auto probe_disk = [&]() -> program_ptr {
        const obs::scoped_timer timer(*obs_disk_load_ns_);
        return try_load_program(*store_, key.digest(), workload, config);
    };
    return program_tier_.get_or_create(
        key,
        [&]() -> program_ptr {
            if (store_ != nullptr) {
                if (program_ptr loaded = probe_disk()) {
                    count(disk_hits_, &cache_traffic::disk_hits);
                    obs_disk_hits_->add(1);
                    return loaded;
                }
                count(disk_misses_, &cache_traffic::disk_misses);
                obs_disk_misses_->add(1);
                program_ptr built = compute();
                // Best-effort write-back: a failed publish (read-only store,
                // disk full) degrades persistence, never the result. A
                // cancelled compute() never reaches here, so the store only
                // ever sees COMPLETE artifacts (atomic temp+rename inside
                // keeps concurrent readers safe from torn frames).
                (void)store_->store(storage::program_bucket, key.digest(),
                                    storage::encode(*built));
                return built;
            }
            return compute();
        },
        traffic != nullptr ? &traffic->program : nullptr, cancel);
}

void experiment_cache::clear()
{
    stage_tier_.clear();
    program_tier_.clear();
}

experiment_cache& experiment_cache::process_cache()
{
    static experiment_cache cache;
    return cache;
}

} // namespace synts::runtime
