#include "runtime/experiment_cache.h"

#include <bit>

#include "util/hashing.h"

namespace synts::runtime {

std::size_t experiment_cache::key_hash::operator()(
    const experiment_key& key) const noexcept
{
    util::digest_builder h;
    h.value(key.benchmark);
    h.value(key.stage);
    h.value(key.config_digest);
    return static_cast<std::size_t>(h.digest());
}

experiment_cache::experiment_cache(std::size_t shard_count)
{
    shard_count = std::bit_ceil(shard_count == 0 ? std::size_t{1} : shard_count);
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
        shards_.push_back(std::make_unique<shard>());
    }
}

experiment_cache::shard& experiment_cache::shard_for(const experiment_key& key) noexcept
{
    // Re-mix so shard choice and bucket choice use decorrelated bits.
    const std::uint64_t mixed =
        util::hash_mix(key.config_digest,
                       (static_cast<std::uint64_t>(key.benchmark) << 8) |
                           static_cast<std::uint64_t>(key.stage));
    return *shards_[mixed & (shards_.size() - 1)];
}

experiment_cache::experiment_ptr
experiment_cache::get_or_create(workload::benchmark_id benchmark,
                                circuit::pipe_stage stage,
                                const core::experiment_config& config)
{
    const experiment_key key{benchmark, stage, config.digest()};
    shard& home = shard_for(key);

    std::promise<experiment_ptr> construction;
    std::shared_future<experiment_ptr> entry;
    bool owner = false;
    {
        std::lock_guard lock(home.mutex);
        auto it = home.entries.find(key);
        if (it != home.entries.end()) {
            entry = it->second;
        } else {
            entry = construction.get_future().share();
            home.entries.emplace(key, entry);
            owner = true;
        }
    }

    if (!owner) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry.get(); // blocks while the owner constructs; rethrows
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
        construction.set_value(
            std::make_shared<const core::benchmark_experiment>(benchmark, stage, config));
    } catch (...) {
        construction.set_exception(std::current_exception());
        {
            std::lock_guard lock(home.mutex);
            home.entries.erase(key);
        }
        throw;
    }
    return entry.get();
}

std::size_t experiment_cache::size() const
{
    std::size_t total = 0;
    for (const auto& s : shards_) {
        std::lock_guard lock(s->mutex);
        total += s->entries.size();
    }
    return total;
}

void experiment_cache::clear()
{
    for (const auto& s : shards_) {
        std::lock_guard lock(s->mutex);
        s->entries.clear();
    }
}

experiment_cache& experiment_cache::process_cache()
{
    static experiment_cache cache;
    return cache;
}

} // namespace synts::runtime
