#include "runtime/sweep_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "obs/metrics.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/registry.h"

namespace synts::runtime {

namespace {

/// Lowercases and strips '-'/'_' so display names and CLI tokens compare.
std::string normalize(std::string_view token)
{
    std::string out;
    out.reserve(token.size());
    for (const char c : token) {
        if (c == '-' || c == '_') {
            continue;
        }
        out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

/// Lowercase machine token for a policy (display names contain spaces).
std::string_view policy_token(core::policy_kind kind) noexcept
{
    switch (kind) {
    case core::policy_kind::nominal:
        return "nominal";
    case core::policy_kind::no_ts:
        return "no_ts";
    case core::policy_kind::per_core_ts:
        return "per_core_ts";
    case core::policy_kind::synts_offline:
        return "synts_offline";
    case core::policy_kind::synts_online:
        return "synts_online";
    }
    return "?";
}

/// JSON string escape (names here are ASCII identifiers, but be correct).
std::string json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::vector<std::string_view> split_csv(std::string_view csv)
{
    std::vector<std::string_view> tokens;
    for (;;) {
        const std::size_t comma = csv.find(',');
        tokens.push_back(csv.substr(0, comma));
        if (comma == std::string_view::npos) {
            return tokens;
        }
        csv = csv.substr(comma + 1);
    }
}

void write_pareto_csv(const sweep_result& result, std::ostream& out)
{
    util::csv_writer csv(out);
    csv.header({"benchmark", "stage", "policy", "theta_multiplier", "theta",
                "energy_norm", "time_norm"});
    for (const sweep_cell& cell : result.cells) {
        for (std::size_t i = 0; i < cell.pareto.size(); ++i) {
            csv.begin_row();
            csv.field(cell.workload.name);
            csv.field(std::string(circuit::pipe_stage_name(cell.stage)));
            csv.field(std::string(policy_token(cell.policy)));
            csv.field(result.spec.theta_multipliers[i]);
            csv.field(cell.pareto[i].theta);
            csv.field(cell.pareto[i].energy);
            csv.field(cell.pareto[i].time);
        }
    }
}

void write_summary_csv(const sweep_result& result, std::ostream& out)
{
    util::csv_writer csv(out);
    csv.header({"benchmark", "stage", "policy", "theta_eq", "energy", "time_ps", "edp"});
    for (const sweep_cell& cell : result.cells) {
        csv.begin_row();
        csv.field(cell.workload.name);
        csv.field(std::string(circuit::pipe_stage_name(cell.stage)));
        csv.field(std::string(policy_token(cell.policy)));
        csv.field(cell.theta_eq);
        csv.field(cell.equal_weight.sum.energy);
        csv.field(cell.equal_weight.sum.time_ps);
        csv.field(cell.equal_weight.sum.edp());
    }
}

sweep_json_meta collect_sweep_json_meta()
{
    sweep_json_meta meta;

    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc) != nullptr) {
        char stamp[32];
        if (std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc) > 0) {
            meta.generated_utc = stamp;
        }
    }

    char host[256] = {};
    if (gethostname(host, sizeof host - 1) == 0) {
        meta.hostname = host;
    }

    meta.hardware_concurrency = std::thread::hardware_concurrency();

    if (const char* describe = std::getenv("SYNTS_GIT_DESCRIBE");
        describe != nullptr && *describe != '\0') {
        meta.git_describe = describe;
    } else {
        // Fallback when no script exported the env var (a bare binary run
        // from a checkout): ask git directly. BENCH_obs.json once shipped a
        // stale describe precisely because nothing recomputed it at run
        // time; stderr is routed to /dev/null so a non-repo cwd or missing
        // git degrades to an omitted field, never noise in the document.
        if (FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
            pipe != nullptr) {
            char line[256] = {};
            if (std::fgets(line, sizeof line, pipe) != nullptr) {
                std::string described(line);
                while (!described.empty() &&
                       (described.back() == '\n' || described.back() == '\r')) {
                    described.pop_back();
                }
                meta.git_describe = std::move(described);
            }
            pclose(pipe);
        }
    }
    return meta;
}

void write_sweep_json(const sweep_result& result, std::ostream& out,
                      const sweep_json_meta* meta)
{
    std::ostringstream body;
    body.precision(17);
    body << "{\n";
    if (meta != nullptr) {
        // One line by contract (see sweep_json_meta): byte-identity
        // consumers strip it with `grep -v '"meta"'`.
        body << "  \"meta\": {\"schema_version\": " << meta->schema_version
             << ", \"generated_utc\": \"" << json_escape(meta->generated_utc)
             << "\", \"hostname\": \"" << json_escape(meta->hostname)
             << "\", \"hardware_concurrency\": " << meta->hardware_concurrency;
        if (!meta->git_describe.empty()) {
            body << ", \"git_describe\": \"" << json_escape(meta->git_describe) << '"';
        }
        body << "},\n";
    }
    body << "  \"config\": {\"thread_count\": " << result.spec.config.thread_count
         << ", \"seed\": " << result.spec.config.seed
         // Digests are 64-bit; as bare JSON numbers they would be rounded
         // by double-based consumers (anything past 2^53), so emit strings.
         << ", \"digest\": \"" << result.spec.config.digest() << "\"},\n"
         // The checkpoint keying identity: the artifact store keys this
         // sweep's cells on (spec_digest, cell index). Taken from the
         // result, not recomputed from the spec echo -- a shard run's echo
         // is reduced to its owned pairs, but its checkpoints (and this
         // field) still carry the full sweep's digest.
         << "  \"spec_digest\": \"" << result.spec_digest << "\",\n";
    body << "  \"theta_multipliers\": [";
    for (std::size_t i = 0; i < result.spec.theta_multipliers.size(); ++i) {
        body << (i ? ", " : "") << result.spec.theta_multipliers[i];
    }
    body << "],\n  \"cells\": [\n";
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
        const sweep_cell& cell = result.cells[c];
        body << "    {\"benchmark\": \""
             << json_escape(cell.workload.name) << "\", \"stage\": \""
             << json_escape(circuit::pipe_stage_name(cell.stage)) << "\", \"policy\": \""
             << policy_token(cell.policy) << "\", \"theta_eq\": " << cell.theta_eq
             << ", \"task_seed\": " << cell.task_seed
             << ", \"energy\": " << cell.equal_weight.sum.energy
             << ", \"time_ps\": " << cell.equal_weight.sum.time_ps
             << ", \"edp\": " << cell.equal_weight.sum.edp() << ", \"pareto\": [";
        for (std::size_t i = 0; i < cell.pareto.size(); ++i) {
            body << (i ? ", " : "") << "{\"theta\": " << cell.pareto[i].theta
                 << ", \"energy\": " << cell.pareto[i].energy
                 << ", \"time\": " << cell.pareto[i].time << "}";
        }
        body << "]}" << (c + 1 < result.cells.size() ? "," : "") << "\n";
    }
    body << "  ]\n}\n";
    out << body.str();
}

std::string render_sweep_table(const sweep_result& result)
{
    std::string rendered;
    for (const benchmark_stage& pair : result.spec.expanded_pairs()) {
        util::text_table table({"policy", "theta_eq", "energy", "time (ps)", "EDP"});
        for (const core::policy_kind kind : result.spec.policies) {
            const sweep_cell* cell = result.find(pair.first, pair.second, kind);
            if (cell == nullptr) {
                continue;
            }
            table.begin_row();
            table.cell(std::string(core::policy_name(kind)));
            table.cell(cell->theta_eq, 6);
            table.cell(cell->equal_weight.sum.energy, 1);
            table.cell(cell->equal_weight.sum.time_ps, 1);
            table.cell(cell->equal_weight.sum.edp(), 4);
        }
        rendered += pair.first.name + " / " +
                    circuit::pipe_stage_name(pair.second) + "\n" + table.render() + "\n";
    }
    return rendered;
}

namespace {

/// The four tier rows + trailing scalars both cache-stats sources render.
struct cache_stats_view {
    struct row {
        const char* tier;
        std::uint64_t hits;
        std::uint64_t misses;
    };
    row rows[4];
    std::uint64_t program_computes = 0;
    std::uint64_t cells_stored = 0;
};

/// One formatter for both sources, so the sink-sourced and
/// registry-sourced variants can never drift apart in layout (the CLI
/// contract tests pin this output byte for byte).
std::string format_cache_stats(const cache_stats_view& view, cache_stats_format format)
{
    std::ostringstream out;
    switch (format) {
    case cache_stats_format::table: {
        util::text_table table({"tier", "hits", "misses"});
        for (const cache_stats_view::row& r : view.rows) {
            table.begin_row();
            table.cell(std::string(r.tier));
            table.cell(static_cast<long long>(r.hits));
            table.cell(static_cast<long long>(r.misses));
        }
        out << table.render();
        out << "program computes (trace gen + profiler): "
            << view.program_computes << "\n";
        break;
    }
    case cache_stats_format::csv:
        // Strictly (tier, hits, misses) rows; the compute count is not a
        // tier and is derivable as program.misses - disk.hits, so it is
        // omitted rather than bent into the schema (table and JSON carry
        // it explicitly).
        out << "tier,hits,misses\n";
        for (const cache_stats_view::row& r : view.rows) {
            out << r.tier << ',' << r.hits << ',' << r.misses << '\n';
        }
        break;
    case cache_stats_format::json:
        out << "{\"cache\": {";
        for (std::size_t i = 0; i < std::size(view.rows); ++i) {
            out << (i ? ", " : "") << '"' << view.rows[i].tier << "\": {\"hits\": "
                << view.rows[i].hits << ", \"misses\": " << view.rows[i].misses << '}';
        }
        out << ", \"program_computes\": " << view.program_computes
            << ", \"cells_stored\": " << view.cells_stored << "}}\n";
        break;
    }
    return out.str();
}

} // namespace

std::string render_cache_stats(const sweep_result& result, cache_stats_format format)
{
    const cache_stats_view view{
        {
            {"program", result.program_cache_hits, result.program_cache_misses},
            {"stage", result.cache_hits, result.cache_misses},
            {"disk", result.disk_hits, result.disk_misses},
            {"checkpoint", result.cells_loaded, result.cells_missed()},
        },
        result.program_computes,
        result.cells_stored,
    };
    return format_cache_stats(view, format);
}

std::string render_cache_stats_from_metrics(cache_stats_format format)
{
    obs::metrics_registry& registry = obs::metrics_registry::global();
    const auto count = [&registry](std::string_view name) {
        return registry.counter_at(name).value();
    };
    // Row mapping onto the registry taxonomy: program = tier2 (program
    // memo), stage = tier1 (stage memo), disk = tier3, checkpoint =
    // sweep.cells_loaded / sweep.cells_missed.
    const cache_stats_view view{
        {
            {"program", count("cache.tier2.hits"), count("cache.tier2.misses")},
            {"stage", count("cache.tier1.hits"), count("cache.tier1.misses")},
            {"disk", count("cache.tier3.hits"), count("cache.tier3.misses")},
            {"checkpoint", count("sweep.cells_loaded"), count("sweep.cells_missed")},
        },
        count("cache.tier2.computes"),
        count("sweep.cells_stored"),
    };
    return format_cache_stats(view, format);
}

std::vector<sweep_status> collect_store_status(const storage::artifact_store& store)
{
    // Reconstructed per-shard state of one sweep: completion manifests win
    // over progress frames (a complete shard can never regress behind a
    // stale count -- run() publishes the final progress frame first).
    struct sweep_view {
        std::uint32_t shard_count = 1;
        std::uint64_t total_cells = 0;  // from the layout frame; 0 = none seen
        bool layout = false;
        std::map<std::uint32_t, shard_status> shards;
    };
    std::map<std::uint64_t, sweep_view> sweeps;

    for (const std::uint64_t key : store.list(storage::manifest_bucket)) {
        const std::optional<std::string> frame =
            store.load(storage::manifest_bucket, key);
        if (!frame) {
            continue;  // raced a concurrent republish; next --status sees it
        }
        try {
            const shard_manifest manifest = storage::decode_shard_manifest(*frame);
            sweep_view& sweep = sweeps[manifest.spec_digest];
            if (manifest.shard_index == manifest.shard_count) {
                // Layout sentinel: total cell count + authoritative count.
                sweep.layout = true;
                sweep.shard_count = manifest.shard_count;
                sweep.total_cells = manifest.cell_count;
            } else {
                sweep.shard_count = std::max(sweep.shard_count, manifest.shard_count);
                shard_status& view = sweep.shards[manifest.shard_index];
                view.complete = true;
                view.reported = true;
                view.owned = manifest.cell_count;
                view.done = manifest.cell_count;
            }
            continue;
        } catch (const storage::serialize_error&) {
            // Not a manifest frame; fall through to the progress decoder.
        }
        try {
            const shard_progress progress = storage::decode_shard_progress(*frame);
            sweep_view& sweep = sweeps[progress.spec_digest];
            sweep.shard_count = std::max(sweep.shard_count, progress.shard_count);
            shard_status& view = sweep.shards[progress.shard_index];
            view.reported = true;
            if (!view.complete) {
                view.owned = std::max(view.owned, progress.cells_owned);
                view.done = std::max(view.done, progress.cells_done);
            }
        } catch (const storage::serialize_error&) {
            // Some other payload kind landed in the bucket: not ours, skip.
        }
    }

    std::vector<sweep_status> out;
    out.reserve(sweeps.size());
    for (auto& [digest, sweep] : sweeps) {
        sweep_status status;
        status.spec_digest = digest;
        status.shard_count = sweep.shard_count;
        status.total_cells = sweep.total_cells;
        status.layout = sweep.layout;
        status.shards.resize(sweep.shard_count);
        for (std::uint32_t i = 0; i < sweep.shard_count; ++i) {
            shard_status& view = status.shards[i];
            const auto it = sweep.shards.find(i);
            if (it != sweep.shards.end()) {
                view = it->second;
            }
            view.index = i;
            if (view.reported) {
                // The progress frame's mtime IS the shard's last heartbeat
                // (atomic republish on every durable cell, ~4 Hz throttle):
                // its age is how long the shard has been silent.
                view.frame_age_ns = store.entry_age_ns(
                    storage::manifest_bucket,
                    shard_progress_digest(digest, sweep.shard_count, i));
                status.total_done += view.done;
                status.total_owned += view.owned;
            }
        }
        // The layout knows the sweep's full size; unreported shards would
        // otherwise silently shrink the denominator.
        if (sweep.layout && sweep.total_cells > status.total_owned) {
            status.total_owned = sweep.total_cells;
        }
        out.push_back(std::move(status));
    }
    return out;
}

namespace {

/// "%.1f" completion percentage; a shard that owns zero cells is trivially
/// done.
std::string percent_token(std::uint64_t done, std::uint64_t owned)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f",
                  owned == 0 ? 100.0
                             : 100.0 * static_cast<double>(done) /
                                   static_cast<double>(owned));
    return std::string(buf);
}

} // namespace

std::string render_store_status(const storage::artifact_store& store)
{
    const std::vector<sweep_status> sweeps = collect_store_status(store);
    std::ostringstream out;
    if (sweeps.empty()) {
        out << "no sweeps recorded\n";
        return out.str();
    }
    for (const sweep_status& sweep : sweeps) {
        out << "sweep " << sweep.spec_digest << ": " << sweep.shard_count
            << (sweep.shard_count == 1 ? " shard" : " shards");
        if (sweep.layout) {
            out << ", " << sweep.total_cells << " cells";
        }
        out << "\n";
        for (const shard_status& view : sweep.shards) {
            out << "  shard " << view.index << "/" << sweep.shard_count << ": ";
            if (!view.reported) {
                out << "no progress recorded\n";
                continue;
            }
            out << view.done << "/" << view.owned << " ("
                << percent_token(view.done, view.owned) << "%)";
            if (view.complete) {
                out << " complete";
            }
            out << "\n";
        }
        out << "  total: " << sweep.total_done << "/" << sweep.total_owned << " ("
            << percent_token(sweep.total_done, sweep.total_owned) << "%)\n";
    }
    return out.str();
}

std::optional<cache_stats_format> parse_cache_stats_format(std::string_view token)
{
    const std::string wanted = normalize(token);
    if (wanted == "table") {
        return cache_stats_format::table;
    }
    if (wanted == "csv") {
        return cache_stats_format::csv;
    }
    if (wanted == "json") {
        return cache_stats_format::json;
    }
    return std::nullopt;
}

std::optional<workload::benchmark_id> parse_benchmark(std::string_view token)
{
    const std::string wanted = normalize(token);
    for (const workload::benchmark_id id : workload::all_benchmarks()) {
        if (normalize(workload::benchmark_name(id)) == wanted) {
            return id;
        }
    }
    return std::nullopt;
}

std::optional<circuit::pipe_stage> parse_stage(std::string_view token)
{
    const std::string wanted = normalize(token);
    for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
        const auto stage = static_cast<circuit::pipe_stage>(s);
        if (normalize(circuit::pipe_stage_name(stage)) == wanted) {
            return stage;
        }
    }
    return std::nullopt;
}

std::optional<core::policy_kind> parse_policy(std::string_view token)
{
    const std::string wanted = normalize(token);
    for (const core::policy_kind kind : core::all_policies()) {
        if (normalize(policy_token(kind)) == wanted ||
            normalize(core::policy_name(kind)) == wanted) {
            return kind;
        }
    }
    return std::nullopt;
}

std::optional<workload::workload_key>
parse_workload(const workload::workload_registry& registry, std::string_view token)
{
    const std::string wanted = normalize(token);
    for (const workload::workload_key& key : registry.keys()) {
        if (normalize(key.name) == wanted) {
            return key;
        }
    }
    return std::nullopt;
}

std::vector<workload::workload_key>
parse_workload_list(const workload::workload_registry& registry, std::string_view csv)
{
    const std::string keyword = normalize(csv);
    if (keyword == "all") {
        return registry.keys();
    }
    if (keyword == "splash2") {
        const auto span = workload::all_benchmarks();
        return {span.begin(), span.end()};
    }
    if (keyword == "reported") {
        const auto span = workload::reported_benchmarks();
        return {span.begin(), span.end()};
    }
    std::vector<workload::workload_key> keys;
    for (const std::string_view token : split_csv(csv)) {
        const auto key = parse_workload(registry, token);
        if (!key) {
            throw std::invalid_argument("unknown workload: \"" + std::string(token) +
                                        "\" (see --list-benchmarks)");
        }
        keys.push_back(*key);
    }
    return keys;
}

std::vector<workload::benchmark_id> parse_benchmark_list(std::string_view csv)
{
    const std::string keyword = normalize(csv);
    if (keyword == "all") {
        const auto span = workload::all_benchmarks();
        return {span.begin(), span.end()};
    }
    if (keyword == "reported") {
        const auto span = workload::reported_benchmarks();
        return {span.begin(), span.end()};
    }
    std::vector<workload::benchmark_id> ids;
    for (const std::string_view token : split_csv(csv)) {
        const auto id = parse_benchmark(token);
        if (!id) {
            throw std::invalid_argument("unknown benchmark: " + std::string(token));
        }
        ids.push_back(*id);
    }
    return ids;
}

std::vector<circuit::pipe_stage> parse_stage_list(std::string_view csv)
{
    if (normalize(csv) == "all") {
        std::vector<circuit::pipe_stage> stages;
        for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
            stages.push_back(static_cast<circuit::pipe_stage>(s));
        }
        return stages;
    }
    std::vector<circuit::pipe_stage> stages;
    for (const std::string_view token : split_csv(csv)) {
        const auto stage = parse_stage(token);
        if (!stage) {
            throw std::invalid_argument("unknown stage: " + std::string(token));
        }
        stages.push_back(*stage);
    }
    return stages;
}

std::vector<core::policy_kind> parse_policy_list(std::string_view csv)
{
    if (normalize(csv) == "all") {
        const auto span = core::all_policies();
        return {span.begin(), span.end()};
    }
    std::vector<core::policy_kind> kinds;
    for (const std::string_view token : split_csv(csv)) {
        const auto kind = parse_policy(token);
        if (!kind) {
            throw std::invalid_argument("unknown policy: " + std::string(token));
        }
        kinds.push_back(*kind);
    }
    return kinds;
}

} // namespace synts::runtime
