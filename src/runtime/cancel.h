// cancel.h -- the runtime's interruptible-task contract.
//
// The primitive lives in util/cancellation.h so the characterization
// pipeline (a layer below the runtime) can poll tokens without naming
// runtime types -- the same split as util/parallel.h vs thread_pool. This
// header gives the runtime surface its canonical names: every runtime API
// that accepts or produces cancellation state (thread_pool::submit's
// token overload, sweep_options::cancel, experiment_cache::get_or_create,
// the speculator) spells them runtime::cancel_token / cancel_source.
//
// Contract summary (details on each site):
//
//   * inert by default -- a default-constructed token never cancels, and
//     every tokenless call path is the exact pre-cancellation code path;
//   * parent -> child linking: cancel_source(parent_token) builds a source
//     the parent's cancel() propagates into, so cancelling a sweep cancels
//     its per-cell tasks, and cancelling those abandons the chunked
//     characterization walk within one poll grain;
//   * cancellation unwinds as util::operation_cancelled. Catching it means
//     "abandoned on request": caches drop the half-built entry (waiters
//     retry or take over -- never parked), stores publish nothing, and a
//     queued pool task is dropped without starting.

#pragma once

#include "util/cancellation.h"

namespace synts::runtime {

using util::cancel_source;
using util::cancel_token;
using util::operation_cancelled;

} // namespace synts::runtime
