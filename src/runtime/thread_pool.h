// thread_pool.h -- work-stealing thread pool for the experiment runtime.
//
// The sweep workload is a bag of coarse, independent, CPU-bound tasks
// (characterize a benchmark, run a policy ladder), so the pool favors
// simplicity over lock-free exotica: one deque per worker, owner pops LIFO
// from the front, idle workers steal FIFO from the back of a victim chosen
// round-robin. External submissions are striped across the queues.
// `submit` returns a std::future carrying the task's value or exception;
// `parallel_for` blocks, and while blocked executes its OWN blocks
// (self-claiming from a shared counter, never unrelated pool tasks), so
// nested parallelism cannot deadlock even on a single-worker pool and a
// caller mid-construction of a cache entry never lifts a task that would
// block on that same entry. The shape follows the speculative-thread worker
// loop of adevs' SpecThread (see SNIPPETS.md): park on a condition
// variable, wake, drain, repark.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/cancel.h"
#include "util/parallel.h"
#include "util/thread_safety.h"

namespace synts::obs {
class counter;
class gauge;
class latency_histogram;
} // namespace synts::obs

namespace synts::runtime {

/// Move-only type-erased nullary task. std::function requires copyable
/// callables, which std::packaged_task is not; this is the minimal
/// replacement (std::move_only_function is C++23).
class unique_task {
public:
    unique_task() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, unique_task>)
    unique_task(F&& f) // NOLINT(google-explicit-constructor)
        : impl_(std::make_unique<model<std::decay_t<F>>>(std::forward<F>(f)))
    {
    }

    /// Runs the task. Requires a non-empty task.
    void operator()() { impl_->call(); }

    /// True when a callable is held.
    [[nodiscard]] explicit operator bool() const noexcept { return impl_ != nullptr; }

private:
    struct callable_base {
        virtual ~callable_base() = default;
        virtual void call() = 0;
    };
    template <typename F>
    struct model final : callable_base {
        explicit model(F f) : fn(std::move(f)) {}
        void call() override { fn(); }
        F fn;
    };
    std::unique_ptr<callable_base> impl_;
};

/// Thrown by submit() from a NON-worker thread once the pool's destructor
/// has begun draining. Before the shutdown gate this race was
/// documented-unsafe (a task could be enqueued after the workers decided
/// no work was pending and be stranded, or touch freed queues); now an
/// external submission either lands before the drain flag -- and is then
/// guaranteed to execute before join -- or is rejected with this
/// exception, deterministically. parallel_for() never throws it: a racing
/// caller just executes every block itself. Pinned by
/// tests/test_runtime_cancel.cpp.
class pool_stopped : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Handle of one cancellable task (thread_pool::submit's token overload).
/// Carries the task's future plus a per-task cancel_source linked under
/// the token given at submit time: cancelling the parent cancels the task,
/// and try_cancel() here cancels just this one. A task cancelled while
/// still QUEUED is dropped without starting (its future throws
/// operation_cancelled); a RUNNING task observes token() cooperatively at
/// its own poll points and unwinds the same way.
template <typename T>
class cancellable_task {
public:
    cancellable_task() = default;

    /// The task's result channel (value / exception / operation_cancelled).
    [[nodiscard]] std::future<T>& future() noexcept { return future_; }

    /// Blocks for the result; rethrows the task's exception
    /// (operation_cancelled when it was dropped or abandoned).
    T get() { return future_.get(); }

    [[nodiscard]] bool valid() const noexcept { return future_.valid(); }

    /// The token the task observes (per-task child of the submit token).
    [[nodiscard]] cancel_token token() const noexcept { return source_.token(); }

    /// Requests cancellation of this task alone. True when this call
    /// flipped the flag. The task still settles (drop or cooperative
    /// unwind) -- always harvest future() afterwards.
    bool try_cancel(std::string_view reason = "cancelled") noexcept
    {
        return source_.cancel(reason);
    }

    [[nodiscard]] bool cancel_requested() const noexcept { return source_.cancelled(); }

private:
    friend class thread_pool;
    std::future<T> future_;
    cancel_source source_;
};

/// Work-stealing pool of `worker_count` threads.
class thread_pool {
public:
    /// `worker_count` 0 picks std::thread::hardware_concurrency() (min 1).
    /// Exception-safe: if spawning the i-th worker thread fails, the
    /// already-started workers are stopped and joined before the exception
    /// propagates (no std::terminate from unjoined std::threads).
    explicit thread_pool(std::size_t worker_count = 0);

    /// Drains every queued task, then joins the workers.
    ///
    /// Shutdown contract (pinned by tests/test_runtime_pool.cpp, TSan-run
    /// in CI):
    ///   * every task queued before destruction begins is executed, and a
    ///     task that submit()s a follow-up while the destructor drains is
    ///     fine -- the follow-up lands on the submitting worker's own queue
    ///     and workers only exit once no task is pending, so it too runs
    ///     before join. Chains of such submissions all drain.
    ///   * submitting from any NON-worker thread concurrently with (or
    ///     after) destruction used to be documented-unsafe. It is now
    ///     deterministic: enqueue() checks the drain flag under the same
    ///     lock the destructor sets it, so a racing external submit either
    ///     lands before the flag (and its task runs before join) or throws
    ///     pool_stopped having enqueued nothing. Destroying the pool while
    ///     an external submitter still holds a reference remains a
    ///     lifetime bug -- the gate turns the outcome from UB into a
    ///     thrown exception, it does not make the dangling use correct.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Number of worker threads.
    [[nodiscard]] std::size_t worker_count() const noexcept { return queues_.size(); }

    /// Schedules `f(args...)`; the future carries the result or exception.
    /// Throws pool_stopped once the destructor has begun draining.
    template <typename F, typename... Args>
        requires(!std::is_same_v<std::decay_t<F>, cancel_token>)
    auto submit(F&& f, Args&&... args)
        -> std::future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>>
    {
        using result_type = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
        std::packaged_task<result_type()> task(
            [fn = std::forward<F>(f),
             tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
                return std::apply(std::move(fn), std::move(tup));
            });
        std::future<result_type> future = task.get_future();
        enqueue(unique_task(std::move(task)));
        return future;
    }

    /// Result type of a cancellable task body: callables may take the
    /// per-task token (`f(cancel_token)`) for cooperative polling, or
    /// nothing (`f()`) when the work is short enough to drop-or-finish.
    template <typename F>
    using cancellable_result_t = typename std::conditional_t<
        std::is_invocable_v<std::decay_t<F>, cancel_token>,
        std::invoke_result<std::decay_t<F>, cancel_token>,
        std::invoke_result<std::decay_t<F>>>::type;

    /// Interruptible-task overload: schedules `f` under a fresh per-task
    /// cancel_source linked below `token` (so cancelling the caller's
    /// source cancels this task, and the handle's try_cancel() cancels
    /// just it). A task whose token is already cancelled when a worker
    /// dequeues it is DROPPED without starting: its future settles with
    /// operation_cancelled and pool.tasks_dropped is bumped. A running
    /// task observes the token at its own poll points. Throws pool_stopped
    /// once the destructor has begun draining.
    template <typename F>
        requires(std::is_invocable_v<std::decay_t<F>, cancel_token> ||
                 std::is_invocable_v<std::decay_t<F>>)
    auto submit(const cancel_token& token, F&& f) -> cancellable_task<cancellable_result_t<F>>
    {
        using result_type = cancellable_result_t<F>;
        cancellable_task<result_type> handle;
        handle.source_ = cancel_source(token);
        const cancel_token task_token = handle.source_.token();
        auto promise = std::make_shared<std::promise<result_type>>();
        handle.future_ = promise->get_future();
        enqueue(unique_task(
            [this, fn = std::forward<F>(f), task_token, promise]() mutable {
                if (task_token.cancelled()) {
                    note_dropped_task();
                    promise->set_exception(std::make_exception_ptr(operation_cancelled(
                        "task dropped before start: " + task_token.reason())));
                    return;
                }
                try {
                    const auto invoke = [&]() -> decltype(auto) {
                        if constexpr (std::is_invocable_v<std::decay_t<F>, cancel_token>) {
                            return fn(task_token);
                        } else {
                            return fn();
                        }
                    };
                    if constexpr (std::is_void_v<result_type>) {
                        invoke();
                        promise->set_value();
                    } else {
                        promise->set_value(invoke());
                    }
                } catch (...) {
                    promise->set_exception(std::current_exception());
                }
            }));
        return handle;
    }

    /// Runs `body(i)` for every i in [begin, end), in parallel, in blocks of
    /// `grain` indices (0 = auto). Blocks until every index completed; the
    /// calling thread claims and executes this loop's blocks while it waits
    /// (never unrelated pool tasks -- see the .cpp for why that matters),
    /// so completion never depends on a free worker. Rethrows the first
    /// failing block's exception (by index order) after all blocks settle.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body,
                      std::size_t grain = 0);

    /// Runs one queued task on the calling thread, if any is available.
    /// Returns false when every queue is empty. This is the helping
    /// primitive: anything blocked on a future of this pool should loop
    /// run_one_task() instead of sleeping, so a caller inside a pool worker
    /// can never starve the tasks it is waiting for (parallel_for and
    /// sweep_scheduler::run both do).
    bool run_one_task();

    /// Tasks stolen from another worker's queue since construction
    /// (observability for the scaling bench; not part of any contract).
    [[nodiscard]] std::uint64_t steal_count() const noexcept
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /// Tasks fully executed since construction.
    [[nodiscard]] std::uint64_t executed_count() const noexcept
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /// Cancellable tasks dropped at dequeue (token already cancelled when
    /// a worker picked them up -- the user callable never ran).
    [[nodiscard]] std::uint64_t dropped_count() const noexcept
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /// Tasks queued but not yet started. An instantaneous snapshot -- the
    /// speculator uses it as its idleness signal (pending == 0 means no
    /// demand work is waiting for a worker), not as a synchronization
    /// primitive.
    [[nodiscard]] std::size_t pending_count() const noexcept
    {
        return pending_.load(std::memory_order_acquire);
    }

private:
    struct worker_queue {
        util::annotated_mutex mutex{util::lock_rank::pool_queue,
                                    "thread_pool.worker_queue"};
        std::deque<unique_task> tasks SYNTS_GUARDED_BY(mutex);
    };

    void enqueue(unique_task task);
    /// Bumps the dropped-at-dequeue counters (out of line: the obs types
    /// are only forward-declared here).
    void note_dropped_task() noexcept;
    /// Runs `task`, bumping the executed counters and -- only when
    /// telemetry is enabled -- timing it into the pool.task_ns histogram.
    void execute_task(unique_task& task);
    void worker_loop(std::size_t index);
    /// Pops from own queue front, else steals from a victim's back.
    bool acquire_task(std::size_t index, unique_task& out);
    /// Non-worker variant used by helping waiters: steal from anyone.
    bool steal_any(unique_task& out);

    std::vector<std::unique_ptr<worker_queue>> queues_;
    std::vector<std::thread> workers_;

    /// The sleep/shutdown gate. Guards no non-atomic data of its own (the
    /// flags it orders are atomics); it exists so a worker's recheck-then-
    /// park and enqueue's publish-then-notify are mutually exclusive, and
    /// so the drain flag flips under the same lock enqueue checks it.
    /// Ranked below pool_queue: enqueue pushes while holding the gate.
    util::annotated_mutex sleep_mutex_{util::lock_rank::pool_sleep,
                                       "thread_pool.sleep"};
    std::condition_variable_any wake_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> dropped_{0};

    // Registry instruments (pool.* taxonomy), resolved once at
    // construction. The per-instance atomics above stay authoritative for
    // steal_count()/executed_count(); the registry aggregates across every
    // pool in the process for --metrics.
    obs::counter* obs_executed_;
    obs::counter* obs_steals_;
    obs::counter* obs_enqueued_;
    obs::counter* obs_dropped_;
    obs::gauge* obs_queue_depth_;
    obs::latency_histogram* obs_task_ns_;
};

/// Adapts `pool` to the layer-neutral util::parallel_for_fn hook the
/// characterization pipeline (workload generation, profiling, per-interval
/// timing simulation) consumes. The returned function captures `pool` by
/// reference and must not outlive it; because parallel_for is self-claiming
/// (the caller completes the fan-out alone if no worker is free, and never
/// executes unrelated pool tasks while blocked), the hook is safe to invoke
/// from inside a pool task -- including mid-construction of a cache entry.
[[nodiscard]] util::parallel_for_fn make_parallel_for(thread_pool& pool);

} // namespace synts::runtime
