// speculator.h -- idle-worker speculative cell execution.
//
// The paper's premise at the runtime's own scale: run ahead of confirmed
// demand and recover cheaply when wrong. When the pool's workers are idle,
// the speculator predicts the cells a sweep is likely to ask for next --
// the next rung of a scenario ladder (a workload whose name ends in a rung
// number), and the sibling pipe stages of the workload just requested,
// which share its program artifacts -- and computes them under
// low-priority cancellable tokens, publishing results into the SAME keyed
// experiment_cache tiers demand would fill. The moment real demand needs a
// worker, in-flight speculation is cancelled (queued speculative tasks are
// dropped without starting; running ones unwind within one
// characterization interval). The shape is Prophet's speculative-thread
// model (PAPERS.md) on the adevs interrupt discipline (SNIPPETS.md
// snippet 1): spawn likely-next work, validate against demand, squash on
// mis-speculation.
//
// Correctness contract:
//
//   * speculation NEVER changes what a key maps to. It calls the same
//     experiment_cache::get_or_create a demand lookup would, so a
//     speculative entry is bit-identical to a demanded one and sweep JSON
//     is byte-identical with speculation on or off;
//   * only COMPLETE artifacts are ever published: a cancelled speculative
//     construction unwinds out of the cache factory, which drops the
//     half-built entry (waiters retry or take over) and publishes nothing
//     to memory or disk -- a torn cell cannot exist;
//   * a demand lookup that lands on an in-flight speculative key JOINS the
//     construction as a cache waiter (counted as a speculative hit) -- the
//     speculation is then doing demand-critical work and is not preempted.
//
// Measurability (obs registry, spec.* taxonomy): spec.launched /
// spec.hits / spec.cancelled counters and spec.wasted_ns (nanoseconds
// spent in speculative constructions that did not complete).

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <unordered_map>
#include <unordered_set>

#include "core/experiment.h"
#include "runtime/cancel.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"

namespace synts::obs {
class counter;
} // namespace synts::obs

namespace synts::runtime {

/// Idle-worker speculation engine. One instance serves one pool + cache
/// pairing; sweep_options::speculate (or any direct caller) reports demand
/// through observe(). Thread-safe: observe() may be called concurrently
/// from every sweep worker. Both the pool and the cache must outlive the
/// speculator.
class speculator {
public:
    /// `max_inflight` bounds concurrent speculative constructions (>= 1;
    /// 0 is clamped to 1). Keep it below the worker count: speculation is
    /// the idle-cycle scavenger, never the load.
    speculator(thread_pool& pool, experiment_cache& cache,
               std::size_t max_inflight = 1);

    /// Cancels outstanding speculation and drains it before returning.
    ~speculator();

    speculator(const speculator&) = delete;
    speculator& operator=(const speculator&) = delete;

    /// Reports one demand lookup of (workload, stage, config) -- call
    /// BEFORE the demand's own cache get. Effects, in order:
    ///
    ///   * a previously completed speculation of this key records a hit
    ///     (once per speculated key);
    ///   * an in-flight speculation of this key records a hit and is left
    ///     running -- the demand joins it as a cache waiter;
    ///   * otherwise, if the key is not already cached, every in-flight
    ///     speculation is cancelled: demand needs the workers now;
    ///   * finally, predictions seeded by this key (next ladder rung,
    ///     sibling stages) are launched -- but only while the pool has no
    ///     queued demand and the in-flight budget has room.
    void observe(const workload::workload_key& workload, circuit::pipe_stage stage,
                 const core::experiment_config& config);

    /// Cancels every in-flight speculation (reason "preempted by demand"
    /// unless overridden). Queued speculative tasks are dropped without
    /// starting. Does not block; the cancelled tasks settle asynchronously.
    void cancel_inflight(std::string_view reason = "preempted by demand");

    /// Blocks until every launched speculative task settled (completed,
    /// dropped, or unwound). Benches call this to make hit accounting
    /// deterministic; the destructor calls it after cancelling.
    void drain();

    /// Speculative constructions launched.
    [[nodiscard]] std::uint64_t launched() const noexcept
    {
        return launched_.load(std::memory_order_relaxed);
    }
    /// Demand lookups served by (completed or joined) speculation.
    [[nodiscard]] std::uint64_t hits() const noexcept
    {
        return hits_.load(std::memory_order_relaxed);
    }
    /// Speculative constructions cancelled before completing.
    [[nodiscard]] std::uint64_t cancelled() const noexcept
    {
        return cancelled_.load(std::memory_order_relaxed);
    }
    /// Nanoseconds spent in speculative constructions that did not
    /// complete (the squashed-work bill; hits are the other side).
    [[nodiscard]] std::uint64_t wasted_ns() const noexcept
    {
        return wasted_ns_.load(std::memory_order_relaxed);
    }

private:
    struct key_hash {
        std::size_t operator()(const experiment_key& key) const noexcept
        {
            return static_cast<std::size_t>(key.digest());
        }
    };
    struct inflight_entry {
        cancellable_task<void> handle;
        std::shared_future<void> done;
        std::uint64_t start_ns = 0;
    };

    /// Harvests settled in-flight entries: counts cancellations/waste and
    /// removes them. Caller holds mutex_.
    void reap_locked() SYNTS_REQUIRES(mutex_);
    /// Launches predictions seeded by the given demand key while the idle
    /// gate and budget allow. Caller holds mutex_.
    void launch_predictions_locked(const workload::workload_key& workload,
                                   circuit::pipe_stage stage,
                                   const core::experiment_config& config)
        SYNTS_REQUIRES(mutex_);
    /// Starts one speculative construction of `key`. Caller holds mutex_.
    void launch_locked(const experiment_key& key,
                       const core::experiment_config& config) SYNTS_REQUIRES(mutex_);

    thread_pool* pool_;
    experiment_cache* cache_;
    std::size_t max_inflight_;

    /// The LOWEST rank in the table: launch paths call into the registry,
    /// the cache's shard probes, cancel sources, and pool submit while
    /// holding it, so every other mutex must rank above.
    util::annotated_mutex mutex_{util::lock_rank::speculator, "speculator"};
    /// Root source every speculative task's token is linked under; the
    /// destructor's cancel fans out to all of them. Internally synchronized
    /// (its cancel_state carries the cancel_tree lock), so not guarded.
    cancel_source root_;
    bool stopped_ SYNTS_GUARDED_BY(mutex_) = false;
    std::unordered_map<experiment_key, inflight_entry, key_hash> inflight_
        SYNTS_GUARDED_BY(mutex_);
    /// Keys whose speculative construction completed and has not yet been
    /// claimed by a demand lookup (each key yields at most one hit).
    std::unordered_set<experiment_key, key_hash> published_ SYNTS_GUARDED_BY(mutex_);

    std::atomic<std::uint64_t> launched_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> wasted_ns_{0};

    obs::counter* obs_launched_;
    obs::counter* obs_hits_;
    obs::counter* obs_cancelled_;
    obs::counter* obs_wasted_ns_;
};

} // namespace synts::runtime
