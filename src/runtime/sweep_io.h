// sweep_io.h -- serialization and parsing for sweep specs and results.
//
// The synts_runner CLI and the ported benches share these: CSV (via
// util/csv) for re-plotting, JSON for downstream tooling, text tables (via
// util/table) for the console, and forgiving name->enum parsing (matching
// is case-insensitive and ignores '-'/'_', so "lu-contig", "LU_CONTIG" and
// "Lu-Contig" all resolve).

#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/sweep.h"

namespace synts::runtime {

/// One row per (cell, theta multiplier): the Pareto fronts.
/// Columns: benchmark, stage, policy, theta_multiplier, theta, energy_norm,
/// time_norm.
void write_pareto_csv(const sweep_result& result, std::ostream& out);

/// One row per cell: the equal-weight operating points.
/// Columns: benchmark, stage, policy, theta_eq, energy, time_ps, edp.
void write_summary_csv(const sweep_result& result, std::ostream& out);

/// Provenance stamp for sweep JSON documents (the `meta` block). Volatile
/// by design -- it records WHEN/WHERE a document was produced, never WHAT
/// it contains, so consumers comparing sweeps for determinism must exclude
/// it (it is emitted as a single line exactly so `grep -v '"meta"'` drops
/// it before a byte compare).
struct sweep_json_meta {
    int schema_version = 1;
    std::string generated_utc;     ///< ISO-8601 UTC, e.g. 2026-08-07T12:34:56Z
    std::string hostname;
    unsigned hardware_concurrency = 0;
    std::string git_describe;      ///< empty = field omitted
};

/// Stamps now/hostname/hardware_concurrency; git_describe comes from the
/// SYNTS_GIT_DESCRIBE environment variable when set (the scripts export
/// `git describe` there -- the library itself never shells out).
[[nodiscard]] sweep_json_meta collect_sweep_json_meta();

/// The whole result (spec echo incl. the checkpoint keying digests, cells,
/// pareto points) as one JSON document. Without `meta` the document is
/// deliberately DETERMINISTIC: it contains no wall-clock or cache-traffic
/// fields, so two runs of the same spec -- cold, warm via the artifact
/// store, or resumed -- emit byte-identical documents (the CI warm-store
/// job diffs them). With `meta`, ONE extra line (`"meta": {...}`) carries
/// the volatile provenance stamp; byte-identity consumers strip that line.
/// Volatile run stats live in render_cache_stats.
void write_sweep_json(const sweep_result& result, std::ostream& out,
                      const sweep_json_meta* meta = nullptr);

/// Console table: one block per (benchmark, stage) pair, EDP and the
/// equal-weight operating point per policy.
[[nodiscard]] std::string render_sweep_table(const sweep_result& result);

/// Output shape for render_cache_stats.
enum class cache_stats_format { table, csv, json };

/// Hit/miss counts of every cache tier attributable to `result` -- program
/// artifacts, stage experiments, the persistent disk tier, and sweep-cell
/// checkpoints (hits = cells restored, misses = cells computed) -- plus
/// the number of program-tier computes (trace generations + profiler
/// runs), as a console table, CSV rows, or a JSON object (the runner's
/// --cache-stats flag). Disk and checkpoint rows read 0 when no store is
/// attached.
[[nodiscard]] std::string render_cache_stats(const sweep_result& result,
                                             cache_stats_format format);

/// Registry-sourced twin of render_cache_stats: the same rows, same
/// formats, byte-identical layout -- but read from the process-wide
/// metrics registry (cache.tier<N>.*, sweep.cells_*) instead of a
/// sweep_result's attribution sink. This is what the runner's
/// --cache-stats prints: the registry is the single source of truth for
/// process-global counts, while the sink variant stays for callers
/// attributing traffic to one sweep among several.
[[nodiscard]] std::string render_cache_stats_from_metrics(cache_stats_format format);

/// Reconstructed state of one shard of a recorded sweep (collect_store_status).
struct shard_status {
    std::uint32_t index = 0;
    std::uint64_t done = 0;
    std::uint64_t owned = 0;
    bool complete = false; ///< completion manifest seen (wins over progress)
    bool reported = false; ///< any frame (progress or completion) seen
    /// Age of the shard's live shard_progress frame (file mtime -- the
    /// instant of its last atomic republish); nullopt when the shard never
    /// published one or the file vanished. --watch's staleness signal.
    std::optional<std::uint64_t> frame_age_ns;
};

/// Reconstructed state of one sweep recorded in a store's manifest bucket.
struct sweep_status {
    std::uint64_t spec_digest = 0;
    std::uint32_t shard_count = 1;
    std::uint64_t total_cells = 0; ///< from the layout frame; 0 = none seen
    bool layout = false;
    std::vector<shard_status> shards; ///< size shard_count, index order
    std::uint64_t total_done = 0;
    std::uint64_t total_owned = 0; ///< layout-corrected (never undercounts)

    /// Every shard attested complete via its completion manifest.
    [[nodiscard]] bool all_complete() const
    {
        for (const shard_status& s : shards) {
            if (!s.complete) {
                return false;
            }
        }
        return !shards.empty();
    }
};

/// Scans `store`'s manifest bucket into structured per-sweep/per-shard
/// state: completion manifests win over progress frames (a complete shard
/// can never regress behind a stale count), undecodable frames are skipped,
/// and the layout frame's total cell count corrects the owned total for
/// shards that have not reported. Deterministic: sweeps ordered by spec
/// digest, shards by index. Both --status and --watch read through this.
[[nodiscard]] std::vector<sweep_status>
collect_store_status(const storage::artifact_store& store);

/// Fleet view of the sweeps recorded in a store's manifest bucket (the
/// runner's --status flag): per sweep, one line per shard with its
/// cells-stored-over-owned progress (completion manifests mark a shard
/// "complete"; live shard_progress frames supply mid-run counts), plus a
/// total line. Deterministic: sweeps ordered by spec digest, shards by
/// index.
[[nodiscard]] std::string render_store_status(const storage::artifact_store& store);

/// Parses "table" / "csv" / "json" (same forgiving matching as the enum
/// parsers below); std::nullopt on an unknown token.
[[nodiscard]] std::optional<cache_stats_format>
parse_cache_stats_format(std::string_view token);

/// Splits a comma-separated list into tokens (empty tokens preserved, so
/// callers can reject "a,,b" or a trailing comma explicitly).
[[nodiscard]] std::vector<std::string_view> split_csv(std::string_view csv);

/// Name parsing. Each returns std::nullopt on an unknown token.
[[nodiscard]] std::optional<workload::benchmark_id> parse_benchmark(std::string_view token);
[[nodiscard]] std::optional<circuit::pipe_stage> parse_stage(std::string_view token);
[[nodiscard]] std::optional<core::policy_kind> parse_policy(std::string_view token);

/// Registry-name parsing (same forgiving matching): resolves `token`
/// against `registry`'s registered workload names. std::nullopt when no
/// registered name matches.
[[nodiscard]] std::optional<workload::workload_key>
parse_workload(const workload::workload_registry& registry, std::string_view token);

/// List parsing for CLI flags: comma-separated tokens, or the keywords
/// "all" (every value) and -- for benchmarks -- "reported" (the paper's
/// seven). Throws std::invalid_argument naming the offending token.
[[nodiscard]] std::vector<workload::benchmark_id> parse_benchmark_list(std::string_view csv);
[[nodiscard]] std::vector<circuit::pipe_stage> parse_stage_list(std::string_view csv);
[[nodiscard]] std::vector<core::policy_kind> parse_policy_list(std::string_view csv);

/// Workload-list parsing over a registry (what the runner CLI uses):
/// comma-separated registered names, or the keywords "all" (every
/// registered workload, registration order), "splash2" (the built-in ten)
/// and "reported" (the paper's seven). Throws std::invalid_argument naming
/// the offending token.
[[nodiscard]] std::vector<workload::workload_key>
parse_workload_list(const workload::workload_registry& registry, std::string_view csv);

} // namespace synts::runtime
