#include "runtime/fleet_watch.h"

#include <cstdio>
#include <sstream>

namespace synts::runtime {

fleet_watch::fleet_watch(const storage::artifact_store& store, watch_config config)
    : store_(&store), config_(config)
{
}

watch_report fleet_watch::tick(std::uint64_t now_ns)
{
    watch_report report;
    const std::vector<sweep_status> sweeps = collect_store_status(*store_);
    report.sweeps.reserve(sweeps.size());
    bool all_complete = !sweeps.empty();

    for (const sweep_status& sweep : sweeps) {
        watch_sweep view;
        view.spec_digest = sweep.spec_digest;
        view.shard_count = sweep.shard_count;
        view.total_cells = sweep.total_cells;
        view.layout = sweep.layout;
        view.total_done = sweep.total_done;
        view.total_owned = sweep.total_owned;
        view.shards.reserve(sweep.shards.size());

        double rate_sum = 0.0;
        bool any_rate = false;
        bool all_finished = !sweep.shards.empty();
        for (const shard_status& status : sweep.shards) {
            watch_shard row;
            row.status = status;

            // A shard with every owned cell durable has finished its work
            // even when its completion manifest is absent (unsharded
            // checkpoint runs publish progress frames only): done work
            // cannot stall, and the watch must not wait on an attestation
            // that will never come.
            const bool finished =
                status.complete || (status.reported && status.done >= status.owned);
            all_finished = all_finished && finished;

            const auto key = std::make_pair(sweep.spec_digest, status.index);
            if (status.reported && !finished) {
                const auto prev = last_.find(key);
                if (prev != last_.end() && now_ns > prev->second.t_ns) {
                    const double dt_s =
                        static_cast<double>(now_ns - prev->second.t_ns) * 1e-9;
                    // done is monotone per shard (max-merged from frames);
                    // a store wipe between ticks would read as rate 0.
                    const double delta = status.done >= prev->second.done
                        ? static_cast<double>(status.done - prev->second.done)
                        : 0.0;
                    row.cells_per_s = delta / dt_s;
                    any_rate = true;
                    rate_sum += *row.cells_per_s;
                    if (*row.cells_per_s > 0.0 && status.owned > status.done) {
                        row.eta_s = static_cast<double>(status.owned - status.done) /
                                    *row.cells_per_s;
                    }
                }
                row.stalled = status.frame_age_ns.has_value() &&
                              *status.frame_age_ns > config_.stall_ns;
            }
            last_[key] = observation{now_ns, status.done};

            view.any_stalled = view.any_stalled || row.stalled;
            view.shards.push_back(std::move(row));
        }
        view.complete = all_finished;
        if (any_rate) {
            view.cells_per_s = rate_sum;
        }
        // The sweep finishes when its slowest shard does.
        for (const watch_shard& row : view.shards) {
            if (row.eta_s && (!view.eta_s || *row.eta_s > *view.eta_s)) {
                view.eta_s = row.eta_s;
            }
        }

        all_complete = all_complete && view.complete;
        report.any_stalled = report.any_stalled || view.any_stalled;
        report.sweeps.push_back(std::move(view));
    }
    report.all_complete = all_complete;
    return report;
}

namespace {

std::string fixed1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
}

std::string percent_token(std::uint64_t done, std::uint64_t owned)
{
    return fixed1(owned == 0 ? 100.0
                             : 100.0 * static_cast<double>(done) /
                                   static_cast<double>(owned));
}

std::string eta_token(double eta_s)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", eta_s < 0.5 ? 1.0 : eta_s);
    return std::string(buf);
}

} // namespace

std::string render_watch_report(const watch_report& report)
{
    std::ostringstream out;
    if (report.sweeps.empty()) {
        out << "no sweeps recorded\n";
        return out.str();
    }
    for (const watch_sweep& sweep : report.sweeps) {
        out << "sweep " << sweep.spec_digest << ": " << sweep.shard_count
            << (sweep.shard_count == 1 ? " shard" : " shards");
        if (sweep.layout) {
            out << ", " << sweep.total_cells << " cells";
        }
        out << "\n";
        for (const watch_shard& row : sweep.shards) {
            const shard_status& s = row.status;
            out << "  shard " << s.index << "/" << sweep.shard_count << ": ";
            if (!s.reported) {
                out << "no progress recorded\n";
                continue;
            }
            out << s.done << "/" << s.owned << " ("
                << percent_token(s.done, s.owned) << "%)";
            if (s.complete) {
                out << " complete";
            }
            if (row.cells_per_s) {
                out << ' ' << fixed1(*row.cells_per_s) << " cells/s";
            }
            if (row.eta_s) {
                out << " eta " << eta_token(*row.eta_s) << "s";
            }
            if (row.stalled) {
                out << " STALLED";
                if (s.frame_age_ns) {
                    out << " (age " << fixed1(static_cast<double>(*s.frame_age_ns) * 1e-9)
                        << "s)";
                }
            }
            out << "\n";
        }
        out << "  total: " << sweep.total_done << "/" << sweep.total_owned << " ("
            << percent_token(sweep.total_done, sweep.total_owned) << "%)";
        if (sweep.cells_per_s) {
            out << ' ' << fixed1(*sweep.cells_per_s) << " cells/s";
        }
        if (sweep.eta_s) {
            out << " eta " << eta_token(*sweep.eta_s) << "s";
        }
        out << "\n";
    }
    return out.str();
}

} // namespace synts::runtime
