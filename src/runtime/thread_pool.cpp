#include "runtime/thread_pool.h"

#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace synts::runtime {

namespace {

/// Index of the pool worker running on this thread, or npos outside a pool.
/// Used so tasks submitted from inside a worker land on that worker's own
/// queue (LIFO locality) instead of round-robin.
constexpr std::size_t npos = static_cast<std::size_t>(-1);
thread_local std::size_t tls_worker_index = npos;
thread_local const thread_pool* tls_worker_pool = nullptr;

} // namespace

thread_pool::thread_pool(std::size_t worker_count)
    : obs_executed_(&obs::metrics_registry::global().counter_at("pool.tasks_executed")),
      obs_steals_(&obs::metrics_registry::global().counter_at("pool.steals")),
      obs_enqueued_(&obs::metrics_registry::global().counter_at("pool.tasks_enqueued")),
      obs_dropped_(&obs::metrics_registry::global().counter_at("pool.tasks_dropped")),
      obs_queue_depth_(&obs::metrics_registry::global().gauge_at("pool.queue_depth")),
      obs_task_ns_(&obs::metrics_registry::global().histogram_at("pool.task_ns"))
{
    if (worker_count == 0) {
        worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    queues_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
        queues_.push_back(std::make_unique<worker_queue>());
    }
    workers_.reserve(worker_count);
    try {
        for (std::size_t i = 0; i < worker_count; ++i) {
            workers_.emplace_back([this, i] { worker_loop(i); });
        }
    } catch (...) {
        // Thread creation can fail (resource exhaustion). Already-started
        // workers MUST be stopped and joined before the exception leaves,
        // or their std::thread destructors call std::terminate.
        {
            const util::mutex_lock lock(sleep_mutex_);
            stopping_.store(true, std::memory_order_release);
        }
        wake_.notify_all();
        for (std::thread& worker : workers_) {
            worker.join();
        }
        throw;
    }
}

thread_pool::~thread_pool()
{
    {
        const util::mutex_lock lock(sleep_mutex_);
        stopping_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void thread_pool::enqueue(unique_task task)
{
    const bool from_worker = tls_worker_pool == this;
    std::size_t target = from_worker ? tls_worker_index : npos;
    if (target == npos) {
        target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    }
    {
        // sleep_mutex_ is held across the whole {gate, push, increment}
        // sequence, for two reasons:
        //
        //   * the increment must be ordered against the workers' predicate
        //     check under sleep_mutex_, or a notify can land in the window
        //     between a worker seeing pending_ == 0 and blocking -- a lost
        //     wakeup that strands a queued task forever;
        //   * the destructor sets stopping_ under this same mutex, so an
        //     EXTERNAL submit either fully lands before the drain flag (and
        //     workers cannot exit while pending_ > 0, so it runs before
        //     join) or observes the flag here and throws pool_stopped with
        //     nothing enqueued. Without the gate this race was UB.
        //
        // Worker self-submissions stay exempt: the drain contract promises
        // that follow-ups submitted by in-flight tasks run before join.
        // Lock order sleep_mutex_ -> queue mutex is acyclic: workers take
        // the queue mutexes and sleep_mutex_ separately, never nested the
        // other way.
        const util::mutex_lock lock(sleep_mutex_);
        if (!from_worker && stopping_.load(std::memory_order_acquire)) {
            throw pool_stopped("thread_pool: submit after shutdown began");
        }
        {
            worker_queue& queue = *queues_[target];
            const util::mutex_lock queue_lock(queue.mutex);
            queue.tasks.push_front(std::move(task));
        }
        obs_queue_depth_->set(static_cast<std::int64_t>(
            pending_.fetch_add(1, std::memory_order_release) + 1));
    }
    obs_enqueued_->add(1);
    wake_.notify_one();
}

void thread_pool::note_dropped_task() noexcept
{
    dropped_.fetch_add(1, std::memory_order_relaxed);
    obs_dropped_->add(1);
}

void thread_pool::execute_task(unique_task& task)
{
    {
        const obs::scoped_timer timer(*obs_task_ns_);
        task();
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    obs_executed_->add(1);
}

bool thread_pool::run_one_task()
{
    unique_task task;
    if (!steal_any(task)) {
        return false;
    }
    obs_queue_depth_->set(static_cast<std::int64_t>(
        pending_.fetch_sub(1, std::memory_order_acq_rel) - 1));
    execute_task(task);
    return true;
}

bool thread_pool::acquire_task(std::size_t index, unique_task& out)
{
    {
        worker_queue& own = *queues_[index];
        const util::mutex_lock lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    for (std::size_t hop = 1; hop < queues_.size(); ++hop) {
        worker_queue& victim = *queues_[(index + hop) % queues_.size()];
        const util::mutex_lock lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            steals_.fetch_add(1, std::memory_order_relaxed);
            obs_steals_->add(1);
            return true;
        }
    }
    return false;
}

bool thread_pool::steal_any(unique_task& out)
{
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        worker_queue& victim = *queues_[i];
        const util::mutex_lock lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void thread_pool::worker_loop(std::size_t index)
{
    tls_worker_index = index;
    tls_worker_pool = this;
    for (;;) {
        unique_task task;
        if (acquire_task(index, task)) {
            obs_queue_depth_->set(static_cast<std::int64_t>(
                pending_.fetch_sub(1, std::memory_order_acq_rel) - 1));
            execute_task(task);
            continue;
        }
        util::cv_mutex_lock lock(sleep_mutex_);
        // The predicate reads only atomics (no guarded data), so the
        // predicate overload stays analysis-clean here.
        wake_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) > 0 ||
                   stopping_.load(std::memory_order_acquire);
        });
        if (stopping_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& body,
                               std::size_t grain)
{
    if (begin >= end) {
        return;
    }
    const std::size_t count = end - begin;
    if (grain == 0) {
        // Aim for a few blocks per worker so claiming can rebalance.
        grain = std::max<std::size_t>(1, count / (4 * worker_count()));
    }
    const std::size_t block_count = (count + grain - 1) / grain;

    // Self-claiming execution: the caller and any recruited workers pull
    // block indices from a shared counter and run ONLY this loop's blocks --
    // never unrelated pool tasks. Two properties follow:
    //
    //   * progress never depends on the pool: a fully-busy (or one-worker)
    //     pool just degrades to the caller running every block itself, so
    //     nested parallelism cannot deadlock;
    //   * the caller executes no foreign task while blocked. The earlier
    //     help-with-anything scheme could lift a task that blocks on a
    //     shared-future the caller itself was mid-constructing (the
    //     experiment cache's in-flight entries) -- a self-wait cycle. A
    //     sweep worker characterizing inside the cache must therefore never
    //     pick up another sweep pair while it waits.
    struct control {
        std::atomic<std::size_t> next_block{0};
        std::atomic<std::size_t> remaining;
        std::vector<std::exception_ptr> errors; ///< [block]
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        std::size_t grain = 1;
        std::size_t block_count = 0;
    };
    const auto ctl = std::make_shared<control>();
    ctl->remaining.store(block_count, std::memory_order_relaxed);
    ctl->errors.resize(block_count);
    ctl->body = &body;
    ctl->begin = begin;
    ctl->end = end;
    ctl->grain = grain;
    ctl->block_count = block_count;

    const auto drain = [](control& c) {
        for (;;) {
            const std::size_t block = c.next_block.fetch_add(1, std::memory_order_relaxed);
            if (block >= c.block_count) {
                return;
            }
            const std::size_t block_begin = c.begin + block * c.grain;
            const std::size_t block_end = std::min(c.end, block_begin + c.grain);
            try {
                for (std::size_t i = block_begin; i < block_end; ++i) {
                    (*c.body)(i);
                }
            } catch (...) {
                c.errors[block] = std::current_exception();
            }
            if (c.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                c.remaining.notify_all();
            }
        }
    };

    // Recruit at most one participant per block beyond the caller. A
    // participant that wakes after everything is claimed touches only the
    // counter (the shared control keeps it valid past the caller's return),
    // so stragglers are harmless.
    const std::size_t participants =
        std::min(worker_count(), block_count > 0 ? block_count - 1 : 0);
    for (std::size_t p = 0; p < participants; ++p) {
        try {
            enqueue(unique_task([ctl, drain] { drain(*ctl); }));
        } catch (const pool_stopped&) {
            // Recruiting raced pool shutdown. Unwinding here would leave
            // already-recruited participants holding `body` past the
            // caller's frame, so degrade instead: stop recruiting and let
            // the caller drain every unclaimed block itself below.
            break;
        }
    }

    drain(*ctl);
    for (std::size_t r = ctl->remaining.load(std::memory_order_acquire); r != 0;
         r = ctl->remaining.load(std::memory_order_acquire)) {
        ctl->remaining.wait(r, std::memory_order_acquire);
    }

    // First failing block by index order, matching the old contract.
    for (std::exception_ptr& error : ctl->errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

util::parallel_for_fn make_parallel_for(thread_pool& pool)
{
    return [&pool](std::size_t count, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(0, count, body);
    };
}

} // namespace synts::runtime
