#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/hashing.h"
#include "util/rng.h"
#include "workload/registry.h"

namespace synts::workload {

namespace {

using arch::op_class;

/// Identity digest of a (family, params) pair: the family tag keeps two
/// families with coincidentally equal param digests apart. Doubles as the
/// profile's trace-generation stream salt, so two parameterizations draw
/// distinct operand streams even at equal experiment seeds.
[[nodiscard]] std::uint64_t identity(std::string_view family,
                                     std::uint64_t params_digest) noexcept
{
    util::digest_builder h;
    h.text(family);
    h.u64(params_digest);
    return h.digest();
}

/// Mix array in op_class order:
/// {int_add, int_sub, int_logic, int_mul, load, store, branch, fp, nop}.
[[nodiscard]] std::array<double, arch::op_class_count>
mix_of(double add, double sub, double logic, double mul, double load, double store,
       double branch, double fp, double nop)
{
    return {add, sub, logic, mul, load, store, branch, fp, nop};
}

void require(bool ok, const char* what)
{
    if (!ok) {
        throw std::invalid_argument(what);
    }
}

/// Registers `factory` under `key`, stamping the registered name into the
/// produced profile so diagnostics show the registry spelling.
template <typename Factory>
void add_named(workload_registry& registry, workload_key key, Factory factory)
{
    const std::string name = key.name;
    registry.add(std::move(key), [name, factory](std::size_t thread_count) {
        benchmark_profile profile = factory(thread_count);
        profile.name = name;
        return profile;
    });
}

} // namespace

// -- lock-contention ladder --------------------------------------------------

std::uint64_t lock_ladder_params::digest() const noexcept
{
    util::digest_builder h;
    h.value(rungs);
    h.value(base_contention);
    h.value(contention_step);
    h.value(hold_scale);
    h.value(hot_locks);
    return h.digest();
}

workload_key lock_ladder_key(std::string name, const lock_ladder_params& params)
{
    return {std::move(name), identity("lock_ladder", params.digest())};
}

benchmark_profile make_lock_ladder_profile(const lock_ladder_params& params,
                                           std::size_t thread_count)
{
    require(thread_count >= 1, "lock_ladder: thread_count must be >= 1");
    require(params.rungs >= 1, "lock_ladder: rungs must be >= 1");
    require(params.hot_locks >= 1, "lock_ladder: hot_locks must be >= 1");
    require(params.base_contention >= 0.0 && params.base_contention < 1.0,
            "lock_ladder: base_contention must be in [0, 1)");
    require(params.contention_step >= 0.0, "lock_ladder: contention_step must be >= 0");
    require(params.hold_scale > 0.0, "lock_ladder: hold_scale must be > 0");

    benchmark_profile profile;
    profile.name = "lock_ladder";
    profile.stream_salt = identity("lock_ladder", params.digest());
    profile.thread_count = thread_count;
    profile.interval_count = 3;
    profile.instructions_per_interval = 16000;
    profile.threads.reserve(thread_count);
    profile.work_imbalance.assign(thread_count, 1.0);

    // Per-thread serialization: rung r's share of work under the hot locks.
    // With L locks the convoy spreads, so the per-lock pressure drops.
    const auto serialization = [&](std::size_t t) {
        const std::size_t rung = t % params.rungs;
        const double contention =
            std::min(0.9, params.base_contention +
                              params.contention_step * static_cast<double>(rung));
        return contention / static_cast<double>(params.hot_locks);
    };
    double s_max = 0.0;
    for (std::size_t t = 0; t < thread_count; ++t) {
        s_max = std::max(s_max, serialization(t));
    }

    for (std::size_t t = 0; t < thread_count; ++t) {
        const double s = serialization(t);
        thread_character c;
        // Lock-heavy integer code: shared-counter updates, flag tests, the
        // odd fp bookkeeping; spin waits add branch and load traffic as the
        // thread's rung (and thus its wait time behind the convoy) rises.
        c.mix = mix_of(0.22, 0.08, 0.14, 0.02, 0.26 + 0.04 * s, 0.12,
                       0.14 + 0.10 * s, 0.00, 0.02);
        // Critical sections hammer shared counters: each increment of a
        // nearly-saturated counter ripples the full carry chain, so carry
        // sensitization climbs the ladder with contention and hold time.
        c.long_carry_fraction = 0.02 + 0.25 * s * params.hold_scale;
        c.carry_len_min = 12;
        c.carry_len_max = 32;
        c.mul_sensitize_fraction = 0.01;
        c.mul_magnitude_min_bits = 4;
        c.mul_magnitude_max_bits = 12;
        c.opcode_variety = 12;
        // The lock word and its guard registers are re-read constantly.
        c.register_collision_fraction = 0.01 + 0.08 * s;
        c.collision_low_register_bias = 1.0 + 2.5 * s;
        c.working_set_bytes = 1ull << 20;
        c.sequential_access_fraction = std::max(0.2, 0.6 - 0.3 * s);
        c.branch_taken_bias = 0.55;
        c.branch_repeat_fraction = std::min(0.98, 0.80 + 0.15 * s);
        profile.threads.push_back(c);

        // Convoy head (highest rung) carries the most work; hold_scale
        // widens the spread. s_max == 0 means no contention: balanced.
        const double spread = std::clamp(0.45 * params.hold_scale, 0.0, 0.6);
        profile.work_imbalance[t] =
            s_max > 0.0 ? 1.0 - spread * (1.0 - s / s_max) : 1.0;
    }
    return profile;
}

void register_lock_ladder(workload_registry& registry, std::string name,
                          const lock_ladder_params& params)
{
    add_named(registry, lock_ladder_key(std::move(name), params),
              [params](std::size_t thread_count) {
                  return make_lock_ladder_profile(params, thread_count);
              });
}

// -- producer-consumer pipeline ---------------------------------------------

std::uint64_t pipeline_params::digest() const noexcept
{
    util::digest_builder h;
    h.values(stage_weights);
    h.value(queue_pressure);
    h.value(item_bytes);
    return h.digest();
}

workload_key pipeline_key(std::string name, const pipeline_params& params)
{
    return {std::move(name), identity("pipeline", params.digest())};
}

benchmark_profile make_pipeline_profile(const pipeline_params& params,
                                        std::size_t thread_count)
{
    require(thread_count >= 1, "pipeline: thread_count must be >= 1");
    require(!params.stage_weights.empty(), "pipeline: stage_weights must be non-empty");
    for (const double w : params.stage_weights) {
        require(w > 0.0, "pipeline: stage weights must be > 0");
    }
    require(params.queue_pressure >= 0.0 && params.queue_pressure <= 1.0,
            "pipeline: queue_pressure must be in [0, 1]");
    require(params.item_bytes > 0, "pipeline: item_bytes must be > 0");

    const std::size_t stages = params.stage_weights.size();
    const double w_max =
        *std::max_element(params.stage_weights.begin(), params.stage_weights.end());

    benchmark_profile profile;
    profile.name = "pipeline";
    profile.stream_salt = identity("pipeline", params.digest());
    profile.thread_count = thread_count;
    profile.interval_count = 3;
    profile.instructions_per_interval = 16000;
    profile.threads.reserve(thread_count);
    profile.work_imbalance.assign(thread_count, 1.0);

    for (std::size_t t = 0; t < thread_count; ++t) {
        const std::size_t stage = t % stages;
        const double weight = params.stage_weights[stage] / w_max;
        // Light stages spend the deficit spinning on queue full/empty
        // checks, scaled by the configured backpressure.
        const double spin = params.queue_pressure * (1.0 - weight);

        thread_character c;
        if (stage == 0) {
            // Producer: streaming reads, payload writes, index arithmetic
            // whose wrap-around checks exercise long carries.
            c.mix = mix_of(0.18, 0.04, 0.08, 0.02, 0.32, 0.16, 0.12, 0.06, 0.02);
            c.long_carry_fraction = 0.10;
            c.sequential_access_fraction = 0.90;
            c.opcode_variety = 14;
        } else if (stage == stages - 1) {
            // Consumer: drains the last queue, store/branch bound.
            c.mix = mix_of(0.14, 0.06, 0.10, 0.02, 0.22, 0.24, 0.16, 0.04, 0.02);
            c.long_carry_fraction = 0.04;
            c.sequential_access_fraction = 0.75;
            c.opcode_variety = 10;
        } else {
            // Transform: the compute stage -- multiplier-heavy payload work.
            c.mix = mix_of(0.20, 0.08, 0.12, 0.14, 0.18, 0.08, 0.08, 0.10, 0.02);
            c.long_carry_fraction = 0.07;
            c.mul_sensitize_fraction = 0.05;
            c.mul_magnitude_min_bits = 6;
            c.mul_magnitude_max_bits = 16;
            c.sequential_access_fraction = 0.60;
            c.opcode_variety = 24;
        }
        c.carry_len_min = 12;
        c.carry_len_max = 32;
        c.working_set_bytes = params.item_bytes;
        // Spinning stages hammer the queue head/tail registers and their
        // full/empty branch, which is taken over and over until state flips.
        c.register_collision_fraction = std::min(0.4, 0.02 + 0.10 * spin);
        c.collision_low_register_bias = 1.0 + 2.0 * spin;
        c.branch_taken_bias = 0.55;
        c.branch_repeat_fraction = std::min(0.98, 0.82 + 0.14 * spin);
        profile.threads.push_back(c);
        profile.work_imbalance[t] = weight;
    }
    return profile;
}

void register_pipeline(workload_registry& registry, std::string name,
                       const pipeline_params& params)
{
    add_named(registry, pipeline_key(std::move(name), params),
              [params](std::size_t thread_count) {
                  return make_pipeline_profile(params, thread_count);
              });
}

// -- irregular graph walk ----------------------------------------------------

std::uint64_t graph_walk_params::digest() const noexcept
{
    util::digest_builder h;
    h.value(tail_alpha);
    h.value(hub_fraction);
    h.value(working_set_bytes);
    h.value(mix_seed);
    return h.digest();
}

workload_key graph_walk_key(std::string name, const graph_walk_params& params)
{
    return {std::move(name), identity("graph_walk", params.digest())};
}

benchmark_profile make_graph_walk_profile(const graph_walk_params& params,
                                          std::size_t thread_count)
{
    require(thread_count >= 1, "graph_walk: thread_count must be >= 1");
    require(params.tail_alpha > 0.0, "graph_walk: tail_alpha must be > 0");
    require(params.hub_fraction >= 0.0 && params.hub_fraction <= 1.0,
            "graph_walk: hub_fraction must be in [0, 1]");
    require(params.working_set_bytes > 0, "graph_walk: working_set_bytes must be > 0");

    benchmark_profile profile;
    profile.name = "graph_walk";
    profile.stream_salt = identity("graph_walk", params.digest());
    profile.thread_count = thread_count;
    profile.interval_count = 3;
    profile.instructions_per_interval = 16000;
    profile.threads.reserve(thread_count);
    profile.work_imbalance.assign(thread_count, 1.0);

    // Per-thread frontier shares from a Pareto(alpha) tail, drawn serially
    // from mix_seed so the profile depends only on (params, thread_count).
    util::xoshiro256 rng(params.mix_seed ^ 0x5851F42D4C957F2Dull);
    std::vector<double> shares(thread_count);
    double share_max = 0.0;
    for (std::size_t t = 0; t < thread_count; ++t) {
        // Inverse-CDF Pareto sample in [1, inf); clamp u away from 1 so a
        // single draw cannot produce an astronomically heavy hub.
        const double u = std::min(rng.uniform(), 0.999);
        shares[t] = std::pow(1.0 - u, -1.0 / params.tail_alpha);
        share_max = std::max(share_max, shares[t]);
    }

    for (std::size_t t = 0; t < thread_count; ++t) {
        const double load = shares[t] / share_max; // (0, 1], 1 = heaviest hub
        thread_character c;
        // Pointer chasing: load-dominated, branchy, with offset arithmetic
        // whose base+index additions carry deep on hub-sized frontiers.
        c.mix = mix_of(0.20, 0.06, 0.12, 0.03, 0.30, 0.08, 0.14, 0.05, 0.02);
        c.long_carry_fraction = 0.015 + 0.16 * std::pow(load, 1.5);
        c.carry_len_min = 14;
        c.carry_len_max = 32;
        c.mul_sensitize_fraction = 0.008;
        c.mul_magnitude_min_bits = 4;
        c.mul_magnitude_max_bits = 14;
        c.opcode_variety =
            static_cast<std::uint32_t>(10 + std::llround(30.0 * load));
        c.register_collision_fraction = 0.01 + 0.10 * params.hub_fraction * load;
        c.collision_low_register_bias = 1.0 + 3.0 * params.hub_fraction;
        c.working_set_bytes = params.working_set_bytes;
        c.sequential_access_fraction = 0.15; // edges land anywhere
        c.branch_taken_bias = 0.50;          // visited? checks are coin flips
        c.branch_repeat_fraction = 0.55;
        profile.threads.push_back(c);
        profile.work_imbalance[t] = load;
    }
    return profile;
}

void register_graph_walk(workload_registry& registry, std::string name,
                         const graph_walk_params& params)
{
    add_named(registry, graph_walk_key(std::move(name), params),
              [params](std::size_t thread_count) {
                  return make_graph_walk_profile(params, thread_count);
              });
}

// -- CLI-defined instances ---------------------------------------------------

namespace {

[[noreturn]] void definition_error(std::string_view what, std::string_view detail)
{
    throw std::invalid_argument("scenario definition: " + std::string(what) +
                                (detail.empty() ? std::string{}
                                                : " \"" + std::string(detail) + "\""));
}

/// Strict full-token decimal parse ("0.9", "1e-2"); rejects partial
/// consumption so "0.9x" cannot silently truncate.
double parse_definition_double(std::string_view param, std::string_view token)
{
    const std::string text(token);
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (text.empty() || consumed != text.size()) {
        definition_error(std::string(param) + " expects a decimal, got", token);
    }
    return value;
}

/// Strict full-token unsigned parse; rejects signs, whitespace and
/// trailing garbage (mirrors the runner's CLI hardening).
std::uint64_t parse_definition_u64(std::string_view param, std::string_view token)
{
    const bool starts_with_digit = !token.empty() && token[0] >= '0' && token[0] <= '9';
    std::uint64_t value = 0;
    std::size_t consumed = 0;
    if (starts_with_digit) {
        try {
            value = std::stoull(std::string(token), &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
    }
    if (!starts_with_digit || consumed != token.size()) {
        definition_error(std::string(param) + " expects an unsigned integer, got",
                         token);
    }
    return value;
}

/// '+'-separated decimal list (stage_weights; ',' separates parameters).
std::vector<double> parse_definition_weights(std::string_view param,
                                             std::string_view token)
{
    std::vector<double> weights;
    std::string_view rest = token;
    for (;;) {
        const std::size_t plus = rest.find('+');
        weights.push_back(parse_definition_double(param, rest.substr(0, plus)));
        if (plus == std::string_view::npos) {
            return weights;
        }
        rest = rest.substr(plus + 1);
    }
}

/// One key=value assignment of a definition's parameter list.
struct definition_assignment {
    std::string_view param;
    std::string_view value;
};

/// Splits "name=x,a=1,b=2" into assignments; rejects empty or '='-less
/// tokens and duplicate parameter names.
std::vector<definition_assignment> split_assignments(std::string_view text)
{
    std::vector<definition_assignment> assignments;
    std::string_view rest = text;
    for (;;) {
        const std::size_t comma = rest.find(',');
        const std::string_view token = rest.substr(0, comma);
        const std::size_t equals = token.find('=');
        if (token.empty() || equals == std::string_view::npos || equals == 0) {
            definition_error("expected param=value, got", token);
        }
        const definition_assignment assignment{token.substr(0, equals),
                                               token.substr(equals + 1)};
        for (const definition_assignment& seen : assignments) {
            if (seen.param == assignment.param) {
                definition_error("duplicate parameter", assignment.param);
            }
        }
        assignments.push_back(assignment);
        if (comma == std::string_view::npos) {
            return assignments;
        }
        rest = rest.substr(comma + 1);
    }
}

/// Extracts the common `name` parameter and applies every other
/// assignment to `params` through the family's `apply` hook (which
/// returns false for an unknown parameter name).
template <typename Params, typename Apply>
std::pair<std::string, Params> parse_definition_params(std::string_view family,
                                                       std::string_view rest,
                                                       Params params, Apply&& apply)
{
    std::string name;
    for (const definition_assignment& a : split_assignments(rest)) {
        if (a.param == "name") {
            if (a.value.empty()) {
                definition_error("name must not be empty in", rest);
            }
            name = std::string(a.value);
            continue;
        }
        if (!apply(params, a)) {
            definition_error("unknown " + std::string(family) + " parameter", a.param);
        }
    }
    if (name.empty()) {
        definition_error("missing required parameter name= in", rest);
    }
    return {std::move(name), params};
}

} // namespace

scenario_definition parse_scenario_definition(std::string_view text)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= text.size()) {
        definition_error("expected family:name=NAME[,param=value]..., got", text);
    }
    const std::string_view family = text.substr(0, colon);
    const std::string_view rest = text.substr(colon + 1);

    if (family == "lock_ladder") {
        auto [name, params] = parse_definition_params(
            family, rest, lock_ladder_params{},
            [](lock_ladder_params& p, const definition_assignment& a) {
                if (a.param == "rungs") {
                    p.rungs = parse_definition_u64(a.param, a.value);
                } else if (a.param == "base_contention") {
                    p.base_contention = parse_definition_double(a.param, a.value);
                } else if (a.param == "contention_step") {
                    p.contention_step = parse_definition_double(a.param, a.value);
                } else if (a.param == "hold_scale") {
                    p.hold_scale = parse_definition_double(a.param, a.value);
                } else if (a.param == "hot_locks") {
                    p.hot_locks = parse_definition_u64(a.param, a.value);
                } else {
                    return false;
                }
                return true;
            });
        // Eager validation: every require() in the factory fires at
        // definition time (a CLI usage error), not mid-sweep.
        (void)make_lock_ladder_profile(params, 1);
        return {std::string(family), name, lock_ladder_key(name, params),
                [name, params](workload_registry& registry) {
                    register_lock_ladder(registry, name, params);
                }};
    }
    if (family == "pipeline") {
        auto [name, params] = parse_definition_params(
            family, rest, pipeline_params{},
            [](pipeline_params& p, const definition_assignment& a) {
                if (a.param == "stage_weights") {
                    p.stage_weights = parse_definition_weights(a.param, a.value);
                } else if (a.param == "queue_pressure") {
                    p.queue_pressure = parse_definition_double(a.param, a.value);
                } else if (a.param == "item_bytes") {
                    p.item_bytes = parse_definition_u64(a.param, a.value);
                } else {
                    return false;
                }
                return true;
            });
        (void)make_pipeline_profile(params, 1);
        return {std::string(family), name, pipeline_key(name, params),
                [name, params](workload_registry& registry) {
                    register_pipeline(registry, name, params);
                }};
    }
    if (family == "graph_walk") {
        auto [name, params] = parse_definition_params(
            family, rest, graph_walk_params{},
            [](graph_walk_params& p, const definition_assignment& a) {
                if (a.param == "tail_alpha") {
                    p.tail_alpha = parse_definition_double(a.param, a.value);
                } else if (a.param == "hub_fraction") {
                    p.hub_fraction = parse_definition_double(a.param, a.value);
                } else if (a.param == "working_set_bytes") {
                    p.working_set_bytes = parse_definition_u64(a.param, a.value);
                } else if (a.param == "mix_seed") {
                    p.mix_seed = parse_definition_u64(a.param, a.value);
                } else {
                    return false;
                }
                return true;
            });
        (void)make_graph_walk_profile(params, 1);
        return {std::string(family), name, graph_walk_key(name, params),
                [name, params](workload_registry& registry) {
                    register_graph_walk(registry, name, params);
                }};
    }
    definition_error("unknown scenario family (expected lock_ladder, pipeline, "
                     "or graph_walk), got",
                     family);
}

// -- default instances -------------------------------------------------------

void register_default_scenarios(workload_registry& registry)
{
    register_lock_ladder(registry, "lock_ladder", lock_ladder_params{});
    register_lock_ladder(registry, "lock_ladder_heavy",
                         lock_ladder_params{.rungs = 4,
                                            .base_contention = 0.30,
                                            .contention_step = 0.20,
                                            .hold_scale = 2.0,
                                            .hot_locks = 1});
    register_pipeline(registry, "pipeline", pipeline_params{});
    register_pipeline(registry, "pipeline_skewed",
                      pipeline_params{.stage_weights = {1.0, 0.30, 0.12},
                                      .queue_pressure = 0.85,
                                      .item_bytes = 8ull << 20});
    register_graph_walk(registry, "graph_walk", graph_walk_params{});
    register_graph_walk(registry, "graph_walk_hubby",
                        graph_walk_params{.tail_alpha = 0.9,
                                          .hub_fraction = 0.25,
                                          .working_set_bytes = 64ull << 20,
                                          .mix_seed = 7});
}

} // namespace synts::workload
