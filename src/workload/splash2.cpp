#include "workload/splash2.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace synts::workload {

namespace {

using arch::op_class;

/// Builds a mix array from per-class weights in op_class order:
/// {int_add, int_sub, int_logic, int_mul, load, store, branch, fp, nop}.
[[nodiscard]] std::array<double, arch::op_class_count>
mix_of(double add, double sub, double logic, double mul, double load, double store,
       double branch, double fp, double nop)
{
    return {add, sub, logic, mul, load, store, branch, fp, nop};
}

struct profile_seed_row {
    double long_carry;
    std::uint32_t carry_min;
    std::uint32_t carry_max;
    double mul_sensitize;
    std::uint32_t mul_min_bits;
    std::uint32_t mul_max_bits;
    std::uint32_t opcode_variety;
    double register_collisions;
    double collision_bias;
};

/// Applies the per-thread heterogeneity rows of a benchmark onto a base
/// character.
[[nodiscard]] std::vector<thread_character>
make_threads(const thread_character& base, std::span<const profile_seed_row> rows,
             std::size_t thread_count)
{
    std::vector<thread_character> threads;
    threads.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
        const profile_seed_row& row = rows[t % rows.size()];
        thread_character c = base;
        c.long_carry_fraction = row.long_carry;
        c.carry_len_min = row.carry_min;
        c.carry_len_max = row.carry_max;
        c.mul_sensitize_fraction = row.mul_sensitize;
        c.mul_magnitude_min_bits = row.mul_min_bits;
        c.mul_magnitude_max_bits = row.mul_max_bits;
        c.opcode_variety = row.opcode_variety;
        c.register_collision_fraction = row.register_collisions;
        c.collision_low_register_bias = row.collision_bias;
        threads.push_back(c);
    }
    return threads;
}

} // namespace

std::string_view benchmark_name(benchmark_id id) noexcept
{
    switch (id) {
    case benchmark_id::fmm:
        return "FMM";
    case benchmark_id::radix:
        return "Radix";
    case benchmark_id::lu_contig:
        return "Lu-Contig";
    case benchmark_id::lu_ncontig:
        return "Lu-nContig";
    case benchmark_id::fft:
        return "FFT";
    case benchmark_id::water_sp:
        return "Water-sp";
    case benchmark_id::barnes:
        return "Barnes";
    case benchmark_id::raytrace:
        return "Raytrace";
    case benchmark_id::cholesky:
        return "Cholesky";
    case benchmark_id::ocean:
        return "Ocean";
    }
    return "?";
}

std::span<const benchmark_id> all_benchmarks() noexcept
{
    static constexpr std::array<benchmark_id, benchmark_count> all = {
        benchmark_id::fmm,      benchmark_id::radix,    benchmark_id::lu_contig,
        benchmark_id::lu_ncontig, benchmark_id::fft,    benchmark_id::water_sp,
        benchmark_id::barnes,   benchmark_id::raytrace, benchmark_id::cholesky,
        benchmark_id::ocean,
    };
    return all;
}

std::span<const benchmark_id> reported_benchmarks() noexcept
{
    // Paper Fig. 6.18 order: Barnes, Cholesky, FMM, Lu-Contig, Lu-nContig,
    // Radix, Raytrace.
    static constexpr std::array<benchmark_id, 7> reported = {
        benchmark_id::barnes,    benchmark_id::cholesky,   benchmark_id::fmm,
        benchmark_id::lu_contig, benchmark_id::lu_ncontig, benchmark_id::radix,
        benchmark_id::raytrace,
    };
    return reported;
}

benchmark_profile make_profile(benchmark_id id, std::size_t thread_count)
{
    if (thread_count == 0) {
        throw std::invalid_argument("make_profile: thread_count must be >= 1");
    }

    benchmark_profile profile;
    profile.id = id;
    profile.name = benchmark_name(id);
    profile.stream_salt = static_cast<std::uint64_t>(id) << 32;
    profile.thread_count = thread_count;
    profile.interval_count = 3;
    profile.instructions_per_interval = 24000;
    profile.work_imbalance.assign(thread_count, 1.0);

    thread_character base;

    switch (id) {
    case benchmark_id::fmm: {
        // Fast multipole n-body: FP heavy, short barrier intervals, very low
        // error scale (~1e-3, Fig. 6.17 right).
        base.mix = mix_of(0.15, 0.05, 0.08, 0.06, 0.24, 0.10, 0.12, 0.18, 0.02);
        base.working_set_bytes = 3ull << 20;
        base.sequential_access_fraction = 0.55;
        base.branch_taken_bias = 0.58;
        profile.instructions_per_interval = 12000; // "very short barrier intervals"
        const std::array<profile_seed_row, 4> rows = {{
            {0.0110, 14, 32, 0.010, 8, 16, 24, 0.0060, 3.0},
            {0.0040, 14, 32, 0.004, 6, 16, 12, 0.0025, 1.0},
            {0.0030, 14, 32, 0.003, 6, 16, 12, 0.0020, 1.0},
            {0.0022, 14, 32, 0.002, 6, 16, 12, 0.0018, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::radix: {
        // Integer radix sort: ALU/memory heavy; thread 0 (histogram merge)
        // shows ~4x the error probability of the calmest thread (Fig. 3.5).
        base.mix = mix_of(0.24, 0.10, 0.16, 0.02, 0.24, 0.12, 0.10, 0.00, 0.02);
        base.working_set_bytes = 6ull << 20;
        base.sequential_access_fraction = 0.45;
        base.branch_taken_bias = 0.52;
        const std::array<profile_seed_row, 4> rows = {{
            {0.2200, 12, 32, 0.050, 4, 14, 20, 0.0500, 3.0},
            {0.0700, 12, 32, 0.030, 4, 14, 16, 0.0200, 1.0},
            {0.0580, 12, 32, 0.026, 4, 14, 16, 0.0170, 1.0},
            {0.0500, 12, 32, 0.022, 4, 14, 16, 0.0150, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::lu_contig: {
        base.mix = mix_of(0.16, 0.06, 0.08, 0.10, 0.24, 0.10, 0.08, 0.16, 0.02);
        base.working_set_bytes = 2ull << 20;
        base.sequential_access_fraction = 0.85;
        const std::array<profile_seed_row, 4> rows = {{
            {0.1300, 12, 32, 0.045, 8, 16, 20, 0.0400, 2.5},
            {0.0650, 12, 32, 0.028, 8, 16, 12, 0.0160, 1.0},
            {0.0420, 12, 32, 0.022, 8, 16, 12, 0.0130, 1.0},
            {0.0300, 12, 32, 0.018, 8, 16, 12, 0.0110, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::lu_ncontig: {
        base.mix = mix_of(0.16, 0.06, 0.08, 0.10, 0.26, 0.10, 0.08, 0.14, 0.02);
        base.working_set_bytes = 8ull << 20;
        base.sequential_access_fraction = 0.35; // non-contiguous blocks
        const std::array<profile_seed_row, 4> rows = {{
            {0.1150, 12, 32, 0.042, 8, 16, 20, 0.0380, 2.5},
            {0.0700, 12, 32, 0.028, 8, 16, 12, 0.0170, 1.0},
            {0.0460, 12, 32, 0.022, 8, 16, 12, 0.0140, 1.0},
            {0.0330, 12, 32, 0.018, 8, 16, 12, 0.0110, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::fft: {
        // Homogeneous and too error-prone to speculate (Section 5.4): every
        // thread constantly exercises deep carry chains.
        base.mix = mix_of(0.18, 0.08, 0.10, 0.12, 0.22, 0.10, 0.06, 0.12, 0.02);
        base.working_set_bytes = 4ull << 20;
        const std::array<profile_seed_row, 1> rows = {{
            {0.5000, 24, 32, 0.300, 12, 16, 16, 0.2000, 3.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::water_sp: {
        // Homogeneous, moderate errors: conventional per-core TS suffices.
        base.mix = mix_of(0.14, 0.06, 0.08, 0.08, 0.22, 0.10, 0.10, 0.20, 0.02);
        base.working_set_bytes = 1ull << 20;
        const std::array<profile_seed_row, 1> rows = {{
            {0.0400, 12, 32, 0.020, 8, 16, 16, 0.0140, 1.5},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::barnes: {
        base.mix = mix_of(0.16, 0.06, 0.10, 0.08, 0.22, 0.10, 0.10, 0.16, 0.02);
        base.working_set_bytes = 4ull << 20;
        base.sequential_access_fraction = 0.4; // pointer chasing (octree)
        const std::array<profile_seed_row, 4> rows = {{
            {0.1400, 12, 32, 0.048, 8, 16, 24, 0.0420, 2.5},
            {0.0600, 12, 32, 0.026, 8, 16, 14, 0.0170, 1.0},
            {0.0440, 12, 32, 0.022, 8, 16, 14, 0.0140, 1.0},
            {0.0350, 12, 32, 0.018, 8, 16, 14, 0.0120, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::raytrace: {
        // Ray tracing: FP/mul heavy; decode-side heterogeneity from a wide
        // opcode working set in the lead thread (Fig. 6.14/6.16).
        base.mix = mix_of(0.12, 0.06, 0.08, 0.12, 0.22, 0.08, 0.12, 0.18, 0.02);
        base.working_set_bytes = 6ull << 20;
        base.sequential_access_fraction = 0.3;
        const std::array<profile_seed_row, 4> rows = {{
            {0.1200, 12, 32, 0.055, 9, 16, 48, 0.0550, 3.5},
            {0.0480, 12, 32, 0.026, 8, 16, 12, 0.0160, 1.0},
            {0.0380, 12, 32, 0.022, 8, 16, 12, 0.0130, 1.0},
            {0.0320, 12, 32, 0.018, 8, 16, 12, 0.0110, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::cholesky: {
        // Sparse factorization: strongest decode heterogeneity (Fig. 6.13).
        base.mix = mix_of(0.16, 0.06, 0.10, 0.10, 0.24, 0.08, 0.08, 0.16, 0.02);
        base.working_set_bytes = 3ull << 20;
        base.sequential_access_fraction = 0.5;
        const std::array<profile_seed_row, 4> rows = {{
            {0.1050, 12, 32, 0.050, 9, 16, 56, 0.0600, 3.5},
            {0.0400, 12, 32, 0.024, 8, 16, 12, 0.0160, 1.0},
            {0.0320, 12, 32, 0.020, 8, 16, 12, 0.0130, 1.0},
            {0.0270, 12, 32, 0.016, 8, 16, 10, 0.0110, 1.0},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    case benchmark_id::ocean: {
        // Homogeneous stencil code.
        base.mix = mix_of(0.16, 0.08, 0.08, 0.06, 0.26, 0.12, 0.08, 0.14, 0.02);
        base.working_set_bytes = 8ull << 20;
        base.sequential_access_fraction = 0.9;
        const std::array<profile_seed_row, 1> rows = {{
            {0.0650, 12, 32, 0.028, 8, 16, 14, 0.0180, 1.5},
        }};
        profile.threads = make_threads(base, rows, thread_count);
        break;
    }
    }

    // Static per-thread work imbalance (N_i spread). Barrier-synchronized
    // SPLASH-2 phases are not perfectly balanced: thread 0 typically
    // carries coordination work (histogram merge in Radix, supernode roots
    // in Cholesky, tree build in Barnes...), making it both the slowest
    // *and* -- per the error characters above -- the most error-prone
    // thread. This slack is precisely what SynTS harvests and what the
    // Per-core TS baseline wastes (it races every thread to the barrier at
    // high voltage). The homogeneous trio stays near-balanced.
    {
        struct imbalance_row {
            benchmark_id id;
            std::array<double, 4> factors;
        };
        static constexpr std::array<imbalance_row, benchmark_count> imbalances = {{
            {benchmark_id::fmm, {1.00, 0.80, 0.70, 0.62}},
            {benchmark_id::radix, {1.00, 0.84, 0.76, 0.70}},
            {benchmark_id::lu_contig, {1.00, 0.86, 0.78, 0.72}},
            {benchmark_id::lu_ncontig, {1.00, 0.83, 0.75, 0.69}},
            {benchmark_id::fft, {1.00, 0.97, 0.99, 0.96}},
            {benchmark_id::water_sp, {1.00, 0.98, 0.99, 0.97}},
            {benchmark_id::barnes, {1.00, 0.84, 0.75, 0.68}},
            {benchmark_id::raytrace, {1.00, 0.80, 0.72, 0.63}},
            {benchmark_id::cholesky, {1.00, 0.78, 0.68, 0.60}},
            {benchmark_id::ocean, {1.00, 0.98, 0.99, 0.97}},
        }};
        for (const auto& row : imbalances) {
            if (row.id == id) {
                for (std::size_t t = 0; t < thread_count; ++t) {
                    profile.work_imbalance[t] = row.factors[t % row.factors.size()];
                }
                break;
            }
        }
    }
    return profile;
}

namespace {

/// Stream state for one thread's operand/encoding generation.
class thread_stream {
public:
    thread_stream(const thread_character& character, std::uint64_t seed)
        : character_(character), rng_(seed)
    {
        // The static opcode working set of the thread.
        opcodes_.reserve(character.opcode_variety);
        for (std::uint32_t i = 0; i < character.opcode_variety; ++i) {
            opcodes_.push_back(static_cast<std::uint32_t>(rng_.uniform_below(64)));
        }
        sequential_cursor_ = rng_.uniform_below(character.working_set_bytes);
    }

    /// Per-interval drift: barrier phases differ in how aggressively they
    /// exercise the carry chain (so online re-estimation per interval is
    /// meaningful). Deterministic in the interval index.
    void begin_interval(std::size_t interval_index)
    {
        const double phase =
            std::sin(static_cast<double>(interval_index + 1) * 1.7) * 0.2;
        interval_carry_scale_ = 1.0 + phase;
    }

    [[nodiscard]] arch::micro_op next()
    {
        arch::micro_op op;
        op.cls = static_cast<op_class>(rng_.discrete(character_.mix));

        // A pending sensitizer claims the next op that exercises its stage:
        // the quiescent -> boundary-pattern pair must be consecutive in the
        // stage's input-vector stream for the deep path to actually toggle.
        if (pending_carry_sensitizer_ && arch::uses_simple_alu(op.cls)) {
            op.cls = op_class::int_add;
            op.encoding = make_encoding(op.cls);
            const std::uint64_t ones =
                pending_carry_len_ >= 64 ? ~0ull : ((1ull << pending_carry_len_) - 1);
            op.operand_a = ones;
            op.operand_b = 1 + rng_.uniform_below(3);
            pending_carry_sensitizer_ = false;
            return op;
        }
        if (pending_mul_sensitizer_ && arch::uses_complex_alu(op.cls)) {
            // Increment the multiplier by one: the new bottom partial-
            // product row injects a carry that ripples down the whole array
            // diagonal (the deepest sensitizable multiplier path).
            op.encoding = make_encoding(op.cls);
            op.operand_a = (1ull << pending_mul_bits_a_) - 1;
            op.operand_b = (1ull << (pending_mul_bits_b_ - 1)) | 1ull;
            pending_mul_sensitizer_ = false;
            return op;
        }

        op.encoding = make_encoding(op.cls);
        switch (op.cls) {
        case op_class::int_add:
        case op_class::int_sub:
            fill_addsub_operands(op);
            break;
        case op_class::int_logic:
            op.operand_a = rng_();
            op.operand_b = rng_();
            break;
        case op_class::int_mul:
            fill_mul_operands(op);
            break;
        case op_class::load:
        case op_class::store:
            op.address = make_address();
            break;
        case op_class::branch:
            op.branch_taken = make_branch();
            break;
        case op_class::fp:
        case op_class::nop:
            break;
        }
        return op;
    }

private:
    [[nodiscard]] std::uint32_t make_encoding(op_class cls)
    {
        const std::uint32_t opcode = opcodes_[rng_.uniform_below(opcodes_.size())];
        std::uint32_t rs = static_cast<std::uint32_t>(rng_.uniform_below(32));
        std::uint32_t rt = static_cast<std::uint32_t>(rng_.uniform_below(32));
        if (rng_.bernoulli(character_.register_collision_fraction)) {
            // Colliding register index skewed toward low registers by the
            // thread's bias -- low registers enter the decode hazard chain
            // at its deepest position.
            const double u = rng_.uniform();
            rs = static_cast<std::uint32_t>(std::min(
                31.0, 32.0 * std::pow(u, character_.collision_low_register_bias)));
            rt = rs;
        }
        const std::uint32_t rd = static_cast<std::uint32_t>(rng_.uniform_below(32));
        std::uint32_t imm = static_cast<std::uint32_t>(rng_.uniform_below(1u << 11));
        // Two low bits communicate the logic-op variant to the stage tap.
        imm = (imm << 2) | static_cast<std::uint32_t>(static_cast<unsigned>(cls) & 0x3u);
        return (opcode << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (imm & 0x7FF);
    }

    void fill_addsub_operands(arch::micro_op& op)
    {
        const double effective =
            std::min(1.0, character_.long_carry_fraction * interval_carry_scale_);
        if (!pending_carry_sensitizer_ && rng_.bernoulli(effective)) {
            // Start a carry-chain event: this op quiesces the adder (0 + 0);
            // the *next* SimpleALU op will be the (2^k - 1) + 1 pattern whose
            // carry ripple then actually transitions through k bits.
            op.cls = op_class::int_add;
            op.operand_a = 0;
            op.operand_b = 0;
            pending_carry_sensitizer_ = true;
            pending_carry_len_ = static_cast<std::uint32_t>(
                rng_.uniform_int(character_.carry_len_min, character_.carry_len_max));
        } else {
            op.operand_a = rng_();
            op.operand_b = rng_();
        }
    }

    void fill_mul_operands(arch::micro_op& op)
    {
        const double effective =
            std::min(1.0, character_.mul_sensitize_fraction * interval_carry_scale_);
        if (!pending_mul_sensitizer_ && rng_.bernoulli(effective)) {
            // Start a multiplier-array event: (2^ka - 1) x 2^(kb-1) now,
            // then the next multiply increments the multiplier's LSB, so
            // the fresh bottom row's carry traverses ka columns and kb rows.
            pending_mul_bits_a_ = static_cast<std::uint32_t>(
                rng_.uniform_int(character_.mul_magnitude_min_bits,
                                 character_.mul_magnitude_max_bits));
            pending_mul_bits_b_ = static_cast<std::uint32_t>(
                rng_.uniform_int(character_.mul_magnitude_min_bits,
                                 character_.mul_magnitude_max_bits));
            op.operand_a = (1ull << pending_mul_bits_a_) - 1;
            op.operand_b = 1ull << (pending_mul_bits_b_ - 1);
            pending_mul_sensitizer_ = true;
            return;
        }
        const auto magnitude = [this]() {
            const std::uint32_t bits = static_cast<std::uint32_t>(
                rng_.uniform_int(character_.mul_magnitude_min_bits,
                                 character_.mul_magnitude_max_bits));
            const std::uint64_t cap = bits >= 64 ? ~0ull : (1ull << bits);
            return rng_.uniform_below(cap > 1 ? cap : 2);
        };
        op.operand_a = magnitude();
        op.operand_b = magnitude();
    }

    [[nodiscard]] std::uint64_t make_address()
    {
        if (rng_.bernoulli(character_.sequential_access_fraction)) {
            sequential_cursor_ = (sequential_cursor_ + 8) % character_.working_set_bytes;
        } else {
            sequential_cursor_ = rng_.uniform_below(character_.working_set_bytes) & ~7ull;
        }
        return 0x10000000ull + sequential_cursor_;
    }

    [[nodiscard]] bool make_branch()
    {
        bool taken;
        if (rng_.bernoulli(character_.branch_repeat_fraction)) {
            taken = last_branch_;
        } else {
            taken = rng_.bernoulli(character_.branch_taken_bias);
        }
        last_branch_ = taken;
        return taken;
    }

    thread_character character_;
    util::xoshiro256 rng_;
    std::vector<std::uint32_t> opcodes_;
    std::uint64_t sequential_cursor_ = 0;
    double interval_carry_scale_ = 1.0;
    bool last_branch_ = false;
    bool pending_carry_sensitizer_ = false;
    std::uint32_t pending_carry_len_ = 0;
    bool pending_mul_sensitizer_ = false;
    std::uint32_t pending_mul_bits_a_ = 0;
    std::uint32_t pending_mul_bits_b_ = 0;
};

} // namespace

arch::program_trace generate_program_trace(const benchmark_profile& profile,
                                           std::uint64_t seed,
                                           const util::parallel_for_fn& parallel)
{
    if (profile.threads.size() != profile.thread_count ||
        profile.work_imbalance.size() != profile.thread_count) {
        throw std::invalid_argument("generate_program_trace: profile arrays inconsistent");
    }

    // split() advances the root engine, so the per-thread stream seeds are
    // derived serially, in thread order, before any generation runs. The
    // per-thread work below then depends only on (profile, its seed) and may
    // execute in any order.
    util::xoshiro256 root(seed ^ profile.stream_salt);
    std::vector<std::uint64_t> stream_seeds(profile.thread_count);
    for (std::size_t t = 0; t < profile.thread_count; ++t) {
        util::xoshiro256 thread_rng = root.split(t);
        stream_seeds[t] = thread_rng();
    }

    arch::program_trace program;
    program.threads.resize(profile.thread_count);

    util::for_each_index(parallel, profile.thread_count, [&](std::size_t t) {
        thread_stream stream(profile.threads[t], stream_seeds[t]);
        arch::thread_trace& trace = program.threads[t];

        const auto interval_ops = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(profile.instructions_per_interval) *
                         profile.work_imbalance[t]));

        for (std::size_t k = 0; k < profile.interval_count; ++k) {
            stream.begin_interval(k);
            for (std::uint64_t i = 0; i < interval_ops; ++i) {
                trace.ops.push_back(stream.next());
            }
            trace.barrier_points.push_back(trace.ops.size());
        }
    });

    program.validate();
    return program;
}

} // namespace synts::workload
