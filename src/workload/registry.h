// registry.h -- the pluggable workload subsystem.
//
// PRs 0-3 hard-wired the workload axis to a closed benchmark_id enum of ten
// SPLASH-2 profiles, which capped every downstream layer (cache keys, sweep
// specs, store frames, the runner CLI) at exactly those ten programs. This
// module opens the axis:
//
//   workload_key       a stable identity -- a human-readable registry name
//                      plus a 64-bit digest of (family, parameters). The
//                      digest, not the enum ordinal, is what cache tiers and
//                      store frames key on, so the key space is unbounded.
//   workload_registry  name -> profile-factory map. The ten SPLASH-2
//                      profiles are the built-in set; parametric scenario
//                      families (workload/scenarios.h) register concrete
//                      instances, and callers may register their own.
//
// Identity rules:
//   * a key's `id` folds the producing family and its full parameter set
//     (never the display name alone), so two distinct (family, params)
//     pairs always digest differently;
//   * the registry rejects duplicate names AND duplicate ids -- one name
//     per workload, one workload per identity. Registering identical
//     params under two names would alias one artifact-cache identity to
//     two entries, so it is refused rather than silently shared.
//
// The built-in SPLASH-2 keys are pure functions of the enum (no registry
// needed), which keeps `benchmark_id -> workload_key` an implicit, lossless
// conversion: every enum-typed call site in the benches, examples and tests
// keeps compiling against the key-typed core APIs.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/thread_safety.h"
#include "workload/splash2.h"

namespace synts::workload {

/// Stable identity of a registered workload (see file comment).
struct workload_key {
    std::string name;     ///< registry name, e.g. "Radix" or "lock_ladder"
    std::uint64_t id = 0; ///< digest of (family, params) -- the cache identity

    workload_key() = default;
    workload_key(std::string name, std::uint64_t id)
        : name(std::move(name)), id(id)
    {
    }
    /// Implicit on purpose: the built-in ten keep their enum spelling at
    /// every call site (benches, examples, tests) while the core APIs are
    /// key-typed. Equivalent to builtin_key(benchmark).
    workload_key(benchmark_id benchmark); // NOLINT(google-explicit-constructor)

    friend bool operator==(const workload_key&, const workload_key&) = default;
};

/// Prints "name#idhex" (gtest failure messages, diagnostics).
std::ostream& operator<<(std::ostream& out, const workload_key& key);

/// The key of a built-in SPLASH-2 benchmark: name = benchmark_name(id),
/// id = digest("splash2", ordinal). Pure function, stable across runs.
[[nodiscard]] workload_key builtin_key(benchmark_id id);

/// Builds the concrete profile of a workload for `thread_count` threads.
/// Must be deterministic: equal (factory, thread_count) -> equal profile.
using profile_factory = std::function<benchmark_profile(std::size_t thread_count)>;

/// Thread-safe name -> factory map (see file comment for identity rules).
/// All members may be called concurrently; registration is expected to
/// happen up front, but late registration is safe too.
class workload_registry {
public:
    workload_registry() = default;

    workload_registry(const workload_registry& other);
    workload_registry& operator=(const workload_registry&) = delete;

    /// Registers `factory` under `key`. Throws std::invalid_argument when
    /// the name or the id is already taken, or when name is empty /
    /// factory is null.
    void add(workload_key key, profile_factory factory);

    /// Parses and registers a parametric scenario instance from its CLI
    /// definition string, "family:name=NAME[,param=value]..." (grammar in
    /// workload/scenarios.h), and returns the new key -- identical to the
    /// key the family's programmatic register_* helper would produce for
    /// equal params, so CLI-defined instances share cache/store identity
    /// with compiled-in ones. Throws std::invalid_argument on grammar or
    /// value errors and on duplicate name/identity.
    workload_key register_defined(std::string_view definition);

    /// True when `name` is registered.
    [[nodiscard]] bool contains(std::string_view name) const;

    /// The key registered under `name`; throws std::out_of_range with the
    /// offending name when unknown.
    [[nodiscard]] workload_key key(std::string_view name) const;

    /// The profile of `key` for `thread_count` threads. Looks the factory
    /// up by key.id; throws std::out_of_range when no workload with that
    /// identity is registered (an unknown key must never silently map to
    /// some other workload's profile).
    [[nodiscard]] benchmark_profile make_profile(const workload_key& key,
                                                 std::size_t thread_count) const;

    /// Every registered key, in registration order (stable, so CLI listings
    /// and tests are deterministic).
    [[nodiscard]] std::vector<workload_key> keys() const;

    /// Number of registered workloads.
    [[nodiscard]] std::size_t size() const;

    /// A fresh registry holding the built-in set: the ten SPLASH-2 profiles
    /// plus the default instances of each scenario family
    /// (workload/scenarios.h). Use for isolated tests.
    [[nodiscard]] static workload_registry with_builtins();

    /// The process-wide registry the characterization pipeline resolves
    /// keys against. Starts as with_builtins(); callers may add() more.
    [[nodiscard]] static workload_registry& global();

private:
    struct entry {
        workload_key key;
        profile_factory factory;
    };

    /// A leaf lock held only for map access -- factories are copied out and
    /// invoked unlocked. The speculator takes it under its own mutex
    /// (rank speculator < workload_registry).
    mutable util::annotated_mutex mutex_{util::lock_rank::workload_registry,
                                         "workload_registry"};
    std::vector<entry> entries_ SYNTS_GUARDED_BY(mutex_);   ///< registration order
    std::unordered_map<std::string, std::size_t> by_name_
        SYNTS_GUARDED_BY(mutex_);                           ///< name -> entries_ index
    std::unordered_map<std::uint64_t, std::size_t> by_id_
        SYNTS_GUARDED_BY(mutex_);                           ///< id -> entries_ index
};

} // namespace synts::workload
