// splash2.h -- synthetic SPLASH-2 workload profiles.
//
// The paper characterizes ten SPLASH-2 benchmarks on a 4-core Alpha CMP
// (Section 5.4). SPLASH-2 binaries and gem5 are not available offline, so
// each benchmark is modeled as a *profile*: per-thread instruction mixes,
// operand-value distributions, memory/branch behavior, and barrier-interval
// structure. The profiles are calibrated so the cross-layer characterization
// reproduces the paper's qualitative facts:
//
//   * Radix, FMM, LU-contig, LU-ncontig, Barnes, Raytrace, Cholesky --
//     heterogeneous per-thread error-probability curves (Radix thread 0
//     roughly 4x the lowest thread, Fig. 3.5; FMM error scale ~1e-3 vs
//     Radix ~1e-1, Fig. 6.17).
//   * FFT, Ocean, Water-sp -- homogeneous curves across threads; FFT's
//     errors are so frequent that no useful speculation is possible
//     (Section 5.4), so these three are excluded from the reported seven.
//
// The operand-distribution knobs map to circuit behavior as follows.
// SimpleALU: two's-complement adds whose operands look like
// (2^k - 1) + small sensitize k-bit carry ripples -- `long_carry_fraction`
// and the k-range control how often and how deeply the carry chain is
// exercised. ComplexALU: multiplier path depth tracks operand magnitude
// (`mul_magnitude_*`). Decode: one-hot decoder + PLA toggling tracks opcode
// variety and rs==rt collisions (`opcode_variety`, `register_collision_fraction`).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "arch/isa.h"
#include "arch/trace.h"
#include "util/parallel.h"

namespace synts::workload {

/// The ten characterized CMP benchmarks.
enum class benchmark_id : std::uint8_t {
    fmm = 0,
    radix,
    lu_contig,
    lu_ncontig,
    fft,
    water_sp,
    barnes,
    raytrace,
    cholesky,
    ocean,
};

/// Number of modeled benchmarks.
inline constexpr std::size_t benchmark_count = 10;

/// Display name matching the paper's figures.
[[nodiscard]] std::string_view benchmark_name(benchmark_id id) noexcept;

/// All ten benchmarks.
[[nodiscard]] std::span<const benchmark_id> all_benchmarks() noexcept;

/// The seven benchmarks the paper reports results for (heterogeneous error
/// probabilities): Barnes, Cholesky, FMM, LU-contig, LU-ncontig, Radix,
/// Raytrace.
[[nodiscard]] std::span<const benchmark_id> reported_benchmarks() noexcept;

/// Per-thread behavioral character controlling operand/instruction streams.
struct thread_character {
    /// Instruction mix weights indexed by arch::op_class (unnormalized).
    std::array<double, arch::op_class_count> mix{};

    /// Rate of carry-chain sensitization events on the SimpleALU: each
    /// event emits a quiescent (0, 0) add followed by the (2^k - 1) + 1
    /// pattern, so the k-bit carry ripple is actually *toggled* (a long
    /// path only errors when a transition traverses it).
    double long_carry_fraction = 0.02;
    /// Inclusive range of the sensitized carry length k for those events.
    std::uint32_t carry_len_min = 12;
    std::uint32_t carry_len_max = 32;

    /// Rate of multiplier-array sensitization events on the ComplexALU:
    /// a (0, 0) multiply followed by (2^ka - 1) x (2^kb - 1).
    double mul_sensitize_fraction = 0.02;
    /// Multiplier operand magnitude: leading-one position is drawn
    /// uniformly from [mul_magnitude_min_bits, mul_magnitude_max_bits]
    /// (also the range of ka/kb for sensitization events).
    std::uint32_t mul_magnitude_min_bits = 4;
    std::uint32_t mul_magnitude_max_bits = 16;

    /// Number of distinct static opcodes the thread cycles through (1..64);
    /// higher variety toggles more decoder paths.
    std::uint32_t opcode_variety = 16;
    /// Fraction of instructions encoding rs == rt (sensitizes the decode
    /// stage's hazard-detection chain).
    double register_collision_fraction = 0.05;
    /// Skew of the colliding register's index: the index is
    /// floor(32 * u^bias), so bias = 1 is uniform and larger values favor
    /// low-numbered registers -- which enter the decode hazard chain at its
    /// deepest point.
    double collision_low_register_bias = 1.0;

    /// Memory behavior: bytes touched (working set) and the probability an
    /// access is sequential rather than random within the set.
    std::uint64_t working_set_bytes = 1 << 20;
    double sequential_access_fraction = 0.7;

    /// Branch behavior: probability a branch is taken, and probability the
    /// direction repeats the previous one (predictability).
    double branch_taken_bias = 0.6;
    double branch_repeat_fraction = 0.85;
};

/// Full benchmark profile: per-thread characters plus interval structure.
/// Produced by make_profile for the built-in ten and by the scenario-family
/// factories (workload/scenarios.h) for everything else.
struct benchmark_profile {
    benchmark_id id = benchmark_id::fmm; ///< meaningful for built-ins only
    std::string name;
    /// Salt XORed into the trace-generation seed so distinct workloads draw
    /// from distinct RNG streams even at equal seeds. make_profile sets it
    /// to (benchmark ordinal << 32) -- the exact pre-registry value, so the
    /// built-in traces are bit-identical to every earlier release; scenario
    /// factories use their (family, params) identity digest.
    std::uint64_t stream_salt = 0;
    std::size_t thread_count = 4;
    std::size_t interval_count = 3; ///< paper: 3 barrier intervals or completion
    std::uint64_t instructions_per_interval = 20000; ///< per thread, before imbalance
    std::vector<thread_character> threads;
    /// Per-thread work multiplier on N_i (1.0 = perfectly balanced).
    std::vector<double> work_imbalance;
};

/// The calibrated profile of `id` for `thread_count` threads (the CMP study
/// uses 4). Threads beyond the calibrated set repeat cyclically.
[[nodiscard]] benchmark_profile make_profile(benchmark_id id, std::size_t thread_count = 4);

/// Generates the full program trace (all threads, all intervals) for a
/// profile. Deterministic in (profile, seed). Per-thread stream seeds are
/// derived serially before any generation, so `parallel` (which fans the
/// per-thread generation out) cannot change the result: output is
/// bit-identical to the serial path for any executor.
[[nodiscard]] arch::program_trace generate_program_trace(const benchmark_profile& profile,
                                                         std::uint64_t seed,
                                                         const util::parallel_for_fn& parallel = {});

} // namespace synts::workload
