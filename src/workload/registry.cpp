#include "workload/registry.h"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/hashing.h"
#include "workload/scenarios.h"

namespace synts::workload {

workload_key::workload_key(benchmark_id benchmark) : workload_key(builtin_key(benchmark))
{
}

std::ostream& operator<<(std::ostream& out, const workload_key& key)
{
    return out << key.name << '#' << std::hex << key.id << std::dec;
}

workload_key builtin_key(benchmark_id id)
{
    util::digest_builder h;
    h.text("splash2");
    h.value(id);
    return {std::string(benchmark_name(id)), h.digest()};
}

workload_registry::workload_registry(const workload_registry& other)
{
    const util::mutex_lock lock(other.mutex_);
    entries_ = other.entries_;
    by_name_ = other.by_name_;
    by_id_ = other.by_id_;
}

void workload_registry::add(workload_key key, profile_factory factory)
{
    if (key.name.empty()) {
        throw std::invalid_argument("workload_registry: empty workload name");
    }
    if (!factory) {
        throw std::invalid_argument("workload_registry: null profile factory for \"" +
                                    key.name + "\"");
    }
    const util::mutex_lock lock(mutex_);
    if (by_name_.contains(key.name)) {
        throw std::invalid_argument("workload_registry: duplicate workload name \"" +
                                    key.name + "\"");
    }
    if (const auto it = by_id_.find(key.id); it != by_id_.end()) {
        throw std::invalid_argument(
            "workload_registry: workload \"" + key.name +
            "\" has the same identity digest as \"" + entries_[it->second].key.name +
            "\" (identical family + params may not be registered twice)");
    }
    const std::size_t index = entries_.size();
    by_name_.emplace(key.name, index);
    by_id_.emplace(key.id, index);
    entries_.push_back(entry{std::move(key), std::move(factory)});
}

workload_key workload_registry::register_defined(std::string_view definition)
{
    scenario_definition parsed = parse_scenario_definition(definition);
    parsed.install(*this); // throws on duplicate name/identity
    return parsed.key;
}

bool workload_registry::contains(std::string_view name) const
{
    const util::mutex_lock lock(mutex_);
    return by_name_.contains(std::string(name));
}

workload_key workload_registry::key(std::string_view name) const
{
    const util::mutex_lock lock(mutex_);
    const auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) {
        throw std::out_of_range("workload_registry: unknown workload \"" +
                                std::string(name) + "\"");
    }
    return entries_[it->second].key;
}

benchmark_profile workload_registry::make_profile(const workload_key& key,
                                                  std::size_t thread_count) const
{
    profile_factory factory;
    {
        const util::mutex_lock lock(mutex_);
        const auto it = by_id_.find(key.id);
        if (it == by_id_.end()) {
            throw std::out_of_range("workload_registry: unknown workload \"" + key.name +
                                    "\" (identity not registered)");
        }
        factory = entries_[it->second].factory;
    }
    // Invoke outside the lock: factories may be arbitrarily heavy and must
    // not serialize concurrent profile construction of unrelated workloads.
    return factory(thread_count);
}

std::vector<workload_key> workload_registry::keys() const
{
    const util::mutex_lock lock(mutex_);
    std::vector<workload_key> keys;
    keys.reserve(entries_.size());
    for (const entry& e : entries_) {
        keys.push_back(e.key);
    }
    return keys;
}

std::size_t workload_registry::size() const
{
    const util::mutex_lock lock(mutex_);
    return entries_.size();
}

workload_registry workload_registry::with_builtins()
{
    workload_registry registry;
    for (const benchmark_id id : all_benchmarks()) {
        // Qualified: the member make_profile would otherwise shadow the
        // free SPLASH-2 factory inside this member function.
        registry.add(builtin_key(id), [id](std::size_t thread_count) {
            return workload::make_profile(id, thread_count);
        });
    }
    register_default_scenarios(registry);
    return registry;
}

workload_registry& workload_registry::global()
{
    static workload_registry registry = with_builtins();
    return registry;
}

} // namespace synts::workload
