// scenarios.h -- parametric scenario families for the workload registry.
//
// The paper's SynTS advantage lives exactly where per-thread timing-error
// behavior is heterogeneous (Radix/FMM vs. the homogeneous FFT trio), and
// the related speculative-multithreading literature (Prophet; Durbhakula's
// multithreaded branch-prediction study) stresses program shapes the ten
// SPLASH-2 profiles cannot express: lock convoys, skewed pipelines,
// irregular pointer-chasing with heavy-tailed work distributions. Each
// family here is a pure function
//
//   params -> benchmark_profile (per-thread characters + imbalance)
//
// so ONE family yields arbitrarily many concrete registry workloads -- the
// parameter struct, not an enum ordinal, is the identity. Every family:
//
//   * digests its full parameter set (params.digest()); the workload_key id
//     folds the family tag + that digest, so distinct (family, params)
//     pairs never collide in any cache tier or store frame;
//   * salts trace generation with that same identity digest, so two
//     parameterizations produce distinct operand streams even at equal
//     experiment seeds;
//   * is deterministic: equal (params, thread_count, seed) reproduce the
//     profile and the generated trace bit for bit.
//
// register_default_scenarios() installs two calibrated instances of each
// family (a default and a stressed variant); tests and downstream users
// register their own instances with the register_* helpers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/registry.h"
#include "workload/splash2.h"

namespace synts::workload {

// -- lock-contention ladder --------------------------------------------------
// Generalizes core/critical_sections' lock-aware evaluation to the workload
// layer: threads climb a contention ladder -- thread t's share of
// critical-section work rises with its rung -- producing a lock convoy
// whose head (the highest rung) is both the slowest arrival and, through
// shared-counter updates deep in the carry chain, the most error-prone
// thread. That coupling is precisely the slack SynTS harvests.

struct lock_ladder_params {
    /// Number of distinct contention rungs; threads cycle through them
    /// (thread t sits on rung t % rungs, rung rungs-1 is the convoy head).
    std::size_t rungs = 4;
    /// Fraction of a rung-0 thread's work executed under the hot lock.
    double base_contention = 0.10;
    /// Additive contention increase per rung (clamped so contention <= 0.9).
    double contention_step = 0.15;
    /// Critical-section length multiplier: scales how much extra work (and
    /// how much deeper a carry-chain profile) lock holders accumulate.
    double hold_scale = 1.0;
    /// Modeled hot locks; more locks spread the convoy (lower imbalance).
    std::size_t hot_locks = 1;

    /// Digest over every field (the family identity with the tag).
    [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// Key of a lock-ladder instance registered under `name`.
[[nodiscard]] workload_key lock_ladder_key(std::string name,
                                           const lock_ladder_params& params);
/// The concrete profile (pure, deterministic).
[[nodiscard]] benchmark_profile make_lock_ladder_profile(const lock_ladder_params& params,
                                                         std::size_t thread_count);
/// Registers the instance; throws on duplicate name/identity (registry rules).
void register_lock_ladder(workload_registry& registry, std::string name,
                          const lock_ladder_params& params);

// -- producer-consumer pipeline ---------------------------------------------
// A software pipeline with imbalanced stage weights: thread t runs stage
// t % stages. Producers are memory-streaming, transforms are ALU/multiplier
// heavy, consumers are store/branch bound; the stage weights set the
// per-thread work imbalance, and queue pressure converts the imbalance into
// spin-like branchy waiting on the light stages.

struct pipeline_params {
    /// Relative work per stage, front = producer, back = consumer. Must be
    /// non-empty with positive entries; normalized so the heaviest stage
    /// carries weight 1.
    std::vector<double> stage_weights = {1.0, 0.55, 0.30};
    /// Backpressure in [0, 1]: how hard light stages hammer full/empty
    /// queue checks (raises branch traffic and hazard collisions).
    double queue_pressure = 0.5;
    /// Per-stage payload bytes flowing through the queues (working set).
    std::uint64_t item_bytes = 2ull << 20;

    [[nodiscard]] std::uint64_t digest() const noexcept;
};

[[nodiscard]] workload_key pipeline_key(std::string name, const pipeline_params& params);
[[nodiscard]] benchmark_profile make_pipeline_profile(const pipeline_params& params,
                                                      std::size_t thread_count);
void register_pipeline(workload_registry& registry, std::string name,
                       const pipeline_params& params);

// -- irregular graph walk ----------------------------------------------------
// Frontier-parallel graph traversal with a heavy-tailed degree
// distribution: each thread's frontier share is drawn (deterministically,
// from mix_seed) from a Pareto tail, so a few threads chase hubs -- huge
// working sets, unpredictable branches, deep address-arithmetic carry
// chains -- while the rest idle at the barrier.

struct graph_walk_params {
    /// Pareto tail exponent of per-thread frontier shares; smaller = heavier
    /// tail = starker imbalance. Must be > 0.
    double tail_alpha = 1.3;
    /// Fraction of accesses hitting hub vertices (register-collision and
    /// branch-misprediction pressure).
    double hub_fraction = 0.08;
    /// Traversal working set in bytes.
    std::uint64_t working_set_bytes = 16ull << 20;
    /// Seed of the deterministic per-thread tail draw (part of identity:
    /// two seeds are two different graphs).
    std::uint64_t mix_seed = 1;

    [[nodiscard]] std::uint64_t digest() const noexcept;
};

[[nodiscard]] workload_key graph_walk_key(std::string name,
                                          const graph_walk_params& params);
[[nodiscard]] benchmark_profile make_graph_walk_profile(const graph_walk_params& params,
                                                        std::size_t thread_count);
void register_graph_walk(workload_registry& registry, std::string name,
                         const graph_walk_params& params);

// -- CLI-defined instances ---------------------------------------------------
// The "--define" grammar: one string names a family, an instance name, and
// any subset of the family's parameters (unnamed ones keep their defaults):
//
//   family:name=NAME[,param=value]...
//
//   lock_ladder:  rungs=U  base_contention=F  contention_step=F
//                 hold_scale=F  hot_locks=U
//   pipeline:     stage_weights=F+F+...  queue_pressure=F  item_bytes=U
//   graph_walk:   tail_alpha=F  hub_fraction=F  working_set_bytes=U
//                 mix_seed=U
//
// (U = unsigned integer, F = decimal; stage_weights is a '+'-separated
// list because ',' separates parameters.) Example:
//
//   lock_ladder:name=ll9,base_contention=0.9,rungs=30
//
// Parsing is strict: an unknown family or parameter, a duplicate or
// malformed assignment, a missing name, or a value the family's own
// validation rejects all throw std::invalid_argument naming the offense --
// the runner CLI surfaces these as usage errors.

/// A parsed scenario definition: the family and instance name, the
/// registry key its parameters derive to (same identity the programmatic
/// register_* helpers produce -- equal params, equal key), and an
/// `install` closure that performs the registration (delegating to the
/// family's register_* helper, so CLI-defined and compiled-in instances
/// are indistinguishable downstream).
struct scenario_definition {
    std::string family;
    std::string name;
    workload_key key;
    std::function<void(workload_registry&)> install;
};

/// Parses the grammar above. Throws std::invalid_argument on any error;
/// never touches a registry (install does that).
[[nodiscard]] scenario_definition parse_scenario_definition(std::string_view text);

// -- default instances -------------------------------------------------------

/// Registers the calibrated default + stressed instance of each family:
/// lock_ladder, lock_ladder_heavy, pipeline, pipeline_skewed, graph_walk,
/// graph_walk_hubby. Called by workload_registry::with_builtins().
void register_default_scenarios(workload_registry& registry);

} // namespace synts::workload
