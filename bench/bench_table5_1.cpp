// Table 5.1: voltage versus nominal clock period.
//
// Paper: HSPICE simulation of 22 nm ring oscillators (PTM models).
// Here:  31-stage inverter ring with the alpha-power law fitted to the
//        published table; the bench prints the fit, the regenerated
//        normalized periods, and the exact table used by the optimizer.

#include <cstdio>

#include "bench_common.h"
#include "circuit/ring_oscillator.h"
#include "circuit/voltage_model.h"

int main()
{
    using namespace synts;

    bench::banner("Table 5.1", "Voltage versus nominal clock period");

    const circuit::alpha_power_fit fit = circuit::fit_alpha_power_law();
    std::printf("  alpha-power fit: Vth = %.3f V, alpha = %.3f, rms residual = %.4f\n\n",
                fit.vth, fit.alpha, fit.rms_error);

    const circuit::ring_oscillator ring(31, fit);
    const auto points = ring.sweep(circuit::paper_voltage_levels());
    const auto expected = circuit::paper_tnom_multipliers();

    util::text_table table({"Vdd (V)", "tnom paper (x)", "tnom ring-osc (x)",
                            "ring period (ps)", "error (%)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        table.begin_row();
        table.cell(points[i].vdd, 2);
        table.cell(expected[i], 2);
        table.cell(points[i].normalized_period, 3);
        table.cell(points[i].period_ps, 1);
        table.cell(100.0 * (points[i].normalized_period - expected[i]) / expected[i], 1);
    }
    std::printf("%s\n", table.render().c_str());

    double worst = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        worst = std::max(worst,
                         std::abs(points[i].normalized_period - expected[i]) / expected[i]);
    }
    bench::note("The optimizer consumes the exact published table; the ring");
    bench::note("oscillator regeneration validates its shape from first principles.");
    std::printf("  worst relative deviation: %.1f%%\n\n", 100.0 * worst);
    return 0;
}
