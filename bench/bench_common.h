// bench_common.h -- shared helpers for the figure/table reproduction
// benches. Every bench prints a banner, the regenerated data, and a
// paper-vs-measured comparison block so EXPERIMENTS.md can quote it
// directly.

#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "util/table.h"

namespace synts::bench {

/// Prints the standard banner for one reproduced artifact.
inline void banner(const std::string& artifact, const std::string& caption)
{
    std::printf("================================================================\n");
    std::printf("%s -- %s\n", artifact.c_str(), caption.c_str());
    std::printf("================================================================\n");
}

/// Prints one paper-vs-measured line.
inline void compare_line(const std::string& what, double measured, double paper,
                         int precision = 3)
{
    std::printf("  %-48s %s\n", what.c_str(),
                util::format_vs_paper(measured, paper, precision).c_str());
}

/// Prints a free-form observation line.
inline void note(const std::string& text)
{
    std::printf("  %s\n", text.c_str());
}

} // namespace synts::bench
