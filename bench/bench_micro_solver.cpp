// Microbenchmark: optimizer runtime scaling.
//
// SynTS-Poly is O(M^2 Q^2 S^2) -- polynomial, suitable for per-barrier
// online use -- while exhaustive search is (QS)^M. This bench demonstrates
// the scaling claim on randomized instances and measures the exact B&B
// solver for comparison.

#include <benchmark/benchmark.h>

#include "../tests/solver_fixtures.h"
#include "core/milp.h"
#include "core/solver.h"

namespace {

using synts::test::make_random_instance;

void bm_synts_poly_threads(benchmark::State& state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    auto inst = make_random_instance(m, 7, 6, 42 + m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::solve_synts_poly(inst.input));
    }
    state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(bm_synts_poly_threads)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void bm_synts_poly_grid(benchmark::State& state)
{
    const auto q = static_cast<std::size_t>(state.range(0));
    auto inst = make_random_instance(4, q, q, 77 + q);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::solve_synts_poly(inst.input));
    }
    state.SetComplexityN(static_cast<benchmark::IterationCount>(q * q));
}
BENCHMARK(bm_synts_poly_grid)->DenseRange(2, 12, 2)->Complexity();

void bm_branch_and_bound(benchmark::State& state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    auto inst = make_random_instance(m, 7, 6, 13 + m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::solve_branch_and_bound(inst.input));
    }
}
BENCHMARK(bm_branch_and_bound)->DenseRange(2, 8, 2);

void bm_exhaustive(benchmark::State& state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    auto inst = make_random_instance(m, 4, 4, 5 + m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::solve_exhaustive(inst.input));
    }
}
BENCHMARK(bm_exhaustive)->DenseRange(2, 4, 1);

void bm_per_core_ts(benchmark::State& state)
{
    auto inst = make_random_instance(4, 7, 6, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::solve_per_core_ts(inst.input));
    }
}
BENCHMARK(bm_per_core_ts);

void bm_milp_model_build(benchmark::State& state)
{
    auto inst = make_random_instance(4, 7, 6, 9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synts::core::milp_model::build(inst.input));
    }
}
BENCHMARK(bm_milp_model_build);

} // namespace

BENCHMARK_MAIN();
