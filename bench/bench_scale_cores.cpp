// Scaling study: SynTS on wider CMPs.
//
// The paper's abstract frames SynTS as jointly optimizing "the many-core
// processor", but evaluates M = 4. This bench sweeps the core count: with
// more threads, Per-core TS wastes energy on more slack threads while the
// barrier is still closed by the slowest one, so SynTS's advantage should
// persist or grow -- and SynTS-Poly's polynomial runtime (vs the MILP's
// exponential worst case) is what makes the wider configurations tractable
// online.
//
// Uses the runtime's lower-level API directly (thread_pool::submit +
// experiment_cache): each core count's experiment and policy runs are one
// pool task (the configs differ per task, so the declarative sweep_spec
// doesn't fit), results land in index-assigned slots, and the solver
// latency is measured serially afterwards against the cached experiments so
// the measurement never contends with the policy tasks.

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/solver.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Scaling", "SynTS vs baselines as the core count grows (Radix)");

    const std::vector<std::size_t> core_counts = {2, 4, 8, 16};

    struct row {
        double synts_edp = 0.0;
        double per_core_edp = 0.0;
        double no_ts_edp = 0.0;
        double nominal_edp = 0.0;
        double theta = 0.0;
    };
    std::vector<row> rows(core_counts.size());

    runtime::thread_pool pool;
    runtime::experiment_cache& cache = runtime::experiment_cache::process_cache();

    std::vector<std::future<void>> tasks;
    tasks.reserve(core_counts.size());
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        tasks.push_back(pool.submit([&, i] {
            core::experiment_config cfg;
            cfg.thread_count = core_counts[i];
            const auto experiment = cache.get_or_create(
                workload::benchmark_id::radix, circuit::pipe_stage::simple_alu, cfg);
            const double theta = experiment->equal_weight_theta();
            rows[i].theta = theta;
            rows[i].nominal_edp =
                experiment->run_policy(policy_kind::nominal, theta).sum.edp();
            rows[i].synts_edp =
                experiment->run_policy(policy_kind::synts_offline, theta).sum.edp();
            rows[i].per_core_edp =
                experiment->run_policy(policy_kind::per_core_ts, theta).sum.edp();
            rows[i].no_ts_edp =
                experiment->run_policy(policy_kind::no_ts, theta).sum.edp();
        }));
    }
    for (auto& task : tasks) {
        task.get();
    }

    util::text_table table({"cores", "SynTS EDP", "PerCore EDP", "NoTS EDP",
                            "gain vs PerCore (%)", "poly solve (us/interval)"});
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        // Solver latency at this width (the online budget question),
        // measured serially against the cached experiment.
        core::experiment_config cfg;
        cfg.thread_count = core_counts[i];
        const auto experiment = cache.get_or_create(
            workload::benchmark_id::radix, circuit::pipe_stage::simple_alu, cfg);
        const core::solver_input input = experiment->make_solver_input(0, rows[i].theta);
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int reps = 20;
        for (int r = 0; r < reps; ++r) {
            (void)core::solve_synts_poly(input);
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double micros =
            std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;

        table.begin_row();
        table.cell(static_cast<long long>(core_counts[i]));
        table.cell(rows[i].synts_edp / rows[i].nominal_edp, 3);
        table.cell(rows[i].per_core_edp / rows[i].nominal_edp, 3);
        table.cell(rows[i].no_ts_edp / rows[i].nominal_edp, 3);
        table.cell(100.0 * (1.0 - rows[i].synts_edp / rows[i].per_core_edp), 1);
        table.cell(micros, 1);
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("SynTS's EDP advantage over Per-core TS persists as the machine");
    bench::note("widens, and the polynomial optimizer stays in the tens-of-");
    bench::note("microseconds range per barrier interval -- the practicality");
    bench::note("argument behind Algorithm 1.");
    std::printf("\n");
    return 0;
}
