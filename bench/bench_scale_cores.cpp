// Scaling study: SynTS on wider CMPs.
//
// The paper's abstract frames SynTS as jointly optimizing "the many-core
// processor", but evaluates M = 4. This bench sweeps the core count: with
// more threads, Per-core TS wastes energy on more slack threads while the
// barrier is still closed by the slowest one, so SynTS's advantage should
// persist or grow -- and SynTS-Poly's polynomial runtime (vs the MILP's
// exponential worst case) is what makes the wider configurations tractable
// online.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/solver.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Scaling", "SynTS vs baselines as the core count grows (Radix)");

    util::text_table table({"cores", "SynTS EDP", "PerCore EDP", "NoTS EDP",
                            "gain vs PerCore (%)", "poly solve (us/interval)"});

    for (const std::size_t cores : {2ull, 4ull, 8ull, 16ull}) {
        core::experiment_config cfg;
        cfg.thread_count = cores;
        const core::benchmark_experiment experiment(workload::benchmark_id::radix,
                                                    circuit::pipe_stage::simple_alu,
                                                    cfg);
        const double theta = experiment.equal_weight_theta();

        const auto nominal = experiment.run_policy(policy_kind::nominal, theta);
        const auto synts = experiment.run_policy(policy_kind::synts_offline, theta);
        const auto per_core = experiment.run_policy(policy_kind::per_core_ts, theta);
        const auto no_ts = experiment.run_policy(policy_kind::no_ts, theta);

        // Solver latency at this width (the online budget question).
        const core::solver_input input = experiment.make_solver_input(0, theta);
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int reps = 20;
        for (int i = 0; i < reps; ++i) {
            (void)core::solve_synts_poly(input);
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double micros =
            std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;

        table.begin_row();
        table.cell(static_cast<long long>(cores));
        table.cell(synts.sum.edp() / nominal.sum.edp(), 3);
        table.cell(per_core.sum.edp() / nominal.sum.edp(), 3);
        table.cell(no_ts.sum.edp() / nominal.sum.edp(), 3);
        table.cell(100.0 * (1.0 - synts.sum.edp() / per_core.sum.edp()), 1);
        table.cell(micros, 1);
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("SynTS's EDP advantage over Per-core TS persists as the machine");
    bench::note("widens, and the polynomial optimizer stays in the tens-of-");
    bench::note("microseconds range per barrier interval -- the practicality");
    bench::note("argument behind Algorithm 1.");
    std::printf("\n");
    return 0;
}
