// Fig. 3.6: the SynTS motivational example -- four perfectly balanced
// threads race to a barrier.
//
//   (a) Nominal: same V/f everywhere, all threads arrive together.
//   (b) Step 1:  frequency up-scaling (clock period cut ~24%) -- thread 0's
//                higher error probability limits its speed-up (~7% in the
//                paper); the other threads gain more, creating slack.
//   (c) Step 2:  the slack lets threads 1-3 drop voltage (0.9 V in the
//                paper), cutting energy without hurting the barrier time.
//                Net: execution time and energy both improve (~7% each).

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/solver.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::thread_assignment;

    bench::banner("Fig. 3.6", "SynTS motivational example (balanced Radix interval)");

    core::experiment_config cfg;
    const core::benchmark_experiment experiment(workload::benchmark_id::radix,
                                                circuit::pipe_stage::simple_alu, cfg);
    const core::config_space& space = experiment.space();

    // Perfectly balanced workload, per the example's assumption.
    core::solver_input input = experiment.make_solver_input(0, 0.0);
    for (auto& w : input.workloads) {
        w = input.workloads[0];
    }

    const auto evaluate = [&](const std::vector<thread_assignment>& assignment) {
        return core::evaluate_assignment(input, assignment);
    };

    // (a) Nominal.
    const thread_assignment nominal = space.nominal_assignment();
    const auto sol_a = evaluate(std::vector<thread_assignment>(4, nominal));

    // (b) Step 1: global frequency up-scaling. The paper cuts the period by
    // 24%; our grid's closest level is r = 0.784 (21.6%).
    std::size_t step1_tsr = 0;
    for (std::size_t k = 0; k < space.tsr_count(); ++k) {
        if (space.tsr(k) >= 0.76) {
            step1_tsr = k;
            break;
        }
    }
    std::vector<thread_assignment> step1(4, thread_assignment{0, step1_tsr});
    const auto sol_b = evaluate(step1);

    // (c) Step 2: keep thread 0 (critical) as is; give every other thread
    // its cheapest config that still meets thread 0's finish time
    // (the minEnergy step of Algorithm 1).
    std::vector<thread_assignment> step2 = step1;
    const double barrier = sol_b.metrics[0].time_ps;
    for (std::size_t i = 1; i < 4; ++i) {
        double best_energy = sol_b.metrics[i].energy;
        for (std::size_t j = 0; j < space.voltage_count(); ++j) {
            for (std::size_t k = 0; k < space.tsr_count(); ++k) {
                const auto m = core::evaluate_thread(space, input.workloads[i],
                                                     *input.error_models[i],
                                                     thread_assignment{j, k},
                                                     input.params);
                if (m.time_ps <= barrier && m.energy < best_energy) {
                    best_energy = m.energy;
                    step2[i] = thread_assignment{j, k};
                }
            }
        }
    }
    const auto sol_c = evaluate(step2);

    util::text_table table({"configuration", "exec time (norm)", "energy (norm)",
                            "T1-3 voltage (V)"});
    const auto add_row = [&](const char* name, const core::interval_solution& sol) {
        table.begin_row();
        table.cell(std::string(name));
        table.cell(sol.exec_time_ps / sol_a.exec_time_ps, 3);
        table.cell(sol.total_energy / sol_a.total_energy, 3);
        table.cell(sol.metrics[1].vdd, 2);
    };
    add_row("(a) Nominal", sol_a);
    add_row("(b) Step 1: frequency up-scale", sol_b);
    add_row("(c) Step 2: voltage down-scale", sol_c);
    std::printf("%s\n", table.render().c_str());

    const double period_cut = 1.0 - space.tsr(step1_tsr);
    std::printf("  clock period reduction in step 1: %.0f%% (paper: 24%%)\n",
                100.0 * period_cut);
    bench::compare_line("thread-0 execution time reduction (step 1)",
                        100.0 * (1.0 - sol_b.metrics[0].time_ps /
                                           sol_a.metrics[0].time_ps),
                        7.0, 1);
    bench::compare_line("barrier execution time reduction (final)",
                        100.0 * (1.0 - sol_c.exec_time_ps / sol_a.exec_time_ps), 7.0, 1);
    bench::compare_line("energy reduction (final)",
                        100.0 * (1.0 - sol_c.total_energy / sol_a.total_energy), 7.0, 1);
    bench::note("Dual benefit confirmed: execution time AND energy both drop,");
    bench::note("which no per-core scheme achieves from this balanced start.");
    std::printf("\n");
    return 0;
}
