// Extension bench: SynTS beyond barriers (the conclusion's future work).
//
// Threads now hold a shared lock for part of their work; critical sections
// serialize, so the interval makespan is the larger of the slowest thread
// and the total lock occupancy (plus unhidden parallel work). This bench
// sweeps the lock-heavy thread's serial fraction and compares:
//
//   * barrier-SynTS (Algorithm 1, lock-oblivious) evaluated under the
//     lock-aware makespan, vs
//   * the lock-aware descent optimizer.
//
// The gap widens with the serial fraction: a lock-oblivious optimizer keeps
// slowing the lock holder to save energy, which stalls everyone else.

#include <cstdio>

#include "bench_common.h"
#include "core/critical_sections.h"
#include "core/experiment.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Extension",
                  "critical-section-aware SynTS (future work: beyond barriers)");

    core::experiment_config cfg;
    const core::benchmark_experiment experiment(workload::benchmark_id::radix,
                                                circuit::pipe_stage::simple_alu, cfg);
    const double theta = experiment.equal_weight_theta();
    const core::solver_input input = experiment.make_solver_input(0, theta);

    util::text_table table({"serial fraction (T0)", "barrier-SynTS cost",
                            "lock-aware cost", "improvement (%)", "T0 speeds up"});

    for (const double s0 : {0.0, 0.15, 0.3, 0.45, 0.6, 0.8}) {
        std::vector<double> fractions(experiment.thread_count(), 0.15);
        fractions[0] = s0;

        const core::interval_solution barrier_opt = core::solve_synts_poly(input);
        const double oblivious_cost =
            core::lock_aware_cost(barrier_opt, fractions, theta);
        const core::lock_aware_solution aware =
            core::solve_lock_aware_descent(input, fractions);

        // Does the lock-aware solution run the lock holder faster than the
        // lock-oblivious one?
        const bool t0_faster = aware.solution.metrics[0].time_ps <
                               barrier_opt.metrics[0].time_ps - 1e-9;

        table.begin_row();
        table.cell(s0, 2);
        table.cell(oblivious_cost, 0);
        table.cell(aware.cost, 0);
        table.cell(100.0 * (1.0 - aware.cost / oblivious_cost), 2);
        table.cell(std::string(t0_faster ? "yes" : "no"));
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("The lock-aware optimizer consistently improves on lock-oblivious");
    bench::note("SynTS (4-8% weighted cost here) and, once thread 0's serial");
    bench::note("fraction dominates the lock channel, it *accelerates* the lock");
    bench::note("holder rather than slowing it for energy -- the qualitative");
    bench::note("behavior the paper's future-work paragraph anticipates.");
    std::printf("\n");
    return 0;
}
