// bench_speculation -- the speculation quality + cancel-latency gate.
//
// Three phases, one JSON document on stdout (scripts/run_benches.sh
// captures it as BENCH_speculation.json; progress goes to stderr):
//
//  1. WARM LADDER WALK. A four-rung lock ladder is demanded rung by rung,
//     once without and once with the speculator (drained between rungs so
//     hit accounting is deterministic: every observe's prediction settles
//     before the walk arrives there). Reports spec_hit_rate
//     (hits / launched -- 3/4 on this walk: three rungs arrive on
//     speculated cells, the last rung's prediction is never claimed) and
//     wasted_work_ratio (wasted_ns / speculated-walk wall time; 0 on a
//     clean walk -- nothing is squashed). Wall-clock speedup is reported
//     for information only: it is core-count-dependent, ~1.0 on a
//     single-hardware-thread machine.
//
//  2. CANCEL LATENCY. With program artifacts pre-warmed, a cancellable
//     stage characterization is launched, cancelled mid-run, and timed
//     from cancel() to settle. The characterizer polls its token every
//     interval, so the latency must sit well under one CHUNK of intervals
//     -- the gate: best-of-rounds latency <= one chunk grain
//     (full-characterization time / total chunk count, the partition the
//     batched walk actually uses). This is the bound that makes
//     speculation preemption cheap: demand never waits longer than one
//     grain for a squashed worker.
//
//  3. BIT IDENTITY. One sweep run twice -- speculation off, speculation on
//     (single pair, so the idle gate deterministically opens and
//     speculation really launches mid-sweep) -- must emit byte-identical
//     JSON. Speculation may only change WHEN cells are computed, never
//     what they contain.
//
// Exit: non-zero when any gate fails (hits == 0, cancel latency over the
// grain, or an identity mismatch) so CI fails instead of recording a
// broken ledger entry.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/experiment_cache.h"
#include "runtime/speculator.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "runtime/thread_pool.h"
#include "workload/registry.h"
#include "workload/scenarios.h"

namespace {

using namespace synts;
using clock_type = std::chrono::steady_clock;

constexpr int ladder_rungs = 4;
constexpr int cancel_rounds = 3;
constexpr auto walk_stage = circuit::pipe_stage::decode;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Registers the bench's private ladder (distinct hold_scale so its
/// identity never collides with other registrants) and returns the rung
/// keys in walk order.
std::vector<workload::workload_key> register_bench_ladder()
{
    workload::workload_registry& registry = workload::workload_registry::global();
    std::vector<workload::workload_key> rungs;
    for (int rung = 1; rung <= ladder_rungs; ++rung) {
        workload::lock_ladder_params params;
        params.base_contention = 0.1 + 0.05 * rung;
        params.hold_scale = 2.0;
        const std::string name = "bench_spec_" + std::to_string(rung);
        if (!registry.contains(name)) {
            workload::register_lock_ladder(registry, name, params);
        }
        rungs.push_back(registry.key(name));
    }
    return rungs;
}

/// The batched characterizer's chunk partition for `thread_count` threads
/// over `interval_count` intervals on `workers` pool workers (mirrors
/// core/characterization.cpp's sizing: ~4 chunks per worker, spread over
/// the threads, clamped to [1, interval_count]).
std::size_t total_chunks(std::size_t thread_count, std::size_t interval_count,
                         std::size_t workers)
{
    const std::size_t target = 4 * (workers == 0 ? 1 : workers);
    std::size_t per_thread = (target + thread_count - 1) / thread_count;
    if (per_thread < 1) {
        per_thread = 1;
    }
    if (per_thread > interval_count) {
        per_thread = interval_count;
    }
    return per_thread * thread_count;
}

} // namespace

int main()
{
    const std::vector<workload::workload_key> rungs = register_bench_ladder();

    // ---- phase 1: warm ladder walk -------------------------------------
    std::fprintf(stderr, "== phase 1: warm ladder walk (%d rungs)\n", ladder_rungs);

    double demand_walk_s = 0.0;
    {
        runtime::experiment_cache cache;
        const auto t0 = clock_type::now();
        for (const workload::workload_key& rung : rungs) {
            (void)cache.get_or_create(rung, walk_stage);
        }
        demand_walk_s = seconds_since(t0);
    }
    std::fprintf(stderr, "   demand walk: %.3f s\n", demand_walk_s);

    double speculated_walk_s = 0.0;
    std::uint64_t launched = 0;
    std::uint64_t hits = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t wasted_ns = 0;
    {
        runtime::thread_pool pool(2);
        runtime::experiment_cache cache;
        runtime::speculator engine(pool, cache, /*max_inflight=*/1);
        const auto t0 = clock_type::now();
        for (const workload::workload_key& rung : rungs) {
            engine.observe(rung, walk_stage, {});
            (void)cache.get_or_create(rung, walk_stage);
            engine.drain(); // deterministic: the prediction settles first
        }
        speculated_walk_s = seconds_since(t0);
        launched = engine.launched();
        hits = engine.hits();
        cancelled = engine.cancelled();
        wasted_ns = engine.wasted_ns();
    }
    const double spec_hit_rate =
        launched > 0 ? static_cast<double>(hits) / static_cast<double>(launched) : 0.0;
    const double wasted_work_ratio =
        speculated_walk_s > 0.0
            ? static_cast<double>(wasted_ns) / (speculated_walk_s * 1e9)
            : 0.0;
    const double walk_speedup =
        speculated_walk_s > 0.0 ? demand_walk_s / speculated_walk_s : 0.0;
    std::fprintf(stderr,
                 "   speculated walk: %.3f s (%llu launched, %llu hits, "
                 "%llu cancelled)\n",
                 speculated_walk_s, static_cast<unsigned long long>(launched),
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(cancelled));

    // ---- phase 2: cancel latency ---------------------------------------
    std::fprintf(stderr, "== phase 2: cancel latency (%d rounds)\n", cancel_rounds);

    runtime::experiment_cache cancel_cache;
    core::experiment_config cancel_cfg;
    const auto program = cancel_cache.get_or_create_program(rungs[0], cancel_cfg);
    const std::size_t chunks = total_chunks(
        cancel_cfg.thread_count, program->interval_count(),
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1));

    // Full-characterization reference on the warm program: the stage get
    // pays characterization only, which is what a cancel interrupts.
    const auto t_full0 = clock_type::now();
    (void)cancel_cache.get_or_create(rungs[0], walk_stage, cancel_cfg);
    const double t_full_s = seconds_since(t_full0);
    const double chunk_grain_s = t_full_s / static_cast<double>(chunks);
    std::fprintf(stderr, "   full stage characterization: %.3f s, %zu chunks, "
                 "grain %.4f s\n",
                 t_full_s, chunks, chunk_grain_s);

    // Rounds cancel a FRESH stage key mid-characterization. The first two
    // reuse the warm program (sibling stages); the third pays a new
    // program (different seed) to also cover the cross-program path.
    struct round_spec {
        circuit::pipe_stage stage;
        std::uint64_t seed;
    };
    const round_spec round_specs[cancel_rounds] = {
        {circuit::pipe_stage::simple_alu, 0},
        {circuit::pipe_stage::complex_alu, 0},
        {circuit::pipe_stage::decode, 1},
    };

    double cancel_latency_s = -1.0;
    int valid_rounds = 0;
    for (int round = 0; round < cancel_rounds; ++round) {
        core::experiment_config cfg = cancel_cfg;
        if (round_specs[round].seed != 0) {
            cfg.seed = cancel_cfg.seed + round_specs[round].seed;
            (void)cancel_cache.get_or_create_program(rungs[0], cfg); // pre-warm
        }
        runtime::cancel_source source;
        std::atomic<bool> completed{false};
        const auto launch = clock_type::now();
        std::thread worker([&] {
            try {
                (void)cancel_cache.get_or_create(rungs[0], round_specs[round].stage,
                                                 cfg, nullptr, nullptr,
                                                 source.token());
                completed.store(true);
            } catch (const runtime::operation_cancelled&) {
            }
        });
        // Let the characterization get well underway before pulling the
        // trigger (30% of the reference duration).
        std::this_thread::sleep_for(
            std::chrono::duration<double>(0.3 * t_full_s));
        const auto c0 = clock_type::now();
        (void)source.cancel("bench cancel");
        worker.join();
        const double latency = seconds_since(c0);
        (void)launch;
        if (completed.load()) {
            std::fprintf(stderr,
                         "   round %d: finished before the cancel (invalid)\n",
                         round + 1);
            continue;
        }
        ++valid_rounds;
        if (cancel_latency_s < 0.0 || latency < cancel_latency_s) {
            cancel_latency_s = latency;
        }
        std::fprintf(stderr, "   round %d: cancel settled in %.4f s\n", round + 1,
                     latency);
    }
    const bool cancel_ok =
        valid_rounds > 0 && cancel_latency_s <= chunk_grain_s;

    // ---- phase 3: bit identity -----------------------------------------
    std::fprintf(stderr, "== phase 3: sweep bit identity\n");

    runtime::sweep_spec spec;
    spec.benchmarks = {rungs[0]};
    spec.stages = {walk_stage};
    spec.policies = {core::policy_kind::synts_offline, core::policy_kind::no_ts};
    spec.theta_multipliers = {0.5, 1.0, 2.0};

    std::string baseline_json;
    {
        runtime::thread_pool pool(2);
        runtime::experiment_cache cache;
        const runtime::sweep_scheduler scheduler(pool, cache);
        std::ostringstream out;
        runtime::write_sweep_json(scheduler.run(spec), out);
        baseline_json = out.str();
    }
    std::string speculated_json;
    std::uint64_t sweep_launched = 0;
    {
        runtime::thread_pool pool(2);
        runtime::experiment_cache cache;
        runtime::speculator engine(pool, cache, /*max_inflight=*/2);
        runtime::sweep_options options;
        options.speculate = &engine;
        const runtime::sweep_scheduler scheduler(pool, cache);
        std::ostringstream out;
        runtime::write_sweep_json(scheduler.run(spec, options), out);
        engine.drain();
        sweep_launched = engine.launched();
        speculated_json = out.str();
    }
    const bool identity_ok =
        !baseline_json.empty() && baseline_json == speculated_json;
    std::fprintf(stderr, "   identity %s (%llu speculations during the sweep)\n",
                 identity_ok ? "ok" : "MISMATCH",
                 static_cast<unsigned long long>(sweep_launched));

    const bool hits_ok = hits > 0;
    const bool pass = hits_ok && cancel_ok && identity_ok;

    std::printf("{\n");
    std::printf("  \"bench\": \"speculation\",\n");
    std::printf("  \"ladder_rungs\": %d,\n", ladder_rungs);
    std::printf("  \"demand_walk_seconds\": %.4f,\n", demand_walk_s);
    std::printf("  \"speculated_walk_seconds\": %.4f,\n", speculated_walk_s);
    std::printf("  \"walk_speedup\": %.4f,\n", walk_speedup);
    std::printf("  \"spec_launched\": %llu,\n",
                static_cast<unsigned long long>(launched));
    std::printf("  \"spec_hits\": %llu,\n", static_cast<unsigned long long>(hits));
    std::printf("  \"spec_cancelled\": %llu,\n",
                static_cast<unsigned long long>(cancelled));
    std::printf("  \"spec_hit_rate\": %.4f,\n", spec_hit_rate);
    std::printf("  \"wasted_ns\": %llu,\n",
                static_cast<unsigned long long>(wasted_ns));
    std::printf("  \"wasted_work_ratio\": %.6f,\n", wasted_work_ratio);
    std::printf("  \"full_characterization_seconds\": %.4f,\n", t_full_s);
    std::printf("  \"total_chunks\": %zu,\n", chunks);
    std::printf("  \"chunk_grain_seconds\": %.4f,\n", chunk_grain_s);
    std::printf("  \"cancel_rounds_valid\": %d,\n", valid_rounds);
    std::printf("  \"cancel_latency_seconds\": %.4f,\n",
                cancel_latency_s < 0.0 ? 0.0 : cancel_latency_s);
    std::printf("  \"cancel_within_grain\": %s,\n", cancel_ok ? "true" : "false");
    std::printf("  \"sweep_speculations\": %llu,\n",
                static_cast<unsigned long long>(sweep_launched));
    std::printf("  \"identity\": %s,\n", identity_ok ? "true" : "false");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");

    if (!hits_ok) {
        std::fprintf(stderr, "FAIL: warm ladder walk recorded zero speculative hits\n");
    }
    if (!cancel_ok) {
        std::fprintf(stderr,
                     "FAIL: cancel latency %.4f s over the %.4f s chunk grain "
                     "(%d valid rounds)\n",
                     cancel_latency_s, chunk_grain_s, valid_rounds);
    }
    if (!identity_ok) {
        std::fprintf(stderr, "FAIL: speculated sweep JSON diverged from baseline\n");
    }
    if (pass) {
        std::fprintf(stderr,
                     "PASS: hit rate %.2f, cancel latency %.4f s (grain %.4f s), "
                     "bit-identical sweep\n",
                     spec_hit_rate, cancel_latency_s, chunk_grain_s);
    }
    return pass ? 0 : 1;
}
