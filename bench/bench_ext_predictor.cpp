// Extension bench: dropping the known-N_i assumption.
//
// The paper assumes per-thread work N_i is available "from offline
// characterization or using online workload prediction techniques". This
// bench quantifies that assumption: SynTS-online with true N_i versus
// SynTS-online driven by the EWMA workload predictor (bootstrapped only on
// the first interval).

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Extension", "SynTS-online with predicted workloads (no N_i oracle)");

    util::text_table table({"benchmark", "offline EDP", "online (true N)",
                            "online (predicted N)", "prediction penalty (%)"});

    double worst_penalty = 0.0;
    for (const auto id : workload::reported_benchmarks()) {
        core::experiment_config cfg;
        const core::benchmark_experiment experiment(id, circuit::pipe_stage::simple_alu,
                                                    cfg);
        const double theta = experiment.equal_weight_theta();
        const double offline =
            experiment.run_policy(policy_kind::synts_offline, theta).sum.edp();
        const double online =
            experiment.run_policy(policy_kind::synts_online, theta).sum.edp();
        const double predicted =
            experiment.run_synts_online_predicted(theta).sum.edp();

        const double penalty = 100.0 * (predicted / online - 1.0);
        worst_penalty = std::max(worst_penalty, penalty);
        table.begin_row();
        table.cell(std::string(workload::benchmark_name(id)));
        table.cell(1.0, 3);
        table.cell(online / offline, 3);
        table.cell(predicted / offline, 3);
        table.cell(penalty, 2);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("  worst EDP penalty from predicting N_i online: %.2f%%\n",
                worst_penalty);
    bench::note("Barrier intervals of a given program phase are similar enough that");
    bench::note("an EWMA over past intervals nearly matches the offline-N_i mode --");
    bench::note("supporting the paper's claim that the assumption is benign.");
    std::printf("\n");
    return 0;
}
