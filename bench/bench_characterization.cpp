// bench_characterization -- phase timings of the staged characterization
// pipeline.
//
// Times each pipeline phase (trace generation, architectural profiling,
// per-stage timing simulation) serial vs pool-parallel, the scalar vs
// 64-lane batched stepping kernel (the PR 7 hot-path vectorization), the
// chunked-grain parallel path at one worker, plus the end-to-end win of the
// two-tier cache: all three pipe stages of one benchmark through shared
// program artifacts vs three naive from-scratch constructions. While
// timing, it also re-checks the bit-identity contract (parallel and batched
// paths must equal the scalar serial walk exactly) and exits non-zero on
// any mismatch, so a regression fails CI instead of being recorded in the
// artifact.
//
// Perf comparisons are interleaved best-of rounds (alternating order, each
// path's minimum): single-shot timings on a shared CI box drift by more
// than the effects under test, and minima of alternating rounds compare
// the code, not the neighbor's load.
//
// On a 1-hardware-thread host the pool-parallel comparison phases are
// skipped (and annotated in the JSON): a 1-worker pool measures scheduling
// overhead, not parallel speedup. The batched-kernel and 1-worker-chunk
// gates still run -- they are single-threaded statements.
//
// Output: one JSON document on stdout (scripts/run_benches.sh captures it
// as BENCH_characterization.json). Human-readable progress goes to stderr.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"
#include "workload/registry.h"

namespace {

using namespace synts;

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_trace(const arch::program_trace& a, const arch::program_trace& b)
{
    if (a.thread_count() != b.thread_count()) {
        return false;
    }
    for (std::size_t t = 0; t < a.thread_count(); ++t) {
        if (a.threads[t].barrier_points != b.threads[t].barrier_points ||
            a.threads[t].ops.size() != b.threads[t].ops.size()) {
            return false;
        }
        for (std::size_t n = 0; n < a.threads[t].ops.size(); ++n) {
            const arch::micro_op& x = a.threads[t].ops[n];
            const arch::micro_op& y = b.threads[t].ops[n];
            if (x.cls != y.cls || x.encoding != y.encoding ||
                x.operand_a != y.operand_a || x.operand_b != y.operand_b ||
                x.address != y.address || x.branch_taken != y.branch_taken) {
                return false;
            }
        }
    }
    return true;
}

bool same_profiles(const std::vector<arch::thread_profile>& a,
                   const std::vector<arch::thread_profile>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t t = 0; t < a.size(); ++t) {
        if (a[t].size() != b[t].size()) {
            return false;
        }
        for (std::size_t k = 0; k < a[t].size(); ++k) {
            if (a[t][k].instruction_count != b[t][k].instruction_count ||
                a[t][k].base_cycles != b[t][k].base_cycles ||
                a[t][k].cpi_base != b[t][k].cpi_base ||
                a[t][k].dcache_miss_rate != b[t][k].dcache_miss_rate ||
                a[t][k].branch_misprediction_rate != b[t][k].branch_misprediction_rate) {
                return false;
            }
        }
    }
    return true;
}

bool same_characterization(const core::stage_characterization& a,
                           const core::stage_characterization& b)
{
    if (a.tnom_ps != b.tnom_ps || a.threads.size() != b.threads.size()) {
        return false;
    }
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        if (a.threads[t].size() != b.threads[t].size()) {
            return false;
        }
        for (std::size_t k = 0; k < a.threads[t].size(); ++k) {
            const auto& x = a.threads[t][k];
            const auto& y = b.threads[t][k];
            if (x.vector_count != y.vector_count ||
                x.sampling_delays_ps != y.sampling_delays_ps) {
                return false;
            }
            for (std::size_t c = 0; c < x.delay_histograms.size(); ++c) {
                for (std::size_t i = 0; i < x.delay_histograms[c].bin_count(); ++i) {
                    if (x.delay_histograms[c].count_at(i) !=
                        y.delay_histograms[c].count_at(i)) {
                        return false;
                    }
                }
            }
        }
    }
    return true;
}

} // namespace

int main()
{
    constexpr auto kBenchmark = workload::benchmark_id::radix;
    constexpr std::uint64_t kSeed = 42;
    const core::experiment_config config;

    runtime::thread_pool pool;
    const util::parallel_for_fn parallel = runtime::make_parallel_for(pool);

    std::vector<std::pair<std::string, double>> phases;
    bool identity_ok = true;
    const auto timed = [&phases](const std::string& name, const auto& body) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const double s = seconds_since(t0);
        phases.emplace_back(name, s);
        std::fprintf(stderr, "%-32s %8.3f s\n", name.c_str(), s);
        return s;
    };

    // A 1-hardware-thread host cannot demonstrate pool speedups; the
    // *_parallel comparison phases are skipped and listed in the JSON so
    // the artifact says why they are absent.
    const bool single_hw_thread = std::thread::hardware_concurrency() <= 1;
    std::vector<std::string> skipped_phases;
    const auto skip = [&](const char* name) {
        skipped_phases.emplace_back(name);
        std::fprintf(stderr, "%-32s  skipped (hardware_concurrency == 1)\n", name);
    };

    // Phase 1: workload trace generation.
    const workload::benchmark_profile profile =
        workload::make_profile(kBenchmark, config.thread_count);
    arch::program_trace trace_serial;
    timed("trace_generation_serial",
          [&] { trace_serial = workload::generate_program_trace(profile, kSeed); });
    if (single_hw_thread) {
        skip("trace_generation_parallel");
    } else {
        arch::program_trace trace_parallel;
        timed("trace_generation_parallel", [&] {
            trace_parallel = workload::generate_program_trace(profile, kSeed, parallel);
        });
        identity_ok = identity_ok && same_trace(trace_serial, trace_parallel);
    }

    // Phase 2: architectural profiling.
    arch::multicore_profiler profiler(config.characterization.core);
    std::vector<arch::thread_profile> profiles_serial;
    timed("arch_profile_serial", [&] { profiles_serial = profiler.profile(trace_serial); });
    if (single_hw_thread) {
        skip("arch_profile_parallel");
    } else {
        std::vector<arch::thread_profile> profiles_parallel;
        timed("arch_profile_parallel",
              [&] { profiles_parallel = profiler.profile(trace_serial, parallel); });
        identity_ok = identity_ok && same_profiles(profiles_serial, profiles_parallel);
    }

    // Phase 3: per-stage timing simulation, serial vs chunked fan-out, on
    // shared artifacts.
    core::program_artifacts artifacts;
    artifacts.workload = kBenchmark;
    artifacts.thread_count = config.thread_count;
    artifacts.seed = kSeed;
    artifacts.trace = std::move(trace_serial);
    artifacts.arch_profiles = std::move(profiles_serial);

    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(config.voltage_class_spread);
    const core::characterizer chars(lib, vm, config.characterization);

    core::stage_characterization stage_serial;
    timed("stage_characterization_serial", [&] {
        stage_serial = chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
    });
    if (single_hw_thread) {
        skip("stage_characterization_parallel");
    } else {
        core::stage_characterization stage_parallel;
        timed("stage_characterization_parallel", [&] {
            stage_parallel = chars.characterize(artifacts, circuit::pipe_stage::simple_alu,
                                                parallel, pool.worker_count());
        });
        identity_ok = identity_ok && same_characterization(stage_serial, stage_parallel);
    }

    // Phase 3b: the batched 64-lane stepping kernel vs the scalar
    // reference walk, both serial, interleaved best-of. This is THE gate
    // of the hot-path vectorization: the batched path must be bit-identical
    // AND >= 1.25x faster (ratio <= 0.8); the as-measured design target is
    // 1.5x, recorded alongside.
    core::characterization_config scalar_cfg = config.characterization;
    scalar_cfg.batched = false;
    const core::characterizer chars_scalar(lib, vm, scalar_cfg);
    constexpr int kKernelRounds = 2;
    double scalar_best = 0.0;
    double batched_best = 0.0;
    core::stage_characterization batched_result;
    {
        const auto measure = [&](const auto& body) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            return seconds_since(t0);
        };
        for (int round = 0; round < kKernelRounds; ++round) {
            double scalar_s = 0.0;
            double batched_s = 0.0;
            const auto run_scalar = [&] {
                stage_serial =
                    chars_scalar.characterize(artifacts, circuit::pipe_stage::simple_alu);
            };
            const auto run_batched = [&] {
                batched_result =
                    chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
            };
            if (round % 2 == 0) {
                scalar_s = measure(run_scalar);
                batched_s = measure(run_batched);
            } else {
                batched_s = measure(run_batched);
                scalar_s = measure(run_scalar);
            }
            std::fprintf(stderr,
                         "round %d: characterization_scalar %.3f s, "
                         "characterization_batched %.3f s\n",
                         round, scalar_s, batched_s);
            scalar_best = round == 0 ? scalar_s : std::min(scalar_best, scalar_s);
            batched_best = round == 0 ? batched_s : std::min(batched_best, batched_s);
        }
    }
    phases.emplace_back("characterization_scalar", scalar_best);
    phases.emplace_back("characterization_batched", batched_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "characterization_scalar", scalar_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "characterization_batched", batched_best);
    identity_ok = identity_ok && same_characterization(stage_serial, batched_result);

    std::uint64_t total_vectors = 0;
    for (const auto& thread : batched_result.threads) {
        for (const auto& cell : thread) {
            total_vectors += cell.vector_count;
        }
    }
    const double vectors_per_second =
        batched_best > 0.0 ? static_cast<double>(total_vectors) / batched_best : 0.0;
    const double batched_over_scalar =
        scalar_best > 0.0 ? batched_best / scalar_best : 0.0;
    const bool batched_ok = batched_over_scalar <= 0.8;
    if (!batched_ok) {
        std::fprintf(stderr,
                     "FAIL: batched characterization not >= 1.25x scalar "
                     "(%.3f s vs %.3f s, ratio %.3f > 0.8)\n",
                     batched_best, scalar_best, batched_over_scalar);
    }

    // Phase 3c: the chunked-grain parallel path at ONE worker must
    // degenerate to the serial walk -- one chunk per thread, no extra
    // warm-up replay -- so its cost is gated at <= 1.05x serial.
    double chunk_serial_best = 0.0;
    double chunk_1w_best = 0.0;
    {
        runtime::thread_pool pool_1w(1);
        const util::parallel_for_fn parallel_1w = runtime::make_parallel_for(pool_1w);
        core::stage_characterization chunked_result;
        const auto measure = [&](const auto& body) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            return seconds_since(t0);
        };
        for (int round = 0; round < kKernelRounds; ++round) {
            double serial_s = 0.0;
            double chunked_s = 0.0;
            const auto run_serial = [&] {
                batched_result =
                    chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
            };
            const auto run_chunked = [&] {
                chunked_result = chars.characterize(
                    artifacts, circuit::pipe_stage::simple_alu, parallel_1w, 1);
            };
            if (round % 2 == 0) {
                serial_s = measure(run_serial);
                chunked_s = measure(run_chunked);
            } else {
                chunked_s = measure(run_chunked);
                serial_s = measure(run_serial);
            }
            std::fprintf(stderr,
                         "round %d: characterization_serial_1w %.3f s, "
                         "characterization_chunked_1w %.3f s\n",
                         round, serial_s, chunked_s);
            chunk_serial_best = round == 0 ? serial_s : std::min(chunk_serial_best, serial_s);
            chunk_1w_best = round == 0 ? chunked_s : std::min(chunk_1w_best, chunked_s);
        }
        identity_ok = identity_ok && same_characterization(batched_result, chunked_result);
    }
    phases.emplace_back("characterization_chunked_1w", chunk_1w_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "characterization_chunked_1w", chunk_1w_best);
    const double chunked_1w_over_serial =
        chunk_serial_best > 0.0 ? chunk_1w_best / chunk_serial_best : 0.0;
    const bool chunked_1w_ok = chunked_1w_over_serial <= 1.05;
    if (!chunked_1w_ok) {
        std::fprintf(stderr,
                     "FAIL: 1-worker chunked path slower than serial "
                     "(%.3f s vs %.3f s, ratio %.3f > 1.05)\n",
                     chunk_1w_best, chunk_serial_best, chunked_1w_over_serial);
    }

    // Phase 3d: a second workload shape -- the lock_ladder registry
    // scenario -- so the speedup artifact is not a Radix-only statement.
    // Recorded, not gated: the gate stays on Radix (the calibrated
    // reference) while lock_ladder's convoy structure exercises sparse
    // driving patterns (many non-driving ops between ALU vectors).
    double ll_scalar_best = 0.0;
    double ll_batched_best = 0.0;
    {
        const workload::workload_key ll_key =
            workload::workload_registry::global().key("lock_ladder");
        const core::program_characterizer pc(config.characterization.core);
        const core::program_artifacts ll_artifacts =
            pc.characterize(ll_key, config.thread_count, kSeed);
        core::stage_characterization ll_scalar;
        core::stage_characterization ll_batched;
        const auto measure = [&](const auto& body) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            return seconds_since(t0);
        };
        for (int round = 0; round < kKernelRounds; ++round) {
            double scalar_s = 0.0;
            double batched_s = 0.0;
            const auto run_scalar = [&] {
                ll_scalar = chars_scalar.characterize(ll_artifacts,
                                                      circuit::pipe_stage::simple_alu);
            };
            const auto run_batched = [&] {
                ll_batched =
                    chars.characterize(ll_artifacts, circuit::pipe_stage::simple_alu);
            };
            if (round % 2 == 0) {
                scalar_s = measure(run_scalar);
                batched_s = measure(run_batched);
            } else {
                batched_s = measure(run_batched);
                scalar_s = measure(run_scalar);
            }
            std::fprintf(stderr,
                         "round %d: lock_ladder_scalar %.3f s, "
                         "lock_ladder_batched %.3f s\n",
                         round, scalar_s, batched_s);
            ll_scalar_best = round == 0 ? scalar_s : std::min(ll_scalar_best, scalar_s);
            ll_batched_best = round == 0 ? batched_s : std::min(ll_batched_best, batched_s);
        }
        identity_ok = identity_ok && same_characterization(ll_scalar, ll_batched);
    }
    phases.emplace_back("lock_ladder_scalar", ll_scalar_best);
    phases.emplace_back("lock_ladder_batched", ll_batched_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "lock_ladder_scalar", ll_scalar_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "lock_ladder_batched", ll_batched_best);
    const double ll_batched_over_scalar =
        ll_scalar_best > 0.0 ? ll_batched_best / ll_scalar_best : 0.0;

    // Phase 4: end-to-end -- three naive from-scratch constructions vs the
    // two-tier cache sharing one artifact set across all three pipe
    // stages. Measured as interleaved rounds with alternating order,
    // comparing each path's BEST round: the work the staged path saves
    // (one trace generation + profiling instead of three) is a few percent
    // of a round, while single-shot timings on a shared CI box drift by
    // more than that -- a one-shot comparison once recorded the staged
    // path "losing" to the path it exists to beat purely from measurement
    // ordering. Minima of alternating rounds compare the code, not the
    // neighbor's load; the 1.05 bound then turns any real reintroduced
    // per-miss overhead (artifact copies, redundant tnom/STA work) into a
    // CI failure instead of a silently recorded artifact.
    const auto run_naive = [&] {
        for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
            const core::benchmark_experiment experiment(
                kBenchmark, static_cast<circuit::pipe_stage>(s), config);
            (void)experiment.interval_count();
        }
    };
    bool cache_shared_ok = true;
    const auto run_staged = [&] {
        runtime::experiment_cache cache; // fresh per round: time the miss path
        for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
            const auto experiment = cache.get_or_create(
                kBenchmark, static_cast<circuit::pipe_stage>(s), config, &pool);
            (void)experiment->interval_count();
        }
        cache_shared_ok = cache_shared_ok && cache.program_miss_count() == 1 &&
                          cache.program_compute_count() == 1 &&
                          cache.miss_count() == circuit::pipe_stage_count;
    };
    constexpr int kRounds = 2;
    double naive_best = 0.0;
    double staged_best = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        const auto measure = [&](const auto& body) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            return seconds_since(t0);
        };
        double naive_s = 0.0;
        double staged_s = 0.0;
        if (round % 2 == 0) {
            naive_s = measure(run_naive);
            staged_s = measure(run_staged);
        } else {
            staged_s = measure(run_staged);
            naive_s = measure(run_naive);
        }
        std::fprintf(stderr, "round %d: all_stages_naive %.3f s, "
                             "all_stages_staged_cache %.3f s\n",
                     round, naive_s, staged_s);
        naive_best = round == 0 ? naive_s : std::min(naive_best, naive_s);
        staged_best = round == 0 ? staged_s : std::min(staged_best, staged_s);
    }
    phases.emplace_back("all_stages_naive", naive_best);
    phases.emplace_back("all_stages_staged_cache", staged_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "all_stages_naive", naive_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "all_stages_staged_cache", staged_best);

    identity_ok = identity_ok && cache_shared_ok;
    if (!cache_shared_ok) {
        std::fprintf(stderr,
                     "FAIL: program tier did not share artifacts across stages\n");
    }
    // The regression gate: the staged path must never lose to the path it
    // was built to beat (5% grace for residual timer noise).
    const bool staged_ok = staged_best <= naive_best * 1.05;
    if (!staged_ok) {
        std::fprintf(stderr,
                     "FAIL: staged cache slower than naive constructions "
                     "(%.3f s vs %.3f s, bound %.3f s)\n",
                     staged_best, naive_best, naive_best * 1.05);
    }

    std::printf("{\n  \"benchmark\": \"%s\",\n  \"workers\": %zu,\n"
                "  \"hardware_concurrency\": %u,\n  \"phases\": [\n",
                std::string(workload::benchmark_name(kBenchmark)).c_str(),
                pool.worker_count(), std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < phases.size(); ++i) {
        std::printf("    {\"name\": \"%s\", \"seconds\": %.6f}%s\n",
                    phases[i].first.c_str(), phases[i].second,
                    i + 1 < phases.size() ? "," : "");
    }
    std::printf("  ],\n  \"skipped_phases\": [");
    for (std::size_t i = 0; i < skipped_phases.size(); ++i) {
        std::printf("%s\"%s\"", i == 0 ? "" : ", ", skipped_phases[i].c_str());
    }
    // identity_ok means bit-identity ONLY; each perf gate gets its own
    // field so a timing regression is never triaged as a determinism bug.
    // batched_speedup_target is the design goal (1.5x); batched_ok gates
    // the conservative floor (>= 1.25x, i.e. ratio <= 0.8) so CI noise
    // does not flap the build while real kernel regressions still fail.
    std::printf("],\n  \"skip_reason\": %s,\n",
                skipped_phases.empty() ? "null" : "\"hardware_concurrency == 1\"");
    std::printf("  \"vectors_per_second\": %.1f,\n", vectors_per_second);
    std::printf("  \"batched_over_scalar\": %.4f,\n", batched_over_scalar);
    std::printf("  \"batched_speedup_measured\": %.4f,\n",
                batched_over_scalar > 0.0 ? 1.0 / batched_over_scalar : 0.0);
    std::printf("  \"batched_speedup_target\": 1.5,\n");
    std::printf("  \"batched_ok\": %s,\n", batched_ok ? "true" : "false");
    std::printf("  \"chunked_1w_over_serial\": %.4f,\n", chunked_1w_over_serial);
    std::printf("  \"chunked_1w_ok\": %s,\n", chunked_1w_ok ? "true" : "false");
    std::printf("  \"lock_ladder_batched_over_scalar\": %.4f,\n", ll_batched_over_scalar);
    std::printf("  \"staged_over_naive\": %.4f,\n  \"staged_ok\": %s,\n"
                "  \"identity_ok\": %s\n}\n",
                naive_best > 0.0 ? staged_best / naive_best : 0.0,
                staged_ok ? "true" : "false", identity_ok ? "true" : "false");

    if (!identity_ok) {
        std::fprintf(stderr,
                     "FAIL: a parallel or batched characterization diverged from "
                     "the scalar serial walk\n");
        return 1;
    }
    return (staged_ok && batched_ok && chunked_1w_ok) ? 0 : 1;
}
