// bench_characterization -- phase timings of the staged characterization
// pipeline.
//
// Times each pipeline phase (trace generation, architectural profiling,
// per-stage timing simulation) serial vs pool-parallel, plus the end-to-end
// win of the two-tier cache: all three pipe stages of one benchmark through
// shared program artifacts vs three naive from-scratch constructions. While
// timing, it also re-checks the bit-identity contract (parallel phases must
// equal serial exactly) and exits non-zero on any mismatch, so a regression
// fails CI instead of being recorded in the artifact.
//
// Output: one JSON document on stdout (scripts/run_benches.sh captures it
// as BENCH_characterization.json). Human-readable progress goes to stderr.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/thread_pool.h"

namespace {

using namespace synts;

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_trace(const arch::program_trace& a, const arch::program_trace& b)
{
    if (a.thread_count() != b.thread_count()) {
        return false;
    }
    for (std::size_t t = 0; t < a.thread_count(); ++t) {
        if (a.threads[t].barrier_points != b.threads[t].barrier_points ||
            a.threads[t].ops.size() != b.threads[t].ops.size()) {
            return false;
        }
        for (std::size_t n = 0; n < a.threads[t].ops.size(); ++n) {
            const arch::micro_op& x = a.threads[t].ops[n];
            const arch::micro_op& y = b.threads[t].ops[n];
            if (x.cls != y.cls || x.encoding != y.encoding ||
                x.operand_a != y.operand_a || x.operand_b != y.operand_b ||
                x.address != y.address || x.branch_taken != y.branch_taken) {
                return false;
            }
        }
    }
    return true;
}

bool same_profiles(const std::vector<arch::thread_profile>& a,
                   const std::vector<arch::thread_profile>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t t = 0; t < a.size(); ++t) {
        if (a[t].size() != b[t].size()) {
            return false;
        }
        for (std::size_t k = 0; k < a[t].size(); ++k) {
            if (a[t][k].instruction_count != b[t][k].instruction_count ||
                a[t][k].base_cycles != b[t][k].base_cycles ||
                a[t][k].cpi_base != b[t][k].cpi_base ||
                a[t][k].dcache_miss_rate != b[t][k].dcache_miss_rate ||
                a[t][k].branch_misprediction_rate != b[t][k].branch_misprediction_rate) {
                return false;
            }
        }
    }
    return true;
}

bool same_characterization(const core::stage_characterization& a,
                           const core::stage_characterization& b)
{
    if (a.tnom_ps != b.tnom_ps || a.threads.size() != b.threads.size()) {
        return false;
    }
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        if (a.threads[t].size() != b.threads[t].size()) {
            return false;
        }
        for (std::size_t k = 0; k < a.threads[t].size(); ++k) {
            const auto& x = a.threads[t][k];
            const auto& y = b.threads[t][k];
            if (x.vector_count != y.vector_count ||
                x.sampling_delays_ps != y.sampling_delays_ps) {
                return false;
            }
            for (std::size_t c = 0; c < x.delay_histograms.size(); ++c) {
                for (std::size_t i = 0; i < x.delay_histograms[c].bin_count(); ++i) {
                    if (x.delay_histograms[c].count_at(i) !=
                        y.delay_histograms[c].count_at(i)) {
                        return false;
                    }
                }
            }
        }
    }
    return true;
}

} // namespace

int main()
{
    constexpr auto kBenchmark = workload::benchmark_id::radix;
    constexpr std::uint64_t kSeed = 42;
    const core::experiment_config config;

    runtime::thread_pool pool;
    const util::parallel_for_fn parallel = runtime::make_parallel_for(pool);

    std::vector<std::pair<std::string, double>> phases;
    bool identity_ok = true;
    const auto timed = [&phases](const std::string& name, const auto& body) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const double s = seconds_since(t0);
        phases.emplace_back(name, s);
        std::fprintf(stderr, "%-32s %8.3f s\n", name.c_str(), s);
        return s;
    };

    // Phase 1: workload trace generation.
    const workload::benchmark_profile profile =
        workload::make_profile(kBenchmark, config.thread_count);
    arch::program_trace trace_serial;
    arch::program_trace trace_parallel;
    timed("trace_generation_serial",
          [&] { trace_serial = workload::generate_program_trace(profile, kSeed); });
    timed("trace_generation_parallel", [&] {
        trace_parallel = workload::generate_program_trace(profile, kSeed, parallel);
    });
    identity_ok = identity_ok && same_trace(trace_serial, trace_parallel);

    // Phase 2: architectural profiling.
    arch::multicore_profiler profiler(config.characterization.core);
    std::vector<arch::thread_profile> profiles_serial;
    std::vector<arch::thread_profile> profiles_parallel;
    timed("arch_profile_serial", [&] { profiles_serial = profiler.profile(trace_serial); });
    timed("arch_profile_parallel",
          [&] { profiles_parallel = profiler.profile(trace_serial, parallel); });
    identity_ok = identity_ok && same_profiles(profiles_serial, profiles_parallel);

    // Phase 3: per-stage timing simulation, serial vs (thread, interval)
    // fan-out, on shared artifacts.
    core::program_artifacts artifacts;
    artifacts.workload = kBenchmark;
    artifacts.thread_count = config.thread_count;
    artifacts.seed = kSeed;
    artifacts.trace = std::move(trace_serial);
    artifacts.arch_profiles = std::move(profiles_serial);

    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(config.voltage_class_spread);
    const core::characterizer chars(lib, vm, config.characterization);

    core::stage_characterization stage_serial;
    core::stage_characterization stage_parallel;
    timed("stage_characterization_serial", [&] {
        stage_serial = chars.characterize(artifacts, circuit::pipe_stage::simple_alu);
    });
    timed("stage_characterization_parallel", [&] {
        stage_parallel =
            chars.characterize(artifacts, circuit::pipe_stage::simple_alu, parallel);
    });
    identity_ok = identity_ok && same_characterization(stage_serial, stage_parallel);

    // Phase 4: end-to-end -- three naive from-scratch constructions vs the
    // two-tier cache sharing one artifact set across all three pipe
    // stages. Measured as interleaved rounds with alternating order,
    // comparing each path's BEST round: the work the staged path saves
    // (one trace generation + profiling instead of three) is a few percent
    // of a round, while single-shot timings on a shared CI box drift by
    // more than that -- a one-shot comparison once recorded the staged
    // path "losing" to the path it exists to beat purely from measurement
    // ordering. Minima of alternating rounds compare the code, not the
    // neighbor's load; the 1.05 bound then turns any real reintroduced
    // per-miss overhead (artifact copies, redundant tnom/STA work) into a
    // CI failure instead of a silently recorded artifact.
    const auto run_naive = [&] {
        for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
            const core::benchmark_experiment experiment(
                kBenchmark, static_cast<circuit::pipe_stage>(s), config);
            (void)experiment.interval_count();
        }
    };
    bool cache_shared_ok = true;
    const auto run_staged = [&] {
        runtime::experiment_cache cache; // fresh per round: time the miss path
        for (std::size_t s = 0; s < circuit::pipe_stage_count; ++s) {
            const auto experiment = cache.get_or_create(
                kBenchmark, static_cast<circuit::pipe_stage>(s), config, &pool);
            (void)experiment->interval_count();
        }
        cache_shared_ok = cache_shared_ok && cache.program_miss_count() == 1 &&
                          cache.program_compute_count() == 1 &&
                          cache.miss_count() == circuit::pipe_stage_count;
    };
    constexpr int kRounds = 2;
    double naive_best = 0.0;
    double staged_best = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        const auto measure = [&](const auto& body) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            return seconds_since(t0);
        };
        double naive_s = 0.0;
        double staged_s = 0.0;
        if (round % 2 == 0) {
            naive_s = measure(run_naive);
            staged_s = measure(run_staged);
        } else {
            staged_s = measure(run_staged);
            naive_s = measure(run_naive);
        }
        std::fprintf(stderr, "round %d: all_stages_naive %.3f s, "
                             "all_stages_staged_cache %.3f s\n",
                     round, naive_s, staged_s);
        naive_best = round == 0 ? naive_s : std::min(naive_best, naive_s);
        staged_best = round == 0 ? staged_s : std::min(staged_best, staged_s);
    }
    phases.emplace_back("all_stages_naive", naive_best);
    phases.emplace_back("all_stages_staged_cache", staged_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "all_stages_naive", naive_best);
    std::fprintf(stderr, "%-32s %8.3f s\n", "all_stages_staged_cache", staged_best);

    identity_ok = identity_ok && cache_shared_ok;
    if (!cache_shared_ok) {
        std::fprintf(stderr,
                     "FAIL: program tier did not share artifacts across stages\n");
    }
    // The regression gate: the staged path must never lose to the path it
    // was built to beat (5% grace for residual timer noise).
    const bool staged_ok = staged_best <= naive_best * 1.05;
    if (!staged_ok) {
        std::fprintf(stderr,
                     "FAIL: staged cache slower than naive constructions "
                     "(%.3f s vs %.3f s, bound %.3f s)\n",
                     staged_best, naive_best, naive_best * 1.05);
    }

    std::printf("{\n  \"benchmark\": \"%s\",\n  \"workers\": %zu,\n  \"phases\": [\n",
                std::string(workload::benchmark_name(kBenchmark)).c_str(),
                pool.worker_count());
    for (std::size_t i = 0; i < phases.size(); ++i) {
        std::printf("    {\"name\": \"%s\", \"seconds\": %.6f}%s\n",
                    phases[i].first.c_str(), phases[i].second,
                    i + 1 < phases.size() ? "," : "");
    }
    // identity_ok means bit-identity ONLY; the perf gate gets its own
    // field so a timing regression is never triaged as a determinism bug.
    std::printf("  ],\n  \"staged_over_naive\": %.4f,\n  \"staged_ok\": %s,\n"
                "  \"identity_ok\": %s\n}\n",
                naive_best > 0.0 ? staged_best / naive_best : 0.0,
                staged_ok ? "true" : "false", identity_ok ? "true" : "false");

    if (!identity_ok) {
        std::fprintf(stderr, "FAIL: parallel characterization diverged from serial\n");
        return 1;
    }
    return staged_ok ? 0 : 1;
}
