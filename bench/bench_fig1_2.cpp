// Fig. 1.2: timing speculation versus error probability -- the conceptual
// single-thread trade-off. Performance rises as the clock period shrinks
// below nominal until replay overhead overtakes the gain; the optimum f_s
// lies strictly between the nominal frequency and the error wall.

#include <cstdio>

#include "bench_common.h"
#include "core/error_model.h"
#include "energy/energy_model.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Fig. 1.2", "Timing speculation vs. error probability (single thread)");

    // A Radix-thread-0-like error curve.
    const core::synthetic_error_curve err(0.95, 0.55, 0.25, 1.6);
    constexpr double cpi_base = 1.4;
    constexpr std::uint32_t penalty = 5;

    util::text_table table(
        {"r (t_clk/t_nom)", "p_err", "SPI (norm)", "throughput gain (%)"});
    const double spi_nominal =
        energy::seconds_per_instruction(1.0, 0.0, cpi_base, penalty);

    double best_gain = -1.0;
    double best_r = 1.0;
    double wall_r = 0.0;
    for (double r = 1.0; r >= 0.55; r -= 0.025) {
        const double p = err.error_probability(0, r);
        const double spi = energy::seconds_per_instruction(r, p, cpi_base, penalty);
        const double gain = 100.0 * (spi_nominal / spi - 1.0);
        table.begin_row();
        table.cell(r, 3);
        table.cell(p, 4);
        table.cell(spi / spi_nominal, 4);
        table.cell(gain, 1);
        if (gain > best_gain) {
            best_gain = gain;
            best_r = r;
        }
        if (gain < 0.0 && wall_r == 0.0) {
            wall_r = r;
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("  optimal speculative point r_s = %.3f (gain %.1f%%)\n", best_r,
                best_gain);
    bench::note("Shape check (paper, qualitative): performance peaks strictly");
    bench::note("between f_0 (r = 1) and the error wall, then degrades as replay");
    bench::note("overhead dominates -- exactly the Fig. 1.2 trade-off.");
    std::printf("  peak strictly inside (wall, 1): %s\n\n",
                (best_r < 1.0 && best_gain > 0.0) ? "yes" : "NO");
    return 0;
}
