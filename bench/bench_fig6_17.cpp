// Fig. 6.17: actual versus online-estimated error probability as a function
// of the timing speculation ratio, for one barrier interval of Radix
// (error scale ~1e-1) and FMM (~1e-3). N_samp = 10% of the interval,
// V_samp = nominal. The estimates must track the truth and, critically,
// always identify the timing-speculation-critical thread.

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/online_estimator.h"
#include "util/table.h"

namespace {

using namespace synts;

void run_benchmark(workload::benchmark_id id)
{
    core::experiment_config cfg;
    const core::benchmark_experiment experiment(id, circuit::pipe_stage::simple_alu,
                                                cfg);
    const core::config_space& space = experiment.space();

    const core::online_estimator estimator(cfg.sampling);
    synts::energy::energy_params params;

    std::printf("  %s (sampling %0.f%% of the interval, V_samp = %.2f V):\n",
                workload::benchmark_name(id).data(), 100.0 * cfg.sampling.sample_fraction,
                space.voltage(cfg.sampling.sample_voltage_index));

    util::text_table table({"thread", "r", "actual", "estimated", "abs err"});
    double critical_actual = -1.0;
    std::size_t critical_thread_truth = 0;
    double critical_estimate = -1.0;
    std::size_t critical_thread_estimated = 0;

    for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
        const auto& truth = experiment.error_model(t, 0);
        const auto sample = estimator.sample_interval(
            space, experiment.characterization().threads[t][0],
            experiment.artifacts()->arch_profiles[t][0].cpi_base, params);
        const auto curve = sample.make_curve(space);

        for (std::size_t k = 0; k < space.tsr_count(); ++k) {
            const double r = space.tsr(k);
            const double actual = truth.error_probability(0, r);
            const double estimated = curve.error_probability(0, r);
            table.begin_row();
            table.cell(static_cast<long long>(t));
            table.cell(r, 3);
            table.cell(actual, 5);
            table.cell(estimated, 5);
            table.cell(std::abs(actual - estimated), 5);
        }
        const double deep_actual = truth.error_probability(0, space.tsr(0));
        const double deep_estimate = curve.error_probability(0, space.tsr(0));
        if (deep_actual > critical_actual) {
            critical_actual = deep_actual;
            critical_thread_truth = t;
        }
        if (deep_estimate > critical_estimate) {
            critical_estimate = deep_estimate;
            critical_thread_estimated = t;
        }
    }
    std::printf("%s", table.render(4).c_str());
    std::printf("    critical thread: actual T%zu, estimated T%zu -> %s\n\n",
                critical_thread_truth, critical_thread_estimated,
                critical_thread_truth == critical_thread_estimated
                    ? "identified correctly"
                    : "MISIDENTIFIED");
}

} // namespace

int main()
{
    bench::banner("Fig. 6.17",
                  "Actual vs online-estimated error probability (Radix, FMM)");
    run_benchmark(workload::benchmark_id::radix);
    run_benchmark(workload::benchmark_id::fmm);
    bench::note("Paper: '(1) the estimated error probabilities are close to the");
    bench::note("actual probabilities, and (2) importantly, the critical thread");
    bench::note("from a timing speculation perspective is always identified.'");
    std::printf("\n");
    return 0;
}
