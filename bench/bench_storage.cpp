// bench_storage -- throughput and end-to-end timings of the persistent
// artifact store.
//
// Three phases:
//   1. codec throughput: serialize / deserialize MB/s on a real program
//      artifact frame (the multi-megabyte object the disk tier moves);
//   2. cold vs warm sweep: the same spec through a fresh store directory
//      (cold: compute + write-back), then through fresh caches sharing that
//      directory -- warm (artifacts off disk, cells recomputed) and
//      resumed (cells restored outright);
//   3. verification: the warm and resumed runs must perform ZERO trace
//      generations / profiler runs and reproduce the cold cells bit for
//      bit. Any violation exits non-zero so CI fails instead of recording
//      a broken artifact.
//
// Output: one JSON document on stdout (scripts/run_benches.sh captures it
// as BENCH_storage.json). Human-readable progress goes to stderr.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "core/experiment.h"
#include "runtime/experiment_cache.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "storage/artifact_store.h"
#include "storage/serialize.h"

namespace {

using namespace synts;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool same_cells(const runtime::sweep_result& a, const runtime::sweep_result& b)
{
    if (a.cells.size() != b.cells.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        // Frames are canonical, so encoding equality is bit equality.
        if (storage::encode(a.cells[i]) != storage::encode(b.cells[i])) {
            return false;
        }
    }
    return true;
}

} // namespace

int main()
{
    constexpr auto kBenchmark = workload::benchmark_id::radix;
    bool ok = true;

    // -- phase 1: codec throughput ------------------------------------------
    std::fprintf(stderr, "== codec throughput\n");
    const auto artifacts = core::make_program_artifacts(kBenchmark);
    const std::string frame = storage::encode(*artifacts);
    const double frame_mb = static_cast<double>(frame.size()) / (1024.0 * 1024.0);

    constexpr int kReps = 5;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        const std::string encoded = storage::encode(*artifacts);
        ok = ok && encoded.size() == frame.size();
    }
    const double serialize_s = seconds_since(t0) / kReps;

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        const core::program_artifacts decoded = storage::decode_program_artifacts(frame);
        ok = ok && decoded.workload_digest == artifacts->workload_digest;
    }
    const double deserialize_s = seconds_since(t0) / kReps;

    // Round-trip bit-identity: decode(encode(x)) re-encodes to x's frame.
    const bool codec_identical =
        storage::encode(storage::decode_program_artifacts(frame)) == frame;
    ok = ok && codec_identical;

    // -- phase 2: cold vs warm sweeps ---------------------------------------
    const fs::path store_dir =
        fs::temp_directory_path() /
        ("synts_bench_storage_" + std::to_string(::getpid()));
    runtime::sweep_spec spec;
    spec.benchmarks = {kBenchmark};
    spec.stages = {circuit::pipe_stage::simple_alu, circuit::pipe_stage::decode};
    spec.policies = {core::policy_kind::nominal, core::policy_kind::synts_offline};
    spec.theta_multipliers = {0.5, 1.0, 2.0};

    runtime::thread_pool pool;
    const auto timed_run = [&](bool resume) {
        runtime::experiment_cache cache;
        auto store = std::make_shared<storage::artifact_store>(store_dir);
        cache.attach_store(store);
        const auto start = std::chrono::steady_clock::now();
        runtime::sweep_result result = runtime::sweep_scheduler(pool, cache)
                                           .run(spec, {store.get(), resume});
        result.wall_seconds = seconds_since(start);
        return result;
    };

    std::fprintf(stderr, "== cold sweep (empty store)\n");
    const runtime::sweep_result cold = timed_run(false);
    std::fprintf(stderr, "== warm sweep (artifacts off disk)\n");
    const runtime::sweep_result warm = timed_run(false);
    std::fprintf(stderr, "== resumed sweep (cells restored)\n");
    const runtime::sweep_result resumed = timed_run(true);

    std::error_code ec;
    fs::remove_all(store_dir, ec);

    // -- phase 3: verification ----------------------------------------------
    const bool warm_zero_computes = warm.program_computes == 0;
    const bool warm_identical = same_cells(cold, warm);
    const bool resumed_zero_traffic =
        resumed.program_computes == 0 && resumed.cells_loaded == cold.cells.size();
    const bool resumed_identical = same_cells(cold, resumed);
    ok = ok && warm_zero_computes && warm_identical && resumed_zero_traffic &&
         resumed_identical;

    std::printf("{\n");
    std::printf("  \"frame_mb\": %.3f,\n", frame_mb);
    std::printf("  \"serialize_mb_per_s\": %.1f,\n", frame_mb / serialize_s);
    std::printf("  \"deserialize_mb_per_s\": %.1f,\n", frame_mb / deserialize_s);
    std::printf("  \"codec_round_trip_identical\": %s,\n",
                codec_identical ? "true" : "false");
    std::printf("  \"cold_seconds\": %.3f,\n", cold.wall_seconds);
    std::printf("  \"warm_seconds\": %.3f,\n", warm.wall_seconds);
    std::printf("  \"resumed_seconds\": %.3f,\n", resumed.wall_seconds);
    std::printf("  \"warm_speedup\": %.2f,\n", cold.wall_seconds / warm.wall_seconds);
    std::printf("  \"resumed_speedup\": %.2f,\n",
                cold.wall_seconds / resumed.wall_seconds);
    std::printf("  \"warm_program_computes\": %llu,\n",
                static_cast<unsigned long long>(warm.program_computes));
    std::printf("  \"warm_cells_bit_identical\": %s,\n",
                warm_identical ? "true" : "false");
    std::printf("  \"resumed_cells_restored\": %llu,\n",
                static_cast<unsigned long long>(resumed.cells_loaded));
    std::printf("  \"resumed_cells_bit_identical\": %s,\n",
                resumed_identical ? "true" : "false");
    std::printf("  \"ok\": %s\n", ok ? "true" : "false");
    std::printf("}\n");

    if (!ok) {
        std::fprintf(stderr, "bench_storage: VERIFICATION FAILED\n");
        return 1;
    }
    return 0;
}
