// Ablation (DESIGN.md 5.1): uniform vs per-cell-class voltage scaling.
//
// The online estimator samples at a single voltage and extrapolates
// err(V, r) ~ err(r). Under perfectly uniform scaling the extrapolation is
// exact; the per-class spread makes it approximate. This ablation measures
// how much of the online-vs-offline EDP gap is due to that spread versus
// sampling cost/noise.

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Ablation", "uniform vs per-class voltage scaling (online overhead)");

    util::text_table table({"benchmark", "spread", "online EDP / offline EDP"});
    for (const auto id : {workload::benchmark_id::radix, workload::benchmark_id::barnes,
                          workload::benchmark_id::cholesky}) {
        for (const double spread : {0.0, 0.04, 0.10}) {
            core::experiment_config cfg;
            cfg.voltage_class_spread = spread;
            const core::benchmark_experiment experiment(
                id, circuit::pipe_stage::simple_alu, cfg);
            const double theta = experiment.equal_weight_theta();
            const double offline =
                experiment.run_policy(policy_kind::synts_offline, theta).sum.edp();
            const double online =
                experiment.run_policy(policy_kind::synts_online, theta).sum.edp();
            table.begin_row();
            table.cell(std::string(workload::benchmark_name(id)));
            table.cell(spread, 2);
            table.cell(online / offline, 4);
        }
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("Expectation: the overhead is dominated by the sampling phase;");
    bench::note("per-class spread adds only a small extrapolation penalty on top.");
    std::printf("\n");
    return 0;
}
