// bench_obs -- the telemetry overhead gate.
//
// The obs contract is "zero overhead when disabled": an instrumented hot
// path (always-on counter bump + enabled-gated scoped_timer + enabled-gated
// trace_span with a lazily formatted name) must cost the same as the bare
// body when telemetry is off. This bench measures a representative task
// body three ways -- bare, instrumented-disabled, instrumented-enabled --
// interleaved round-robin (so thermal / frequency drift hits every variant
// equally) and GATES disabled-over-bare at <= 2%: a regression exits
// non-zero and fails CI instead of landing silently. Enabled numbers are
// reported for information only; recording is allowed to cost something.
//
// A second gate covers the sampler: a LIVE instrumented workload (telemetry
// enabled, registry counters + histograms being hammered) must cost <= 5%
// more with a 100 ms background sampler attached than without one -- the
// sampler's lock-light contract (recording threads never touch its mutex;
// ticks read the registry through snapshot()) is what makes this hold.
//
// Output: one JSON document on stdout (scripts/run_benches.sh captures it
// as BENCH_obs.json). Human-readable progress goes to stderr.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace {

using namespace synts;

constexpr double disabled_overhead_gate = 1.02; // <= 2% over bare
constexpr double sampler_overhead_gate = 1.05;  // <= 5% over live-unsampled
constexpr int rounds = 7;
// Small enough that the enabled rounds' recorded spans stay a few tens of
// MB; large enough that one round is milliseconds on a steady clock.
constexpr std::uint64_t iterations = 50'000;

/// The simulated work inside one "task": a short xorshift chain, roughly
/// the cost of a cheap instrumented operation (a cache lookup or a small
/// pool task), so the measured overhead ratio is a realistic worst case --
/// real instrumented sites (cell computes, store I/O) are far heavier.
inline std::uint64_t body(std::uint64_t x) noexcept
{
    for (int i = 0; i < 24; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    return x;
}

double bare_ns_per_iter(std::uint64_t& sink)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        x = body(x);
    }
    sink ^= x;
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
               .count() /
           static_cast<double>(iterations);
}

double instrumented_ns_per_iter(std::uint64_t& sink, obs::counter& events,
                                obs::latency_histogram& latency,
                                obs::trace_recorder& recorder)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const obs::trace_span span(recorder,
                                   [&] { return "obs.bench:" + std::to_string(i & 7); });
        const obs::scoped_timer timer(latency);
        x = body(x);
        events.add(1);
    }
    sink ^= x;
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
               .count() /
           static_cast<double>(iterations);
}

/// The live-workload phase's hot loop: telemetry ENABLED, a spread of
/// registry-resolved instruments being hammered -- what a sweep's worker
/// threads do while a sampler ticks in the background.
double live_ns_per_iter(std::uint64_t& sink, obs::counter** counters,
                        obs::latency_histogram** histograms, std::size_t spread)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const obs::scoped_timer timer(*histograms[i % spread]);
        x = body(x);
        counters[i % spread]->add(1);
    }
    sink ^= x;
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
               .count() /
           static_cast<double>(iterations);
}

} // namespace

int main()
{
    obs::counter events;
    obs::latency_histogram latency;
    obs::trace_recorder recorder;
    std::uint64_t sink = 0;

    double bare = 1e300;
    double disabled = 1e300;
    double enabled = 1e300;

    // Warmup round (not recorded), then best-of over interleaved rounds.
    (void)bare_ns_per_iter(sink);
    (void)instrumented_ns_per_iter(sink, events, latency, recorder);
    for (int round = 0; round < rounds; ++round) {
        obs::set_enabled(false);
        recorder.set_enabled(false);
        bare = std::min(bare, bare_ns_per_iter(sink));
        disabled =
            std::min(disabled, instrumented_ns_per_iter(sink, events, latency, recorder));
        obs::set_enabled(true);
        recorder.set_enabled(true);
        enabled =
            std::min(enabled, instrumented_ns_per_iter(sink, events, latency, recorder));
        std::fprintf(stderr, "round %d/%d: bare %.2f ns, disabled %.2f ns, "
                             "enabled %.2f ns\n",
                     round + 1, rounds, bare, disabled, enabled);
    }
    obs::set_enabled(false);
    recorder.set_enabled(false);

    // Sampler phase: the same live workload with and without a 100 ms
    // background sampler, interleaved rounds, best-of. A private registry
    // with a realistic instrument spread (16 counters + 8 histograms, the
    // scale of the runtime's pool.*/cache.*/store.* taxonomy) keeps the
    // process-global registry out of the measurement.
    obs::metrics_registry registry;
    constexpr std::size_t counter_spread = 16;
    constexpr std::size_t histogram_spread = 8;
    obs::counter* counters[counter_spread];
    obs::latency_histogram* histograms[histogram_spread];
    for (std::size_t i = 0; i < counter_spread; ++i) {
        counters[i] = &registry.counter_at("bench.counter" + std::to_string(i));
    }
    for (std::size_t i = 0; i < histogram_spread; ++i) {
        histograms[i] = &registry.histogram_at("bench.hist" + std::to_string(i));
    }

    double live = 1e300;
    double sampled = 1e300;
    std::uint64_t sampler_ticks = 0;
    obs::set_enabled(true);
    (void)live_ns_per_iter(sink, counters, histograms, histogram_spread); // warmup
    for (int round = 0; round < rounds; ++round) {
        live = std::min(live,
                        live_ns_per_iter(sink, counters, histograms, histogram_spread));
        obs::sampler_config sampler_cfg;
        sampler_cfg.period = std::chrono::milliseconds(100);
        obs::sampler sampler(registry, sampler_cfg);
        sampler.start();
        sampled = std::min(
            sampled, live_ns_per_iter(sink, counters, histograms, histogram_spread));
        sampler.stop();
        sampler_ticks += sampler.tick_count();
        std::fprintf(stderr, "sampler round %d/%d: live %.2f ns, sampled %.2f ns\n",
                     round + 1, rounds, live, sampled);
    }
    obs::set_enabled(false);

    const double disabled_over_bare = disabled / bare;
    const double enabled_over_bare = enabled / bare;
    const double sampled_over_live = sampled / live;
    const bool disabled_pass = disabled_over_bare <= disabled_overhead_gate;
    const bool sampler_pass = sampled_over_live <= sampler_overhead_gate;
    const bool pass = disabled_pass && sampler_pass;

    std::printf("{\n");
    std::printf("  \"bench\": \"obs_overhead\",\n");
    std::printf("  \"iterations\": %llu,\n",
                static_cast<unsigned long long>(iterations));
    std::printf("  \"rounds\": %d,\n", rounds);
    std::printf("  \"bare_ns_per_iter\": %.4f,\n", bare);
    std::printf("  \"disabled_ns_per_iter\": %.4f,\n", disabled);
    std::printf("  \"enabled_ns_per_iter\": %.4f,\n", enabled);
    std::printf("  \"disabled_over_bare\": %.4f,\n", disabled_over_bare);
    std::printf("  \"enabled_over_bare\": %.4f,\n", enabled_over_bare);
    std::printf("  \"live_ns_per_iter\": %.4f,\n", live);
    std::printf("  \"sampled_ns_per_iter\": %.4f,\n", sampled);
    std::printf("  \"sampled_over_live\": %.4f,\n", sampled_over_live);
    std::printf("  \"sampler_ticks\": %llu,\n",
                static_cast<unsigned long long>(sampler_ticks));
    std::printf("  \"gate\": %.2f,\n", disabled_overhead_gate);
    std::printf("  \"sampler_gate\": %.2f,\n", sampler_overhead_gate);
    std::printf("  \"pass\": %s,\n", pass ? "true" : "false");
    // The sink defeats dead-code elimination; recorded so it is "used".
    std::printf("  \"checksum\": %llu\n", static_cast<unsigned long long>(sink));
    std::printf("}\n");

    if (!disabled_pass) {
        std::fprintf(stderr,
                     "FAIL: disabled telemetry costs %.1f%% over bare (gate %.0f%%)\n",
                     (disabled_over_bare - 1.0) * 100.0,
                     (disabled_overhead_gate - 1.0) * 100.0);
    }
    if (!sampler_pass) {
        std::fprintf(stderr,
                     "FAIL: 100ms sampler costs %.1f%% over live workload (gate %.0f%%)\n",
                     (sampled_over_live - 1.0) * 100.0,
                     (sampler_overhead_gate - 1.0) * 100.0);
    }
    if (!pass) {
        return 1;
    }
    std::fprintf(stderr,
                 "PASS: disabled telemetry %.2f%% over bare, sampler %.2f%% over live\n",
                 (disabled_over_bare - 1.0) * 100.0, (sampled_over_live - 1.0) * 100.0);
    return 0;
}
