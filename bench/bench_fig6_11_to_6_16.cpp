// Figs. 6.11-6.16: offline Pareto fronts -- energy versus execution time,
// normalized to Nominal, for SynTS / Per-core TS / No-TS across a theta
// sweep (Eq. 4.4). One block per (benchmark, stage) pair the paper plots:
//
//   6.11 FMM      SimpleALU   (SynTS: 21% lower energy / 18% faster)
//   6.12 Cholesky SimpleALU   ( 6% lower energy / 10.3% faster, text: Radix)
//   6.13 Cholesky Decode      (27.6% lower energy / 20% faster)
//   6.14 Raytrace Decode      (25.1% lower energy / 21% faster)
//   6.15 Cholesky ComplexALU  (SynTS dominates; fronts do not converge)
//   6.16 Raytrace ComplexALU  (same qualitative statement)
//
// Runs on the experiment runtime: all (pair, policy) cells are expanded
// into one sweep over the thread pool, and each pair's characterization is
// memoized in the process cache -- once per pair instead of once per
// (figure, policy) sweep as in the serial version. Cell numbers are
// bit-identical to the serial core::pareto_sweep path.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "core/experiment.h"
#include "runtime/sweep.h"
#include "runtime/sweep_io.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace synts;
using core::policy_kind;

struct figure_spec {
    const char* id;
    workload::benchmark_id benchmark;
    circuit::pipe_stage stage;
    double paper_energy_gap_pct;  // SynTS energy advantage at matched speed
    double paper_speed_gap_pct;   // SynTS speed advantage at low energy
};

/// At the fastest comparable point: how much faster is SynTS than Per-core
/// TS; at Per-core's energy floor: how much less energy does SynTS burn at
/// equal-or-better speed.
struct front_comparison {
    double energy_gap_pct = 0.0;
    double speed_gap_pct = 0.0;
};

front_comparison compare_fronts(const std::vector<core::pareto_point>& synts,
                                const std::vector<core::pareto_point>& per_core)
{
    // The paper's figure annotations mark the widest separation between the
    // two fronts (the extremes coincide by construction: both policies
    // collapse to all-min-energy or all-min-time there). Scan every
    // Per-core point and report the largest energy gap at matched-or-better
    // speed and the largest speed gap at matched-or-better energy.
    front_comparison cmp;
    for (const auto& pc : per_core) {
        for (const auto& sy : synts) {
            if (sy.time <= pc.time * 1.005 && pc.energy > 0.0) {
                cmp.energy_gap_pct =
                    std::max(cmp.energy_gap_pct, 100.0 * (1.0 - sy.energy / pc.energy));
            }
            if (sy.energy <= pc.energy * 1.02 && pc.time > 0.0) {
                cmp.speed_gap_pct =
                    std::max(cmp.speed_gap_pct, 100.0 * (1.0 - sy.time / pc.time));
            }
        }
    }
    return cmp;
}

} // namespace

int main()
{
    const figure_spec figures[] = {
        {"Fig. 6.11", workload::benchmark_id::fmm, circuit::pipe_stage::simple_alu, 21.0,
         18.0},
        {"Fig. 6.12", workload::benchmark_id::cholesky, circuit::pipe_stage::simple_alu,
         6.0, 10.3},
        {"Fig. 6.13", workload::benchmark_id::cholesky, circuit::pipe_stage::decode, 27.6,
         20.0},
        {"Fig. 6.14", workload::benchmark_id::raytrace, circuit::pipe_stage::decode, 25.1,
         21.0},
        {"Fig. 6.15", workload::benchmark_id::cholesky, circuit::pipe_stage::complex_alu,
         0.0, 0.0},
        {"Fig. 6.16", workload::benchmark_id::raytrace, circuit::pipe_stage::complex_alu,
         0.0, 0.0},
    };

    // One batched sweep for all six figures x three policies.
    runtime::sweep_spec spec;
    for (const auto& fig : figures) {
        const runtime::benchmark_stage pair{fig.benchmark, fig.stage};
        if (std::find(spec.pairs.begin(), spec.pairs.end(), pair) == spec.pairs.end()) {
            spec.pairs.push_back(pair);
        }
    }
    spec.policies = {policy_kind::synts_offline, policy_kind::per_core_ts,
                     policy_kind::no_ts};
    spec.theta_multipliers = core::default_theta_multipliers();

    runtime::thread_pool pool;
    runtime::sweep_scheduler scheduler(pool, runtime::experiment_cache::process_cache());
    const runtime::sweep_result result = scheduler.run(spec);
    const auto& multipliers = spec.theta_multipliers;

    for (const auto& fig : figures) {
        bench::banner(fig.id,
                      std::string(workload::benchmark_name(fig.benchmark)) + " / " +
                          circuit::pipe_stage_name(fig.stage) +
                          " -- offline Pareto fronts (normalized to Nominal)");

        const auto& synts =
            result.find(fig.benchmark, fig.stage, policy_kind::synts_offline)->pareto;
        const auto& per_core =
            result.find(fig.benchmark, fig.stage, policy_kind::per_core_ts)->pareto;
        const auto& no_ts =
            result.find(fig.benchmark, fig.stage, policy_kind::no_ts)->pareto;

        util::text_table table({"theta x", "SynTS E", "SynTS T", "PerCore E",
                                "PerCore T", "NoTS E", "NoTS T"});
        for (std::size_t i = 0; i < multipliers.size(); ++i) {
            table.begin_row();
            table.cell(multipliers[i], 3);
            table.cell(synts[i].energy, 3);
            table.cell(synts[i].time, 3);
            table.cell(per_core[i].energy, 3);
            table.cell(per_core[i].time, 3);
            table.cell(no_ts[i].energy, 3);
            table.cell(no_ts[i].time, 3);
        }
        std::printf("%s\n", table.render().c_str());

        const front_comparison cmp = compare_fronts(synts, per_core);
        if (fig.paper_energy_gap_pct > 0.0) {
            bench::compare_line("SynTS energy advantage at matched speed (%)",
                                cmp.energy_gap_pct, fig.paper_energy_gap_pct, 1);
            bench::compare_line("SynTS speed advantage at Per-core's energy floor (%)",
                                cmp.speed_gap_pct, fig.paper_speed_gap_pct, 1);
        } else {
            std::printf("  SynTS energy advantage at matched speed: %.1f%%\n",
                        cmp.energy_gap_pct);
            std::printf("  SynTS speed advantage at energy floor:   %.1f%%\n",
                        cmp.speed_gap_pct);
            bench::note("Paper: ComplexALU fronts of Per-core TS / No-TS do not");
            bench::note("converge close to SynTS; only dominance is claimed.");
        }
        // Dominance check at every theta.
        bool dominates = true;
        for (std::size_t i = 0; i < multipliers.size(); ++i) {
            const double synts_cost = synts[i].energy + multipliers[i] * synts[i].time;
            const double pc_cost =
                per_core[i].energy + multipliers[i] * per_core[i].time;
            dominates = dominates && synts_cost <= pc_cost * (1.0 + 1e-9);
        }
        std::printf("  SynTS weighted cost <= Per-core TS at every theta: %s\n\n",
                    dominates ? "yes" : "NO");

        // CSV for re-plotting.
        const std::string csv_name =
            std::string("pareto_") + workload::benchmark_name(fig.benchmark).data() +
            "_" + circuit::pipe_stage_name(fig.stage) + ".csv";
        std::ofstream out(csv_name);
        util::csv_writer csv(out);
        csv.header({"theta_multiplier", "policy", "energy_norm", "time_norm"});
        const auto dump = [&](const char* name,
                              const std::vector<core::pareto_point>& points) {
            for (std::size_t i = 0; i < points.size(); ++i) {
                csv.begin_row();
                csv.field(multipliers[i]);
                csv.field(std::string(name));
                csv.field(points[i].energy);
                csv.field(points[i].time);
            }
        };
        dump("SynTS", synts);
        dump("PerCoreTS", per_core);
        dump("NoTS", no_ts);
    }

    std::printf("runtime: %zu cells on %zu workers in %.2f s "
                "(characterizations: %llu, cache hits: %llu)\n",
                result.cells.size(), pool.worker_count(), result.wall_seconds,
                static_cast<unsigned long long>(result.cache_misses),
                static_cast<unsigned long long>(result.cache_hits));
    return 0;
}
