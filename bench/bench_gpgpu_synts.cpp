// Negative-result closure: running SynTS on the GPGPU.
//
// Sections 3.2 / 5.5 conclude that the HD 7970's vector ALUs are
// homogeneous, so "per-core timing speculation will work just fine" and
// the SynTS analysis focuses on CMPs. This bench verifies that conclusion
// end to end rather than taking it on faith: it treats the 16 VALUs as
// SynTS threads, builds their empirical error curves by driving the
// gate-level ALU with each VALU's operand stream, and shows SynTS's
// advantage over Per-core TS collapsing to (near) zero -- exactly why the
// paper skips the GPGPU in the optimization study.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "circuit/dynamic_timing.h"
#include "circuit/netlist_builder.h"
#include "core/solver.h"
#include "gpgpu/kernels.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("GPGPU + SynTS",
                  "SynTS applied to the 16 homogeneous VALUs (negative result)");

    const auto stage = circuit::build_simple_alu();
    const auto lib = circuit::cell_library::standard_22nm();
    const circuit::voltage_model vm(0.04);
    const auto corners = circuit::paper_voltage_levels();

    util::text_table table({"kernel", "SynTS cost", "PerCore cost", "raw gap (%)",
                            "identical-threads control (%)", "heterogeneity gain (%)"});

    double worst_advantage = 0.0;
    for (const auto kernel :
         {gpgpu::gpgpu_kernel::blackscholes, gpgpu::gpgpu_kernel::matrixmult,
          gpgpu::gpgpu_kernel::streamcluster, gpgpu::gpgpu_kernel::x264}) {
        const auto traces =
            gpgpu::execute_kernel(kernel, gpgpu::hd7970_valu_count, 6000, 42);

        // Characterize each VALU against the ALU netlist. The operand
        // stream drives the batched 64-lane path (bit-identical to scalar
        // stepping); one corner's lane delays land in the histogram as a
        // single bulk insert.
        const auto tables = circuit::make_corner_tables(stage.nl, lib, vm, corners);
        std::vector<core::empirical_error_model> models;
        const std::vector<double>& tnom = tables->nominal_period_ps;
        constexpr std::size_t lanes_max = circuit::dynamic_timing_simulator::max_batch_lanes;
        for (const auto& trace : traces) {
            circuit::dynamic_timing_simulator sim(stage.nl, tables);
            std::vector<util::histogram> hist;
            for (std::size_t c = 0; c < corners.size(); ++c) {
                hist.emplace_back(0.0, tnom[c] * 1.05, 256);
            }
            std::vector<std::uint64_t> lane_words(stage.nl.input_count());
            std::vector<double> delays(corners.size() * lanes_max);
            const std::span<const gpgpu::valu_instruction> insns(trace.instructions);
            for (std::size_t offset = 0; offset < insns.size(); offset += lanes_max) {
                const std::size_t lanes =
                    gpgpu::pack_valu_lanes(insns.subspan(offset), lane_words);
                sim.step_batch(lane_words, lanes,
                               std::span<double>(delays.data(), corners.size() * lanes));
                for (std::size_t c = 0; c < corners.size(); ++c) {
                    hist[c].add(std::span<const double>(delays).subspan(c * lanes, lanes));
                }
            }
            models.emplace_back(std::move(hist), tnom, 1.0);
        }

        // SynTS vs Per-core over the 16 "threads" (equal work: SIMD
        // dispatch is balanced by construction).
        const core::config_space space = core::config_space::paper_grid(tnom);
        core::solver_input input;
        input.space = &space;
        for (std::size_t v = 0; v < models.size(); ++v) {
            input.workloads.push_back(core::thread_workload{6000, 1.0});
            input.error_models.push_back(&models[v]);
        }
        input.theta = core::equal_weight_theta(input);

        const double synts_cost = core::solve_synts_poly(input).weighted_cost;
        const double per_core_cost = core::solve_per_core_ts(input).weighted_cost;
        const double advantage = 100.0 * (1.0 - synts_cost / per_core_cost);

        // Control: literally identical threads (every VALU gets VALU 0's
        // error curve). Any remaining gap is the structural difference
        // between the per-core objective (en_i + theta * t_i each) and the
        // joint one (sum en + theta * max t) -- not heterogeneity.
        core::solver_input control = input;
        for (auto& curve : control.error_models) {
            curve = &models[0];
        }
        const double control_advantage =
            100.0 * (1.0 - core::solve_synts_poly(control).weighted_cost /
                               core::solve_per_core_ts(control).weighted_cost);
        const double heterogeneity_gain = advantage - control_advantage;
        worst_advantage = std::max(worst_advantage, heterogeneity_gain);

        table.begin_row();
        table.cell(std::string(gpgpu::gpgpu_kernel_name(kernel)));
        table.cell(synts_cost, 0);
        table.cell(per_core_cost, 0);
        table.cell(advantage, 2);
        table.cell(control_advantage, 2);
        table.cell(heterogeneity_gain, 2);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("  largest heterogeneity-driven SynTS gain on the GPGPU: %.2f%%\n",
                worst_advantage);
    bench::note("The raw gap is a structural artifact of the per-core objective");
    bench::note("(it persists with literally identical threads -- see the control");
    bench::note("column); the *heterogeneity-driven* gain, which is the SynTS");
    bench::note("thesis, is ~0 on the GPGPU vs ~20% on the CMPs -- confirming the");
    bench::note("paper's decision to restrict the synergistic analysis to CMPs.");
    std::printf("\n");
    return 0;
}
