// Ablation (Section 4.3 knobs): sampling-phase length N_samp.
//
// "Increasing N_samp provides more precise error estimates, but results in
// greater energy and execution time overheads during sampling." This bench
// sweeps the sampling fraction and reports the online EDP relative to
// offline, exposing the U-shape the paper's 10% operating point sits in.

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "util/table.h"

int main()
{
    using namespace synts;
    using core::policy_kind;

    bench::banner("Ablation", "sampling fraction N_samp sweep (online EDP overhead)");

    util::text_table table({"benchmark", "sample fraction", "online/offline EDP",
                            "critical thread found"});

    for (const auto id : {workload::benchmark_id::radix, workload::benchmark_id::fmm}) {
        for (const double fraction : {0.02, 0.05, 0.10, 0.20, 0.40}) {
            core::experiment_config cfg;
            cfg.sampling.sample_fraction = fraction;
            cfg.sampling.min_sample_instructions = 60;
            const core::benchmark_experiment experiment(
                id, circuit::pipe_stage::simple_alu, cfg);
            const double theta = experiment.equal_weight_theta();
            const double offline =
                experiment.run_policy(policy_kind::synts_offline, theta).sum.edp();
            const double online =
                experiment.run_policy(policy_kind::synts_online, theta).sum.edp();

            // Critical-thread identification at this sampling length.
            const core::online_estimator estimator(cfg.sampling);
            synts::energy::energy_params params;
            std::size_t truth_critical = 0;
            std::size_t estimated_critical = 0;
            double truth_best = -1.0;
            double estimate_best = -1.0;
            for (std::size_t t = 0; t < experiment.thread_count(); ++t) {
                const double actual =
                    experiment.error_model(t, 0).error_probability(0, 0.64);
                if (actual > truth_best) {
                    truth_best = actual;
                    truth_critical = t;
                }
                const auto sample = estimator.sample_interval(
                    experiment.space(), experiment.characterization().threads[t][0],
                    experiment.artifacts()->arch_profiles[t][0].cpi_base, params);
                if (sample.err_estimates.front() > estimate_best) {
                    estimate_best = sample.err_estimates.front();
                    estimated_critical = t;
                }
            }

            table.begin_row();
            table.cell(std::string(workload::benchmark_name(id)));
            table.cell(fraction, 2);
            table.cell(online / offline, 4);
            table.cell(std::string(truth_critical == estimated_critical ? "yes" : "NO"));
        }
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("Small N_samp: noisy estimates (risk of misconfiguration);");
    bench::note("large N_samp: the phase itself dominates. The paper operates at 10%.");
    std::printf("\n");
    return 0;
}
