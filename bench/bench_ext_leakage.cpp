// Extension bench: the leakage-aware energy model.
//
// Section 4.1: "Although the model does not currently account for leakage,
// it can be easily extended to do so." With leakage, idling slowly at low
// voltage is no longer free: stretching execution time burns static power.
// This bench sweeps the leakage share and reports how the SynTS optimum
// shifts (faster, higher-voltage points as leakage grows -- the classic
// race-to-idle effect).

#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/solver.h"
#include "util/table.h"

int main()
{
    using namespace synts;

    bench::banner("Extension", "leakage-aware energy model (Eq. 4.3 + static power)");

    core::experiment_config cfg;
    const core::benchmark_experiment experiment(workload::benchmark_id::barnes,
                                                circuit::pipe_stage::simple_alu, cfg);
    const double theta = experiment.equal_weight_theta();

    // Baseline dynamic power scale of the nominal point, used to express
    // leakage as a fraction of nominal dynamic power.
    core::solver_input probe = experiment.make_solver_input(0, theta);
    const core::interval_solution nominal = core::nominal_solution(probe);
    const double dynamic_power =
        nominal.total_energy / nominal.exec_time_ps; // energy per ps

    util::text_table table({"leakage share", "exec time (norm)", "energy (norm)",
                            "mean V (V)", "mean r"});

    double base_time = 0.0;
    double base_energy = 0.0;
    for (const double share : {0.0, 0.1, 0.25, 0.5, 1.0}) {
        core::solver_input input = experiment.make_solver_input(0, theta);
        input.params.leakage_power = share * dynamic_power;
        const core::interval_solution sol = core::solve_synts_poly(input);

        double mean_v = 0.0;
        double mean_r = 0.0;
        for (const auto& m : sol.metrics) {
            mean_v += m.vdd;
            mean_r += m.tsr;
        }
        mean_v /= static_cast<double>(sol.metrics.size());
        mean_r /= static_cast<double>(sol.metrics.size());

        if (share == 0.0) {
            base_time = sol.exec_time_ps;
            base_energy = sol.total_energy;
        }
        table.begin_row();
        table.cell(share, 2);
        table.cell(sol.exec_time_ps / base_time, 3);
        table.cell(sol.total_energy / base_energy, 3);
        table.cell(mean_v, 3);
        table.cell(mean_r, 3);
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("As the leakage share grows, the optimizer abandons slow low-voltage");
    bench::note("points (their static energy dominates) and the chosen execution");
    bench::note("time must not increase -- race-to-idle emerges from the model.");
    std::printf("\n");
    return 0;
}
