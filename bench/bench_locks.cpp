// bench_locks -- the annotated-mutex overhead gate.
//
// The thread-safety contract (util/thread_safety.h) is "zero overhead in
// release": with the lock-rank checks compiled out, annotated_mutex is
// layout-identical to std::mutex and every lock()/unlock() must inline to
// the bare call. This bench measures an uncontended lock/unlock pair and a
// correctly-ordered two-level nesting both ways -- bare std::mutex vs
// annotated_mutex -- interleaved round-robin (thermal / frequency drift
// hits both variants equally), best-of over rounds, and GATES
// annotated-over-bare at <= 2% when the checks are compiled out. A
// regression (someone making the rank bookkeeping unconditional, say)
// exits non-zero and fails CI instead of landing silently.
//
// When SYNTS_LOCK_RANK_CHECKS is on (debug builds, -DSYNTS_LOCK_RANK=ON)
// the bookkeeping is resident BY DESIGN, so the ratio is reported for
// information and the gate passes vacuously -- the zero-overhead claim is
// about release builds only.
//
// Output: one JSON document on stdout (scripts/run_benches.sh captures it
// as BENCH_locks.json). Human-readable progress goes to stderr.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex> // synts-lint: allow(raw-mutex) -- the bare baseline under test

#include "util/thread_safety.h"

namespace {

using namespace synts;

constexpr double overhead_gate = 1.02; // <= 2% over bare (release only)
constexpr int rounds = 9;
constexpr std::uint64_t iterations = 2'000'000;

/// A token amount of guarded work so the loop is not pure lock traffic and
/// the compiler cannot fuse adjacent unlock/lock pairs.
inline std::uint64_t body(std::uint64_t x) noexcept
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

double bare_ns_per_iter(std::uint64_t& sink)
{
    std::mutex outer;                   // synts-lint: allow(raw-mutex)
    std::mutex inner;                   // synts-lint: allow(raw-mutex)
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        {
            const std::lock_guard lock(outer); // synts-lint: allow(raw-mutex)
            x = body(x);
        }
        {
            const std::lock_guard a(outer);    // synts-lint: allow(raw-mutex)
            const std::lock_guard b(inner);    // synts-lint: allow(raw-mutex)
            x = body(x);
        }
    }
    sink ^= x;
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
               .count() /
           static_cast<double>(iterations);
}

double annotated_ns_per_iter(std::uint64_t& sink)
{
    util::annotated_mutex outer(util::lock_rank::pool_sleep, "bench.outer");
    util::annotated_mutex inner(util::lock_rank::pool_queue, "bench.inner");
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        {
            const util::mutex_lock lock(outer);
            x = body(x);
        }
        {
            const util::mutex_lock a(outer);
            const util::mutex_lock b(inner);
            x = body(x);
        }
    }
    sink ^= x;
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    t0)
               .count() /
           static_cast<double>(iterations);
}

} // namespace

int main()
{
    std::uint64_t sink = 0;
    double bare = 1e300;
    double annotated = 1e300;

    // Warmup round (not recorded), then best-of over interleaved rounds.
    (void)bare_ns_per_iter(sink);
    (void)annotated_ns_per_iter(sink);
    for (int round = 0; round < rounds; ++round) {
        bare = std::min(bare, bare_ns_per_iter(sink));
        annotated = std::min(annotated, annotated_ns_per_iter(sink));
        std::fprintf(stderr, "round %d/%d: bare %.2f ns, annotated %.2f ns\n",
                     round + 1, rounds, bare, annotated);
    }

    const double annotated_over_bare = annotated / bare;
    const bool checks_enabled = SYNTS_LOCK_RANK_CHECKS != 0;
    // The gate binds only where the contract claims zero overhead.
    const bool pass = checks_enabled || annotated_over_bare <= overhead_gate;

    std::printf("{\n");
    std::printf("  \"bench\": \"lock_overhead\",\n");
    std::printf("  \"iterations\": %llu,\n",
                static_cast<unsigned long long>(iterations));
    std::printf("  \"rounds\": %d,\n", rounds);
    std::printf("  \"rank_checks_enabled\": %s,\n", checks_enabled ? "true" : "false");
    std::printf("  \"bare_ns_per_iter\": %.4f,\n", bare);
    std::printf("  \"annotated_ns_per_iter\": %.4f,\n", annotated);
    std::printf("  \"annotated_over_bare\": %.4f,\n", annotated_over_bare);
    std::printf("  \"gate\": %.2f,\n", overhead_gate);
    std::printf("  \"pass\": %s,\n", pass ? "true" : "false");
    // The sink defeats dead-code elimination; recorded so it is "used".
    std::printf("  \"checksum\": %llu\n", static_cast<unsigned long long>(sink));
    std::printf("}\n");

    if (!pass) {
        std::fprintf(stderr,
                     "FAIL: annotated mutex costs %.1f%% over bare std::mutex "
                     "in a release build (gate %.0f%%)\n",
                     (annotated_over_bare - 1.0) * 100.0,
                     (overhead_gate - 1.0) * 100.0);
        return 1;
    }
    if (checks_enabled) {
        std::fprintf(stderr,
                     "PASS (informational): rank checks enabled, annotated "
                     "%.1f%% over bare; the release gate does not apply\n",
                     (annotated_over_bare - 1.0) * 100.0);
    } else {
        std::fprintf(stderr, "PASS: annotated mutex %.2f%% over bare std::mutex\n",
                     (annotated_over_bare - 1.0) * 100.0);
    }
    return 0;
}
